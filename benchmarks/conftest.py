"""Benchmark configuration.

Node counts default to a short sweep so ``pytest benchmarks/`` finishes
in minutes; set ``REPRO_FULL_SWEEP=1`` for the paper's full 1..256 node
axis. Every benchmark prints its table (run pytest with ``-s`` to see
them live; they are also captured into the report).

The suite self-reports its wall-clock against a budget
(``REPRO_BENCH_BUDGET_S``, default 240 s — sized to cover the
4096-node weak-scaling sweep on the orbit-compressed executor) and
fails the run when over budget if ``REPRO_ENFORCE_BUDGET=1``. Each
benchmark's duration is also appended to the ``BENCH_simulator.json``
perf trajectory at the repo root, so simulator performance is tracked
across PRs.
"""

import os
import time

import pytest

_BUDGET_S = float(os.environ.get("REPRO_BENCH_BUDGET_S", "240"))
_suite_start = None
_durations = []


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is a paper-scale sweep."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def node_counts(extra=()):
    """The weak-scaling node axis for benchmarks."""
    if os.environ.get("REPRO_FULL_SWEEP"):
        return [1, 2, 4, 8, 16, 32, 64, 128, 256]
    base = [1, 4, 16, 64]
    for n in extra:
        if n not in base:
            base.append(n)
    return sorted(base)


def pytest_sessionstart(session):
    global _suite_start
    _suite_start = time.monotonic()


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _durations.append((report.nodeid, report.duration))


def pytest_sessionfinish(session, exitstatus):
    if _suite_start is None:
        return
    wall = time.monotonic() - _suite_start
    if wall > _BUDGET_S and os.environ.get("REPRO_ENFORCE_BUDGET"):
        session.exitstatus = 1
    try:
        from repro.bench.perf_log import append_record

        for nodeid, duration in _durations:
            append_record(f"bench:{nodeid.split('::')[-1]}", duration)
    except Exception:
        pass  # the perf log must never fail a benchmark run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _suite_start is None:
        return
    wall = time.monotonic() - _suite_start
    status = "OVER" if wall > _BUDGET_S else "within"
    terminalreporter.write_line(
        f"benchmark wall-clock: {wall:.1f}s ({status} budget {_BUDGET_S:.0f}s)"
    )


@pytest.fixture
def run_once(benchmark):
    """Run an expensive figure generator exactly once under timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
