"""Benchmark configuration.

Node counts default to a short sweep so ``pytest benchmarks/`` finishes
in minutes; set ``REPRO_FULL_SWEEP=1`` for the paper's full 1..256 node
axis. Every benchmark prints its table (run pytest with ``-s`` to see
them live; they are also captured into the report).
"""

import os

import pytest


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is a paper-scale sweep."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def node_counts(extra=()):
    """The weak-scaling node axis for benchmarks."""
    if os.environ.get("REPRO_FULL_SWEEP"):
        return [1, 2, 4, 8, 16, 32, 64, 128, 256]
    base = [1, 4, 16, 64]
    for n in extra:
        if n not in base:
            base.append(n)
    return sorted(base)


@pytest.fixture
def run_once(benchmark):
    """Run an expensive figure generator exactly once under timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
