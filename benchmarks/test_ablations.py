"""Ablations of the design choices the paper calls out (DESIGN.md §7).

* ``rotate`` on/off — Cannon's systolic pattern vs owner broadcasts
  (Section 7.1.2's explanation for Cannon's advantage at scale).
* ``communicate`` aggregation — Figure 7's naive vs chunked completion.
* communication/computation overlap — the stated reason DISTAL and
  COSMA beat the MPI libraries on CPUs (Section 7.1.1).
* the Legion runtime-core tax — the "COSMA (Restricted CPUs)" line.
"""

import pytest

from repro import Cluster, Grid, Machine, MemoryKind
from repro.algorithms import cannon, pumma, summa
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN


@pytest.fixture(scope="module")
def gpu_cluster():
    return Cluster.gpu_cluster(16)


class TestRotateAblation:
    def test_rotate_cuts_collective_latency(self, run_once, gpu_cluster):
        """Cannon (rotate) vs SUMMA (broadcast) on the same machine."""
        n = 80000
        m = Machine(gpu_cluster, Grid(8, 8))

        def run():
            fb = MemoryKind.GPU_FB
            with_rotate = cannon(m, n, memory=fb).simulate(LASSEN)
            without = summa(m, n, memory=fb).simulate(LASSEN)
            return with_rotate, without

        with_rotate, without = run_once(run)
        print()
        print(f"rotate ablation (GPU, 16 nodes): systolic "
              f"{with_rotate.gflops_per_node:.0f} vs broadcast "
              f"{without.gflops_per_node:.0f} GFLOP/s/node")
        assert with_rotate.comm_time <= without.comm_time
        assert with_rotate.gflops_per_node >= without.gflops_per_node


class TestAggregationAblation:
    def test_chunked_vs_tile_sized_messages(self, run_once):
        """Figure 7's tradeoff: chunk size vs memory high-water."""
        from repro import (
            Assignment,
            Format,
            Schedule,
            TensorVar,
            compile_kernel,
            index_vars,
        )

        cluster = Cluster.cpu_cluster(8)
        machine = Machine(cluster, Grid(4, 4))
        n = 16384

        def build(chunk):
            return summa(machine, n, chunk=chunk)

        def run():
            fine = build(chunk=n // 64).trace(False)
            coarse = build(chunk=n // 4).trace(False)
            return fine, coarse

        fine, coarse = run_once(run)
        fine_hw = max(fine.trace.memory_high_water.values())
        coarse_hw = max(coarse.trace.memory_high_water.values())
        fine_steps = len([s for s in fine.trace.steps if s.copies])
        coarse_steps = len([s for s in coarse.trace.steps if s.copies])
        print()
        print(f"aggregation ablation: fine chunks -> {fine_steps} comm "
              f"phases, {fine_hw / 1e9:.2f} GB high-water; coarse -> "
              f"{coarse_steps} phases, {coarse_hw / 1e9:.2f} GB")
        # More aggregation = fewer phases but more transient memory.
        assert coarse_steps < fine_steps
        assert coarse_hw >= fine_hw


class TestOverlapAblation:
    def test_overlap_hides_communication(self, run_once):
        cluster = Cluster.cpu_cluster(16)
        machine = Machine(cluster, Grid(8, 4))
        n = 32768

        def run():
            kern = summa(machine, n)
            trace = kern.trace(False).trace
            with_overlap = CostModel(cluster, LASSEN).time_trace(trace)
            blocking = CostModel(
                cluster, LASSEN.with_(overlap=False)
            ).time_trace(trace)
            return with_overlap, blocking

        with_overlap, blocking = run_once(run)
        print()
        print(f"overlap ablation: {with_overlap.gflops_per_node:.0f} vs "
              f"{blocking.gflops_per_node:.0f} GFLOP/s/node (blocking)")
        assert with_overlap.total_time < blocking.total_time


class TestRuntimeCoreTax:
    def test_four_of_forty_cores(self, run_once):
        cluster = Cluster.cpu_cluster(8)
        machine = Machine(cluster, Grid(4, 4))

        def run():
            kern = summa(machine, 23168)
            trace = kern.trace(False).trace
            distal = CostModel(cluster, LASSEN).time_trace(trace)
            all_cores = CostModel(
                cluster, LASSEN.with_(runtime_core_fraction=1.0)
            ).time_trace(trace)
            return distal, all_cores

        distal, all_cores = run_once(run)
        ratio = distal.gflops_per_node / all_cores.gflops_per_node
        print()
        print(f"runtime-core tax: {ratio:.3f} (expected ~0.9 = 36/40)")
        assert 0.85 <= ratio <= 0.95
