"""Acceptance benchmark: fault recovery stays near the replanned optimum.

A chain-matmul pipeline loses a node mid-run. The recovery — the work
completed before the failure, the migration of surviving/restored data
into the new layout, and the re-tuned remainder — must land within a
pinned factor of the *oracle-replanned-from-scratch* optimum: the cost
of the same pipeline tuned from scratch for the surviving machine, as
if the failure had been known in advance. The gap between the two is
exactly the price of the failure (wasted prefix + migration), which the
pin bounds.

Equal-seed fault plans must also produce byte-identical recovery
reports — recovery is part of the deterministic simulation contract,
not a best-effort path.
"""

import time

import pytest

from repro import LASSEN, Pipeline
from repro.faults.events import FaultPlan, KillNode
from repro.faults.replan import (
    replan_kernel,
    replan_pipeline,
    sized_cluster,
)
from repro.tuner.joint import tune_pipeline
from repro.tuner.search import tune
from repro.tuner.workloads import lean_cluster, matmul, matmul_chain

#: Recovered total vs. the from-scratch optimum on the surviving
#: machine. The overhead is one wasted partial phase, one tensor-scale
#: migration, and any warm-start/search gap — 3x bounds all three
#: comfortably while still failing on a broken replanner (which shows
#: up as 10-100x or inf).
PIN_FACTOR = 3.0

NODES = 16
SIDE = 2048


@pytest.fixture(scope="module")
def cluster():
    return lean_cluster(NODES)


@pytest.fixture(scope="module")
def pipeline(cluster):
    return Pipeline(matmul_chain(SIDE), cluster)


@pytest.fixture(scope="module")
def decisions(pipeline):
    result = tune_pipeline(pipeline, LASSEN, seed=0)
    return {
        name: r.decision for name, r in result.stage_results.items()
    }


@pytest.fixture(scope="module")
def recovery(pipeline, decisions):
    from repro.bench.perf_log import append_record

    plan = FaultPlan(
        events=(KillNode(phase=1, node=NODES - 3, stage="T"),), seed=42
    )
    start = time.monotonic()
    report = replan_pipeline(
        pipeline, decisions, LASSEN, fault_plan=plan, seed=0,
        workload="chain-matmul",
    )
    wall = time.monotonic() - start
    append_record("fault-recovery:chain_16nodes", wall, metrics={
        "recovered_total_s": report.total_time,
        "baseline_s": report.baseline_time,
        "migration_bytes": report.migration_bytes,
    })
    return plan, report


class TestPinnedRecovery:
    def test_recovery_within_pinned_factor_of_scratch_optimum(
        self, pipeline, recovery
    ):
        plan, report = recovery
        # The from-scratch yardstick: the same pipeline tuned for the
        # surviving machine with no failure to pay for.
        surviving = sized_cluster(pipeline.cluster, NODES - 1)
        scratch = tune_pipeline(
            Pipeline(matmul_chain(SIDE), surviving), LASSEN, seed=0
        )
        optimum = scratch.report.combined.total_time
        assert optimum > 0
        assert report.total_time <= PIN_FACTOR * optimum, (
            f"recovered {report.total_time:.4f}s vs scratch optimum "
            f"{optimum:.4f}s exceeds the {PIN_FACTOR}x pin"
        )
        # And recovery really happened: the killed stage shrank.
        by_name = {s.stage: s for s in report.stages}
        assert by_name["T"].recovery.failed
        assert by_name["T"].nodes == NODES - 1

    def test_equal_seed_plans_byte_identical(
        self, pipeline, decisions, recovery
    ):
        plan, report = recovery
        again = replan_pipeline(
            pipeline, decisions, LASSEN, fault_plan=plan, seed=0,
            workload="chain-matmul",
        )
        assert report.to_json() == again.to_json()


class TestKernelRecoveryPin:
    def test_single_kernel_recovery_near_scratch_optimum(self, cluster):
        assignment = matmul(SIDE)
        decision = tune(
            matmul(SIDE), cluster, LASSEN, seed=0
        ).decision
        plan = FaultPlan(events=(KillNode(phase=1, node=3),), seed=7)
        report = replan_kernel(
            assignment, cluster, LASSEN,
            decision=decision, fault_plan=plan, seed=0,
        )
        assert report.failed
        surviving = sized_cluster(cluster, NODES - 1)
        scratch = tune(matmul(SIDE), surviving, LASSEN, seed=0)
        optimum = scratch.report.total_time
        assert report.total_time <= PIN_FACTOR * optimum
        # Byte-determinism holds at the kernel level too.
        again = replan_kernel(
            assignment, cluster, LASSEN,
            decision=decision, fault_plan=plan, seed=0,
        )
        assert report.to_json() == again.to_json()
