"""Figure 9 (E7): the matmul algorithm case studies, characterized.

For each of the six algorithms: compile from its data distribution +
schedule, trace it at a representative scale, and check the structural
properties Figure 9's icons depict — communication pattern (systolic vs
broadcast), machine organization, and relative communication volume.
"""

import pytest

from conftest import node_counts

from repro import Cluster, Grid, Machine
from repro.algorithms import cannon, cosma, johnson, pumma, solomonik, summa
from repro.sim.params import LASSEN


@pytest.fixture(scope="module")
def cluster():
    return Cluster.cpu_cluster(32)  # 64 processors


def table_row(name, kernel, machine):
    trace = kernel.trace(check_capacity=False).trace
    # Steady state excludes the first communication phase: Cannon's
    # algorithm begins with an explicit long-distance alignment shift
    # (Figure 11's "perform an initial data shift").
    comm_steps = [s for s in trace.steps if any(not c.reduce for c in s.copies)]
    steady = comm_steps[1:] if len(comm_steps) > 1 else comm_steps
    dists = [
        machine.torus_distance(c.src_coords, c.dst_coords)
        for s in steady
        for c in s.copies
        if not c.reduce
    ]
    max_dist = max(dists) if dists else 0
    reduces = sum(1 for c in trace.copies if c.reduce)
    return {
        "name": name,
        "inter_gb": trace.inter_node_bytes / 1e9,
        "max_dist": max_dist,
        "reduces": reduces,
        "high_water_gb": max(trace.memory_high_water.values()) / 1e9,
    }


def test_fig09_case_studies(run_once, cluster):
    n = 32768

    def build_all():
        m2 = Machine(cluster, Grid(8, 8))
        m3 = Machine(cluster, Grid(4, 4, 4))
        m25 = Machine(cluster, Grid(4, 4, 4))
        rows = [
            table_row("Cannon", cannon(m2, n), m2),
            table_row("PUMMA", pumma(m2, n), m2),
            table_row("SUMMA", summa(m2, n), m2),
            table_row("Johnson", johnson(m3, n), m3),
            table_row("Solomonik", solomonik(m25, n), m25),
        ]
        ck = cosma(cluster, n)
        rows.append(table_row("COSMA", ck, ck.machine))
        return rows

    rows = run_once(build_all)
    print()
    print("== Figure 9 case studies (n=32768, 64 processors) ==")
    print(f"{'algorithm':<12s}{'inter-node GB':>15s}{'max shift':>11s}"
          f"{'reductions':>12s}{'high-water GB':>15s}")
    for r in rows:
        print(f"{r['name']:<12s}{r['inter_gb']:>15.2f}{r['max_dist']:>11d}"
              f"{r['reduces']:>12d}{r['high_water_gb']:>15.2f}")

    by_name = {r["name"]: r for r in rows}
    # Systolic algorithms only ever shift to grid neighbours.
    assert by_name["Cannon"]["max_dist"] <= 1
    # 3-D algorithms reduce partial outputs; 2-D ones do not.
    assert by_name["Johnson"]["reduces"] > 0
    assert by_name["Solomonik"]["reduces"] > 0
    assert by_name["Cannon"]["reduces"] == 0
    assert by_name["SUMMA"]["reduces"] == 0
    # Johnson's 3-D communication volume is below SUMMA's 2-D volume.
    assert by_name["Johnson"]["inter_gb"] < by_name["SUMMA"]["inter_gb"]
    # ... at the price of memory (replication).
    assert (
        by_name["Johnson"]["high_water_gb"]
        > by_name["SUMMA"]["high_water_gb"]
    )
