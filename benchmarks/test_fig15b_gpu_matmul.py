"""Figure 15b: GPU matrix-multiplication weak scaling (E2).

Asserts the paper's GPU conclusions:

* on one node, DISTAL's framebuffer-resident kernels achieve ~2x the
  reference COSMA (whose out-of-core GEMM stages over PCIe);
* Johnson's algorithm and DISTAL's COSMA schedule run out of GPU memory
  from 32 nodes on (input replication exhausts the 16 GiB framebuffers);
* 2-D algorithms dip at non-square processor counts; the systolic
  family stays at the front at scale.
"""

from conftest import node_counts

from repro.bench.figures import fig15b_gpu_matmul, format_table, series


def test_fig15b(run_once):
    counts = node_counts(extra=[32, 256])
    rows = run_once(fig15b_gpu_matmul, node_counts=counts)
    print()
    print(format_table(rows, "Figure 15b: GPU matmul weak scaling"))

    cosma = series(rows, "COSMA")
    cannon = series(rows, "Our Cannon")
    johnson = series(rows, "Our Johnson")
    our_cosma = series(rows, "Our COSMA")
    summa = series(rows, "Our SUMMA")

    # Single node: DISTAL ~2x reference COSMA (paper: "all of our
    # kernels achieve twice the performance of COSMA").
    assert cannon[1] >= 1.8 * cosma[1]

    # 3-D replication OOMs at 32 nodes (paper, Section 7.1.2).
    assert johnson[32] is None
    assert our_cosma[32] is None
    # ... but not at small node counts.
    assert johnson[1] is not None and our_cosma[1] is not None

    # Reference COSMA is host-resident: it never OOMs.
    assert all(v is not None for v in cosma.values())

    # Systolic Cannon stays within a few percent of peak at scale;
    # broadcast-based SUMMA pays for collective contention.
    top = counts[-1]
    assert cannon[top] >= summa[top]

    # 2-D algorithms dip at non-square machine grids (32 nodes = 128
    # GPUs -> 16x8).
    assert summa[32] <= 0.85 * cannon[32]
