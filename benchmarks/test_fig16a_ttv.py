"""Figure 16a: TTV weak scaling, CPU + GPU (E3).

The paper's sharpest generality result: DISTAL schedules TTV with zero
communication and weak-scales flat, while CTF's matmul fold moves the
whole 3-tensor through the network and collapses past one node.
"""

from conftest import node_counts

from repro.bench.figures import fig16_higher_order, format_table, series


def test_fig16a_cpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "ttv", gpu=False, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16a: TTV weak scaling (CPU)"))

    ours = series(rows, "Ours")
    ctf = series(rows, "CTF")

    # Ours weak-scales flat (zero communication).
    assert max(ours.values()) / min(ours.values()) < 1.1
    # CTF collapses past one node.
    top = counts[-1]
    assert ctf[top] < 0.5 * ctf[1]
    # Large speedup at scale (the paper's biggest higher-order gap).
    assert ours[top] / ctf[top] > 3.0


def test_fig16a_gpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "ttv", gpu=True, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16a: TTV weak scaling (GPU)"))
    ours = series(rows, "Ours")
    # GPU bandwidth well above CPU bandwidth; flat scaling.
    assert min(ours.values()) > 2 * 270
    assert max(ours.values()) / min(ours.values()) < 1.1
