"""Figure 16b: Innerprod weak scaling, CPU + GPU (E4).

Both systems weak-scale flat here — a pure reduction needs no fold —
but the bespoke kernel's fused leaf streams faster than CTF's generic
element-wise machinery (paper: "CTF achieves good weak scaling ... but
is still slower than our implementation").
"""

from conftest import node_counts

from repro.bench.figures import fig16_higher_order, format_table, series


def test_fig16b_cpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "innerprod", gpu=False, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16b: Innerprod weak scaling (CPU)"))

    ours = series(rows, "Ours")
    ctf = series(rows, "CTF")
    # Both flat.
    assert max(ours.values()) / min(ours.values()) < 1.1
    assert max(ctf.values()) / min(ctf.values()) < 1.1
    # Ours consistently faster.
    for nodes in counts:
        assert ours[nodes] > ctf[nodes]


def test_fig16b_gpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "innerprod", gpu=True, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16b: Innerprod weak scaling (GPU)"))
    ours = series(rows, "Ours")
    assert max(ours.values()) / min(ours.values()) < 1.15
