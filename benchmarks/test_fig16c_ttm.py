"""Figure 16c: TTM weak scaling, CPU + GPU (E5).

DISTAL expresses TTM as independent local matmuls (no inter-node
communication, flat scaling at GEMM rates); CTF's fold redistributes
the 3-tensor and drops sharply past one node.
"""

from conftest import node_counts

from repro.bench.figures import fig16_higher_order, format_table, series


def test_fig16c_cpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "ttm", gpu=False, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16c: TTM weak scaling (CPU)"))

    ours = series(rows, "Ours")
    ctf = series(rows, "CTF")
    # Ours holds near-GEMM rates at every count.
    assert min(ours.values()) > 500
    # CTF pays a large inter-node redistribution.
    top = counts[-1]
    assert ctf[top] < 0.65 * ctf[1]
    # The paper's 1.8x-3.7x range over CTF.
    assert 1.8 <= ours[top] / ctf[top] <= 6.0


def test_fig16c_gpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "ttm", gpu=True, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16c: TTM weak scaling (GPU)"))
    ours = series(rows, "Ours")
    # Communication-free: high and flat on GPUs as well.
    assert max(ours.values()) / min(ours.values()) < 1.2
