"""Figure 16d: MTTKRP weak scaling, CPU + GPU (E6).

DISTAL implements the specialized Ballard et al. algorithm (3-tensor in
place, factor matrices replicated along grid faces, partials reduced
into the output); CTF folds through two matmuls with a large
intermediate and stays flat but far below.
"""

from conftest import node_counts

from repro.bench.figures import fig16_higher_order, format_table, series


def test_fig16d_cpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "mttkrp", gpu=False, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16d: MTTKRP weak scaling (CPU)"))

    ours = series(rows, "Ours")
    ctf = series(rows, "CTF")
    top = counts[-1]
    # The paper's 1.8x-3.7x band over CTF at scale.
    assert 1.8 <= ours[top] / ctf[top] <= 6.0
    # CTF is flat (its behaviour is dominated by the same folds at
    # every count) but low.
    tail = [ctf[n] for n in counts[1:]]
    assert max(tail) / min(tail) < 1.3


def test_fig16d_gpu(run_once):
    counts = node_counts()
    rows = run_once(
        fig16_higher_order, "mttkrp", gpu=True, node_counts=counts
    )
    print()
    print(format_table(rows, "Figure 16d: MTTKRP weak scaling (GPU)"))
    ours = series(rows, "Ours")
    assert all(v is not None and v > 0 for v in ours.values())
