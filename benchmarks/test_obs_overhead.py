"""Observability overhead: tracing must be free when off, cheap when on.

The observability layer's acceptance bar is that the 512-node Cannon
simulate regresses < 2% with tracing disabled. The ``bench:``-prefixed
record this module appends (via the suite's sessionfinish hook) is what
the nightly perf-regression gate compares against the
pre-observability baseline; the tracing-on wall is recorded alongside
it so the cost of *enabling* spans stays visible in the perf log too.
"""

import time

from repro.obs.metrics import METRICS
from repro.obs.spans import reset_spans, set_tracing, span
from repro.sim.params import LASSEN


def build_cannon(nodes):
    from repro.algorithms.matmul import cannon
    from repro.bench.weak_scaling import square_grid, weak_matrix_size
    from repro.machine.cluster import Cluster
    from repro.machine.grid import Grid
    from repro.machine.machine import Machine

    cluster = Cluster.cpu_cluster(nodes)
    machine = Machine(cluster, Grid(*square_grid(cluster.num_processors)))
    return cannon(machine, weak_matrix_size(8192, nodes))


def test_disabled_span_is_near_free():
    """The disabled path is one flag check returning a shared no-op."""
    set_tracing(False)
    try:
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            with span("bench.noop"):
                pass
        per_call = (time.perf_counter() - start) / n
    finally:
        set_tracing(None)
        reset_spans()
    print(f"\ndisabled span: {per_call * 1e9:.0f} ns/call")
    # Generous ceiling (the measured path is tens of ns): a regression
    # to per-call allocation or locking would blow through it.
    assert per_call < 5e-6


def test_cannon_512_simulate_tracing_disabled(run_once):
    """The gate's record: 512-node simulate wall with tracing off."""
    set_tracing(False)
    try:
        report = run_once(lambda: build_cannon(512).simulate(LASSEN))
    finally:
        set_tracing(None)
    assert report.total_time > 0


def test_tracing_on_vs_off_recorded():
    """Measure the span layer's enabled cost on equal warm runs.

    Both walls land in the perf log (with the metrics snapshot) so
    ``python -m repro.obs diff`` can show exactly what tracing costs.
    """
    from repro.bench.perf_log import append_record

    kern = build_cannon(512)
    kern.simulate(LASSEN)  # warm the step-price digest cache for both

    set_tracing(False)
    try:
        start = time.perf_counter()
        kern.simulate(LASSEN)
        off_wall = time.perf_counter() - start
    finally:
        set_tracing(None)

    set_tracing(True)
    try:
        start = time.perf_counter()
        kern.simulate(LASSEN)
        on_wall = time.perf_counter() - start
    finally:
        set_tracing(None)
        reset_spans()

    append_record("obs:cannon512-tracing-off", off_wall,
                  counters=METRICS.snapshot())
    append_record("obs:cannon512-tracing-on", on_wall,
                  counters=METRICS.snapshot())
    overhead = on_wall / off_wall - 1.0 if off_wall > 0 else 0.0
    print(f"\ntracing off {off_wall:.3f}s, on {on_wall:.3f}s "
          f"({overhead * 100:+.1f}%)")
    # Loose sanity bound: enabled tracing is real work, but it must not
    # multiply the simulate wall.
    assert on_wall < 2.0 * off_wall + 0.05
