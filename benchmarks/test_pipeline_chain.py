"""Acceptance benchmark: joint pipeline tuning at paper scale.

The full-size variant of ``tests/pipeline/test_joint.py``: the
``(A@B)@C`` chain at 256 one-socket nodes with the weak-scaled 65536
problem, jointly tuned through the parallel oracle inside the suite's
240 s budget. The joint schedule must eliminate the intermediate's
redistribution outright and strictly beat independently tuned stages,
and TTMc must behave the same way at 256 GPU-less nodes with plentiful
memory (the mismatch there comes from grid shapes, not capacity).
"""

import os
import time

import pytest

from repro import LASSEN, Pipeline
from repro.tuner.joint import tune_pipeline
from repro.tuner.workloads import lean_cluster, matmul_chain, ttmc

JOBS = int(os.environ.get("REPRO_TUNE_JOBS", "8"))


@pytest.fixture(scope="module")
def chain_result():
    from repro.bench.perf_log import append_record

    cluster = lean_cluster(256, mem_gib=2)
    pipeline = Pipeline(matmul_chain(65536, 512), cluster)
    start = time.monotonic()
    result = tune_pipeline(
        pipeline,
        LASSEN,
        top_k=5,
        max_dims=2,
        coarse_procs=16,
        jobs=JOBS,
    )
    wall = time.monotonic() - start
    append_record("tune-pipeline:chain_256nodes", wall, metrics={
        "combinations": result.combinations,
        "evaluations": result.evaluations,
        "joint_cost_s": result.report.combined.total_time,
        "independent_cost_s": (
            result.independent_report.combined.total_time
        ),
    })
    return result


class TestChainAtScale:
    def test_joint_eliminates_redistribution(self, chain_result):
        assert chain_result.independent_report.redistribution_bytes > 0
        assert chain_result.report.redistribution_bytes == 0.0

    def test_joint_strictly_beats_independent(self, chain_result):
        joint = chain_result.report.combined.total_time
        independent = (
            chain_result.independent_report.combined.total_time
        )
        assert joint < independent

    def test_handoff_is_direct_or_matched(self, chain_result):
        assert chain_result.handoffs["T"] in ("direct", "redistribute")
        assert chain_result.report.edges[0].matched


class TestTTMcAtScale:
    def test_grid_shape_mismatch_resolved_jointly(self):
        cluster = lean_cluster(256, mem_gib=4)
        pipeline = Pipeline(ttmc(1024), cluster)
        result = tune_pipeline(
            pipeline, LASSEN, top_k=5, coarse_procs=16, jobs=JOBS
        )
        assert result.report is not None
        joint = result.report.combined.total_time
        independent = result.independent_report.combined.total_time
        assert joint < independent
        assert result.report.redistribution_bytes == 0.0
