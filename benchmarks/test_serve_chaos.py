"""Chaos soak: the serving layer under a seeded failure schedule.

The acceptance bar for the resilience layer, end to end: a request
burst runs while a :class:`~repro.faults.chaos.ChaosPlan` kills tune
workers mid-fork, drops client connections before replies, tears and
oversizes frames, crashes every dispatch of one poison request, and
restarts the daemon mid-burst. The soak then pins the three serving
guarantees:

* **Exactness survives chaos** — every healthy request eventually
  answers byte-identically to an offline in-process tune of the same
  request, crashes, retries, reconnects and the restart notwithstanding.
* **Deadlines hold** — no client call blocks meaningfully past its
  ``deadline_s`` (reconnect backoff is the only slack).
* **Quarantine caps re-tunes** — the poison request is dispatched at
  most ``quarantine_after`` times ever, then served as a durable
  infeasible-with-reason answer, including by the restarted daemon.
"""

import time
from pathlib import Path

from repro.api import ScheduleRequest, canonical_json, tune_request
from repro.faults.chaos import ChaosController, ChaosPlan, PoisonRequest
from repro.machine.cluster import Cluster
from repro.obs.metrics import METRICS
from repro.serve.client import ScheduleClient
from repro.serve.daemon import ScheduleServer, start_background
from repro.tuner.workloads import sized

SEED = 1017
DEADLINE_S = 60.0
#: Reconnect/backoff slack on top of the daemon-enforced deadline.
DEADLINE_SLACK_S = 15.0
QUARANTINE_AFTER = 3
WORKER_RETRIES = 2


def _canonical(answer_record):
    from repro.api import ScheduleAnswer

    return ScheduleAnswer.from_record(answer_record).canonical_record()


def test_chaos_soak_answers_stay_exact_and_bounded(tmp_path):
    healthy = [
        ScheduleRequest.from_assignment(
            sized("matmul", size), Cluster.cpu_cluster(1)
        )
        for size in (48, 64, 96, 128)
    ]
    poison = ScheduleRequest.from_assignment(
        sized("matmul", 80), Cluster.cpu_cluster(1)
    )
    poison_fp = poison.fingerprint()
    offline = {
        r.fingerprint(): tune_request(r).answer.to_record()
        for r in healthy
    }

    rounds = 4
    # Each round cycles the healthy set; the poison request is asked
    # twice — once to get quarantined, once to verify the quarantined
    # answer serves as a hit without a single new dispatch.
    sequence = [healthy[i % len(healthy)] for i in range(rounds * 4)]
    # After every healthy request tuned once: the sampled worker kills
    # (dispatch indices below ``dispatches``) land on healthy forks,
    # not on the poison request's own crashes.
    sequence.insert(len(healthy) + 2, poison)
    sequence.insert(len(sequence) - 2, poison)
    operations = len(sequence)

    plan = ChaosPlan.sample(
        SEED,
        operations=operations,
        dispatches=len(healthy) + 1,
        kills=2,
        drops=2,
        torn=1,
        oversized=1,
        restart=True,
    ).with_events(PoisonRequest(fingerprint=poison_fp))
    controller = ChaosController(plan)
    restart_after = plan.restart_after() or operations // 2
    print(f"\nchaos plan: {plan.encode()}")

    def new_server():
        return ScheduleServer(
            tmp_path / "ledger",
            socket_path=str(tmp_path / "serve.sock"),
            tune_jobs=2,
            worker_retries=WORKER_RETRIES,
            quarantine_after=QUARANTINE_AFTER,
            retry_backoff_s=0.01,
            chaos=controller,
        )

    before = METRICS.snapshot(sources=False)
    start = time.monotonic()
    server = new_server()
    handle = start_background(server)
    client = ScheduleClient(
        socket_path=server.socket_path,
        timeout=DEADLINE_S + DEADLINE_SLACK_S,
        retries=8,
        backoff_s=0.05,
        chaos=controller,
    )
    responses = {}
    slowest = 0.0
    restarted = False
    try:
        for completed, request in enumerate(sequence):
            t0 = time.monotonic()
            response = client.schedule(request, deadline_s=DEADLINE_S)
            wall = time.monotonic() - t0
            slowest = max(slowest, wall)
            assert wall < DEADLINE_S + DEADLINE_SLACK_S, (
                f"op {completed} blocked {wall:.1f}s past its "
                f"{DEADLINE_S}s deadline"
            )
            responses.setdefault(request.fingerprint(), []).append(
                response
            )
            if not restarted and completed + 1 >= restart_after:
                restarted = True
                handle.stop()
                server = new_server()
                handle = start_background(server)
    finally:
        client.close()
        handle.stop()
    wall = time.monotonic() - start

    # Every healthy request answered, byte-identical to the offline
    # tune — on every ask, before and after the restart.
    for fingerprint, expected in offline.items():
        answers = responses[fingerprint]
        assert answers, f"{fingerprint} never answered"
        for response in answers:
            assert response["status"] == "ok", response
            assert canonical_json(
                _canonical(response["answer"])
            ) == canonical_json(_canonical(expected))

    # The poison request was quarantined with a reason, and its second
    # ask was served from the index: total dispatches stay capped at
    # the consecutive-crash threshold.
    for response in responses[poison_fp]:
        assert response["status"] == "ok"
        assert response["provenance"] == "quarantined"
        assert response["answer"]["cost"] == "infeasible"
        assert response["answer"]["quarantine_reason"]
    assert controller.poison_fired <= QUARANTINE_AFTER, (
        f"poison request dispatched {controller.poison_fired} times "
        f"(cap {QUARANTINE_AFTER})"
    )

    after = METRICS.snapshot(sources=False)
    delta = {
        name: after.get(name, 0) - before.get(name, 0)
        for name in after
        if name.startswith("serve.")
    }
    assert delta.get("serve.crashes", 0) >= QUARANTINE_AFTER
    assert delta.get("serve.quarantined", 0) >= 1
    assert delta.get("serve.reconnects", 0) >= 1
    assert controller.kills_fired >= 1, "no healthy worker was killed"
    assert controller.drops_fired + controller.torn_fired >= 2

    from repro.bench.perf_log import append_record

    append_record(
        "serve:chaos-soak", wall, counters=METRICS.snapshot()
    )
    print(
        f"{operations} ops under chaos in {wall:.2f}s "
        f"(slowest op {slowest:.2f}s); fired: "
        f"kills={controller.kills_fired} "
        f"poison={controller.poison_fired} "
        f"drops={controller.drops_fired} "
        f"torn={controller.torn_fired} "
        f"oversized={controller.oversized_fired} restart=1"
    )
    assert (Path(tmp_path) / "ledger").is_dir()
