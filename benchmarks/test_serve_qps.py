"""Serving throughput: the hit path must sustain >= 1,000 QPS while a
cold tune runs.

The acceptance bar for the schedule-serving daemon is that exact hits
never queue behind tuning: the answer index lives on the event loop,
misses are forked off through the sweep pool. This benchmark replays a
pipelined hit burst over one unix-socket connection *while a cold tune
of a different workload is in flight* and pins the floor.
"""

import time
from pathlib import Path

from repro.api import ScheduleRequest
from repro.machine.cluster import Cluster
from repro.serve.client import ScheduleClient
from repro.serve.daemon import ScheduleServer, start_background
from repro.tuner.workloads import sized

QPS_FLOOR = 1_000
BURST = 2_000


def test_hit_burst_sustains_qps_floor_during_cold_tune(tmp_path):
    hot = ScheduleRequest.from_assignment(
        sized("matmul", 256), Cluster.cpu_cluster(1)
    )
    cold = ScheduleRequest.from_assignment(
        sized("mttkrp", 128), Cluster.cpu_cluster(2)
    )
    server = ScheduleServer(
        tmp_path / "ledger",
        socket_path=str(tmp_path / "serve.sock"),
        tune_jobs=2,
    )
    handle = start_background(server)
    try:
        with ScheduleClient(
            socket_path=server.socket_path, timeout=600.0
        ) as client:
            assert client.schedule(hot)["status"] == "ok"  # prime

            pending = client.schedule(cold, wait=False)
            assert pending["status"] == "pending"

            start = time.monotonic()
            responses = client.schedule_batch([hot] * BURST)
            wall = time.monotonic() - start

            assert all(r["provenance"] == "hit" for r in responses)
            qps = BURST / wall
            print(f"\n{BURST} pipelined hits in {wall:.3f}s "
                  f"= {qps:,.0f} QPS (floor {QPS_FLOOR:,})")
            assert qps >= QPS_FLOOR, (
                f"hit path sustained only {qps:,.0f} QPS during a "
                f"concurrent cold tune (floor {QPS_FLOOR:,})"
            )

            # The cold tune was genuinely concurrent, and completes.
            finished = client.schedule(cold)
            assert finished["status"] == "ok"
            assert finished["provenance"] in ("tuned", "warm-started")
    finally:
        handle.stop()
    assert (Path(tmp_path) / "ledger").is_dir()
