"""Acceptance benchmark: tuning the Fig. 9 matmul at 512 nodes.

The tuner must search the 512-node (1024-processor) schedule space
through the shared parallel oracle inside the suite's 240 s budget and
return a schedule that

* costs no more than the Cannon reference schedule
  (:func:`repro.algorithms.matmul.cannon`), and
* strictly beats the one-shot heuristic — node memory is sized so the
  heuristic's replicated row/column panels OOM at this scale, the
  regime automatic schedule selection exists for;
* is an ordinary :class:`Schedule` + formats that replay
  byte-identically from the winning decision vector.

Wall-clock lands in ``BENCH_simulator.json`` via the benchmark
conftest, alongside the tuner's own ``tune:*`` records.
"""

import os
import time

import pytest

from repro.algorithms.matmul import cannon
from repro.bench.cache import SIM_CACHE
from repro.bench.weak_scaling import square_grid, weak_matrix_size
from repro.core.kernel import Kernel, compile_kernel
from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.tuner.space import realize
from repro.tuner.workloads import matmul
from repro.util.errors import OutOfMemoryError

NODES = 512
#: Node memory sized so fully tiled layouts fit with room to spare but
#: the heuristic's replicated panels (~35 GB/node at this scale) OOM.
MEM_GIB = 16
JOBS = int(os.environ.get("REPRO_TUNE_JOBS", "8"))
BUDGET_S = float(os.environ.get("REPRO_BENCH_BUDGET_S", "240"))


@pytest.fixture(scope="module")
def tuned():
    cluster = Cluster.cpu_cluster(NODES, system_mem_gib=MEM_GIB)
    n = weak_matrix_size(8192, NODES)
    start = time.monotonic()
    result = Kernel.tune(
        matmul(n),
        cluster,
        LASSEN,
        strategy="beam",
        beam_width=8,
        jobs=JOBS,
        seed=0,
    )
    wall = time.monotonic() - start
    # The module fixture does the real work, so record the tuner's
    # wall-clock explicitly in the perf trajectory (the conftest's
    # per-test records only see the assertion bodies).
    from repro.bench.perf_log import append_record

    append_record(
        "bench:tuner_fig9_512nodes",
        wall,
        metrics={
            "space": result.search.space_size,
            "simulations": result.search.evaluations,
            "tuned_cost_s": result.search.best.cost,
        },
    )
    return cluster, n, result, wall


def test_space_searched_within_budget(tuned):
    _cluster, _n, result, wall = tuned
    assert result.search.space_size > 900  # the 512-node space
    assert wall < BUDGET_S, (
        f"tuning took {wall:.1f}s, budget {BUDGET_S:.0f}s"
    )
    print(
        f"\n512-node tune: {result.search.space_size} candidates, "
        f"{result.search.evaluations} simulations, {wall:.1f}s wall"
    )
    print(result.search.describe())


def test_beats_heuristic_and_matches_cannon(tuned):
    cluster, n, result, _wall = tuned
    # The heuristic OOMs at this scale: the tuner strictly improves.
    assert not result.search.seed_outcome.feasible
    assert result.search.best.feasible
    assert result.search.improved

    # Cross-check the OOM against the real heuristic compile.
    grid = square_grid(cluster.num_processors)
    heuristic = Kernel.autoschedule(
        matmul(n), Machine(cluster, Grid(*grid))
    )
    with pytest.raises(OutOfMemoryError):
        SIM_CACHE.simulate(heuristic, LASSEN)

    # ... and costs no more than the Cannon reference schedule.
    reference = cannon(Machine(cluster, Grid(*grid)), n)
    cannon_report = SIM_CACHE.simulate(reference, LASSEN)
    assert result.report.total_time <= cannon_report.total_time * (
        1 + 1e-9
    )
    print(
        f"\ncannon {cannon_report.total_time:.4f}s vs "
        f"tuned {result.report.total_time:.4f}s "
        f"({result.decision.encode()})"
    )


def test_result_replays_byte_identically(tuned):
    _cluster, n, result, _wall = tuned
    replay_stmt = matmul(n)
    sched, fmts = realize(replay_stmt, result.machine, result.decision)
    plan = compile_kernel(sched, result.machine).plan.pretty()
    assert plan == result.kernel.plan.pretty()
    assert {name: f.notation() for name, f in fmts.items()} == {
        name: f.notation() for name, f in result.formats.items()
    }
