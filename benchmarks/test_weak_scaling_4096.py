"""4096-node weak scaling: sixteen times the paper's largest machine.

The batched executor (PR 1) topped out around 512 nodes; the
orbit-compressed executor simulates one representative per symmetry
class, so an 8192-processor sweep is minutes of work. Checks that
per-node throughput stays flat out to 4096 nodes and records the
simulated rates into the perf trajectory.
"""

from conftest import node_counts

from repro.bench.perf_log import append_record
from repro.bench.weak_scaling import matmul_weak_scaling


def series(rows, system):
    return {
        int(r["nodes"]): r["value"] for r in rows if r["system"] == system
    }


def test_weak_scaling_to_4096_nodes(run_once):
    counts = node_counts(extra=(512, 4096))

    rows = run_once(
        matmul_weak_scaling,
        node_counts=counts,
        algorithms=("cannon", "summa", "johnson"),
        jobs=4,
    )

    print()
    print("== Weak scaling to 4096 nodes (GFLOP/s/node) ==")
    header = f"{'algorithm':<10s}" + "".join(f"{n:>10d}" for n in counts)
    print(header)
    for system in ("cannon", "summa", "johnson"):
        curve = series(rows, system)
        cells = "".join(
            f"{'OOM':>10s}" if curve[n] is None else f"{curve[n]:>10.1f}"
            for n in counts
        )
        print(f"{system:<10s}" + cells)

    cannon = series(rows, "cannon")
    assert cannon[4096] is not None
    # Weak scaling: 4096-node per-node throughput within 25% of 1 node.
    assert cannon[4096] > 0.75 * cannon[1]
    assert len(rows) == 3 * len(counts)
    append_record(
        "weak4096:cannon_gflops_per_node",
        0.0,
        metrics={str(n): cannon[n] for n in counts},
    )
