"""512-node weak scaling: the paper's axis, doubled.

The seed's per-context interpreter made anything past 256 nodes
impractical; the batched executor sweeps 512 nodes (1024 processors,
n ~ 185k) in seconds. Checks that per-node throughput holds up at the
extended scale (weak scaling: the whole point is a flat curve).
"""

import pytest

from conftest import node_counts

from repro.bench.weak_scaling import matmul_weak_scaling


def series(rows, system):
    return {
        int(r["nodes"]): r["value"] for r in rows if r["system"] == system
    }


def test_weak_scaling_to_512_nodes(run_once):
    counts = node_counts(extra=(256, 512))

    rows = run_once(
        matmul_weak_scaling,
        node_counts=counts,
        algorithms=("cannon", "summa", "johnson"),
    )

    print()
    print("== Weak scaling to 512 nodes (GFLOP/s/node) ==")
    header = f"{'algorithm':<10s}" + "".join(f"{n:>10d}" for n in counts)
    print(header)
    for system in ("cannon", "summa", "johnson"):
        curve = series(rows, system)
        cells = "".join(
            f"{'OOM':>10s}" if curve[n] is None else f"{curve[n]:>10.1f}"
            for n in counts
        )
        print(f"{system:<10s}" + cells)

    cannon = series(rows, "cannon")
    assert cannon[512] is not None
    # Weak scaling: 512-node per-node throughput within 25% of 1 node.
    assert cannon[512] > 0.75 * cannon[1]
    # The sweep covers every requested point.
    assert len(rows) == 3 * len(counts)
