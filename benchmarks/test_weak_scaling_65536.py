"""The ``weak65536`` axis: out to 256x the paper's largest machine.

The fallback-free orbit executor plus phase replay (translation /
rotation transport — see ``docs/simulator.md``) put five-figure node
counts in reach: 131,072 processors, 512 communication phases whose
steady state replays instead of re-resolving. Like every benchmark
here the default run reduces the axis to fit the suite budget — the
trio through the small counts plus Cannon alone at 32,768 nodes
(~2 min of exact per-member column arithmetic on one core); set
``REPRO_FULL_SWEEP=1`` to push the top point to the full 65,536 nodes
(~6 min, the `python -m repro.bench weak65536` axis top). Broadcast
algorithms stop at the small counts: they have no replayable phase
structure and would dominate the budget without adding information
about the scaling claim, which is Cannon's.
"""

import os

from conftest import node_counts

from repro.bench.perf_log import append_record
from repro.bench.weak_scaling import matmul_weak_scaling


def series(rows, system):
    return {
        int(r["nodes"]): r["value"] for r in rows if r["system"] == system
    }


def test_weak_scaling_toward_65536_nodes(run_once):
    counts = node_counts(extra=(512,))
    top = 65536 if os.environ.get("REPRO_FULL_SWEEP") else 32768

    def sweep():
        rows = matmul_weak_scaling(
            node_counts=counts,
            algorithms=("cannon", "summa", "johnson"),
            jobs=4,
        )
        rows += matmul_weak_scaling(
            node_counts=[top], algorithms=("cannon",), jobs=1
        )
        return rows

    rows = run_once(sweep)

    print()
    print(f"== Weak scaling to {top} nodes (GFLOP/s/node) ==")
    axis = counts + [top]
    header = f"{'algorithm':<10s}" + "".join(f"{n:>10d}" for n in axis)
    print(header)
    for system in ("cannon", "summa", "johnson"):
        curve = series(rows, system)
        cells = "".join(
            f"{'—':>10s}" if n not in curve
            else f"{'OOM':>10s}" if curve[n] is None
            else f"{curve[n]:>10.1f}"
            for n in axis
        )
        print(f"{system:<10s}" + cells)

    cannon = series(rows, "cannon")
    assert cannon[top] is not None
    # Weak scaling holds to the top count: per-node throughput within
    # 25% of one node.
    assert cannon[top] > 0.75 * cannon[1]
    append_record(
        f"weak65536:cannon_gflops_per_node_{top}",
        0.0,
        metrics={str(n): cannon[n] for n in cannon},
    )
