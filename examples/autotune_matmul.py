"""Autotuning the Fig. 9 matmul: heuristic vs. searched schedule.

Runs the one-shot auto-scheduling heuristic and the search-based tuner
on the same square matmul over a memory-constrained cluster — the
regime where schedule selection matters: the heuristic's replicated
input panels no longer fit, and the tuner has to rediscover a tiled
Figure 9 layout from scratch.

Run from the repository root::

    PYTHONPATH=src python examples/autotune_matmul.py
"""

from repro import Kernel, LASSEN, OutOfMemoryError
from repro.bench.cache import SIM_CACHE
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.tuner.workloads import matmul

MB = 1024 * 1024


def constrained_cluster(nodes: int, node_mem_mb: int) -> Cluster:
    return Cluster.build(
        num_nodes=nodes,
        procs_per_node=2,
        proc_kind=ProcessorKind.CPU_SOCKET,
        proc_mem_kind=MemoryKind.SYSTEM_MEM,
        proc_mem_capacity=node_mem_mb * MB,
        system_mem_capacity=node_mem_mb * MB,
    )


def main():
    n = 8192
    cluster = constrained_cluster(nodes=32, node_mem_mb=128)
    print(f"workload: {n} x {n} matmul on {cluster!r}")

    # --- the one-shot heuristic -------------------------------------
    machine = Machine(cluster, Grid(8, 8))
    heuristic = Kernel.autoschedule(matmul(n), machine)
    try:
        report = SIM_CACHE.simulate(heuristic, LASSEN)
        print(f"heuristic: {report.total_time:.4f}s simulated")
    except OutOfMemoryError as err:
        print(f"heuristic: OOM ({err})")

    # --- the tuner ---------------------------------------------------
    result = Kernel.tune(
        matmul(n),
        cluster,
        LASSEN.with_(overlap=False),  # blocking comm: rotation visible
        strategy="exhaustive",
        jobs=4,
    )
    print()
    print(result.describe())
    print()
    print("tuned plan:")
    print(result.kernel.pretty())


if __name__ == "__main__":
    main()
