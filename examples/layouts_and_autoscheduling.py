#!/usr/bin/env python
"""Layout transformation and automatic scheduling.

Two capabilities around the core compiler:

* **Redistribution** (paper Section 1): tensors can be transformed
  between distributed layouts with a compiled transfer whose traffic the
  runtime derives automatically — "easily transform data between
  distributed layouts to match the computation".
* **Auto-scheduling** (paper Section 9, future work): derive a
  distribution schedule and matching formats for any einsum
  automatically, and inspect what was chosen.

Run:  python examples/layouts_and_autoscheduling.py
"""

import numpy as np

from repro import (
    Assignment,
    Format,
    Machine,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.codegen.placement import describe_placement
from repro.core.autoschedule import auto_schedule
from repro.core.transfer import redistribution_bytes, transfer_kernel
from repro.sim.analysis import communication_report


def main():
    rng = np.random.default_rng(4)
    machine = Machine.flat(4)
    n = 16

    # --- Redistribution: rows -> columns. ------------------------------
    T = TensorVar("T", (n, n), Format("xy -> x"))
    print("Placement of the source layout:")
    print(describe_placement(T, machine))
    print()

    cost = redistribution_bytes(T, Format("yx -> x"), machine)
    print(f"Transforming rows -> columns moves {cost:,} bytes")
    kern = transfer_kernel(T, Format("yx -> x"), machine)
    data = rng.random((n, n))
    res = kern.execute({"T": data})
    np.testing.assert_allclose(res.outputs["T_re"], data)
    print("Transfer verified: same values, new layout.")
    print()

    # --- Auto-scheduling a TTV. -----------------------------------------
    m2 = Machine.flat(2, 2)
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n, n))
    c = TensorVar("c", (n,))
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, j, k] * c[k])

    result = auto_schedule(stmt, m2)
    print(result.describe())
    kern = compile_kernel(result.schedule, m2)
    res = kern.execute(
        {"B": rng.random((n, n, n)), "c": rng.random(n)}, verify=True
    )
    print()
    print("Auto-scheduled TTV communication report:")
    print(communication_report(res.trace, m2))
    print()
    print("(The derived schedule matches the paper's hand-written one: "
          "tile B and A, replicate c, zero communication.)")


if __name__ == "__main__":
    main()
