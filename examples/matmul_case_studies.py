#!/usr/bin/env python
"""The Figure 9 case studies: six matmul algorithms from two languages.

Compiles Cannon's, PUMMA, SUMMA, Johnson's, Solomonik's 2.5-D and COSMA
from their data distributions + schedules, runs each one functionally
(verified against numpy), and characterizes its communication pattern —
systolic shifts vs broadcasts, 2-D vs 3-D volume, replication memory.

Run:  python examples/matmul_case_studies.py
"""

import numpy as np

from repro import Cluster, Grid, Machine
from repro.algorithms import cannon, cosma, johnson, pumma, solomonik, summa


def characterize(name, kernel, machine, inputs):
    res = kernel.execute(dict(inputs))
    trace = res.trace
    copies = [c for c in trace.copies if not c.reduce]
    reduces = [c for c in trace.copies if c.reduce]
    if copies:
        max_dist = max(
            machine.torus_distance(c.src_coords, c.dst_coords)
            for c in copies
        )
    else:
        max_dist = 0
    pattern = "systolic" if max_dist <= 1 else "broadcast/collective"
    hw = max(trace.memory_high_water.values())
    print(
        f"{name:<12s} copies={len(copies):4d} reductions={len(reduces):3d} "
        f"bytes={trace.total_copy_bytes:>10,} maxdist={max_dist} "
        f"({pattern}); high-water={hw:,} B"
    )
    return res.outputs["A"]


def main():
    n = 36
    rng = np.random.default_rng(1)
    inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
    expected = inputs["B"] @ inputs["C"]

    print(f"GEMM n={n} on 9 processors (2-D) / 8 processors (3-D)\n")

    m2 = Machine.flat(3, 3)
    m3 = Machine.flat(2, 2, 2)
    cl = Cluster.cpu_cluster(8, sockets_per_node=1)

    cases = [
        ("Cannon", cannon(m2, n), m2),
        ("PUMMA", pumma(m2, n), m2),
        ("SUMMA", summa(m2, n), m2),
        ("Johnson", johnson(m3, n), m3),
        ("Solomonik", solomonik(m3, n), m3),
    ]
    for name, kern, mach in cases:
        out = characterize(name, kern, mach, inputs)
        np.testing.assert_allclose(out, expected)

    cosma_kern = cosma(cl, n)
    out = characterize("COSMA", cosma_kern, cosma_kern.machine, inputs)
    np.testing.assert_allclose(out, expected)
    print(f"\nCOSMA optimizer chose grid {cosma_kern.machine.shape}")

    print("\nAll six algorithms verified against numpy.")

    # The paper's Section 1 lines-of-code comparison: the whole SUMMA
    # distribution spec is the schedule below (6 commands + 1 format
    # line), against ~500 lines for the hand-written COSMA kernel.
    print("\nSUMMA scheduling commands applied:")
    sched_log = summa(m2, n).plan
    print("  Format:  A, B, C all 'xy -> xy'")
    print("  Schedule: distribute, split, reorder, communicate x2, substitute")


if __name__ == "__main__":
    main()
