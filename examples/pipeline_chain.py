"""Jointly tuning the ``(A@B)@C`` chain: handoffs matter.

Tunes the two GEMM stages of ``D = (A @ B) @ C`` on a
memory-constrained cluster, first independently (each stage's own
winner, redistribution between them) and then jointly (per-stage
decision vectors *plus* the handoff format of the intermediate ``T``),
and prints the per-stage + redistribution cost breakdown of both. On
this configuration the joint schedule reads ``T`` directly in the
layout the first stage writes, eliminating the redistribution
entirely.

Run from the repository root::

    PYTHONPATH=src python examples/pipeline_chain.py [--nodes 64]
"""

import argparse

from repro import LASSEN, Pipeline, tune_pipeline
from repro.bench.weak_scaling import weak_matrix_size
from repro.tuner.workloads import lean_cluster, matmul_chain


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--mem-gib", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    n = weak_matrix_size(4096, args.nodes)
    r = max(256, n // 128)
    cluster = lean_cluster(args.nodes, args.mem_gib)
    stages = matmul_chain(n, r)
    pipeline = Pipeline(stages, cluster)
    print(
        f"(A@B)@C with A,B {n}x{n}, C {n}x{r} on {cluster!r}"
    )

    result = tune_pipeline(
        pipeline,
        LASSEN,
        top_k=4,
        max_dims=2,
        coarse_procs=16,
        jobs=args.jobs,
    )
    print()
    print(result.describe())

    print()
    print("independent stages + default handoff redistribution:")
    if result.independent_report is not None:
        print(result.independent_report.describe())
    else:
        print("  infeasible (a stage or the handoff exceeds memory)")
    print()
    print("joint schedule:")
    if result.report is not None:
        print(result.report.describe())
        for edge in pipeline.edges:
            src, src_m, dst, dst_m = result.plan.handoff_formats(edge)
            print(
                f"  {edge.tensor}: producer writes {src.notation()} on "
                f"{src_m.shape}, consumer reads {dst.notation()} on "
                f"{dst_m.shape}"
            )
    else:
        print("  infeasible")


if __name__ == "__main__":
    main()
