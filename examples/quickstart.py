#!/usr/bin/env python
"""Quickstart: compile, run and inspect a distributed matrix multiply.

This is Figure 2 of the DISTAL paper, in this library's Python API: a
SUMMA-style GEMM over a 2x2 machine grid, with the data distribution
declared in the tensors' formats and the computation mapped by a
schedule. The kernel runs functionally on the simulated distributed
runtime and is verified against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)


def main():
    n = 256

    # --- Machine: a 2x2 grid of abstract processors. ------------------
    machine = Machine.flat(2, 2)

    # --- Formats: tile every matrix over both machine dimensions. -----
    tiles = Format("xy -> xy")

    A = TensorVar("A", (n, n), tiles)
    B = TensorVar("B", (n, n), tiles)
    C = TensorVar("C", (n, n), tiles)

    # --- Computation: tensor index notation. --------------------------
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, k] * C[k, j])

    # --- Schedule: the SUMMA algorithm (Figure 2 / Figure 9). ---------
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    sched = (
        Schedule(stmt)
        # Tile i and j onto the machine grid and distribute the tiles.
        .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
        # Step over k in chunks.
        .split(k, ko, ki, 64)
        .reorder([ko, ii, ji, ki])
        # A stays put on its owner; B and C chunks move per k step.
        .communicate(A, jo)
        .communicate([B, C], ko)
        # Hand the innermost loops to an optimized GEMM kernel.
        .substitute([ii, ji, ki], "blas_gemm")
    )

    kernel = compile_kernel(sched, machine)

    print("Generated distributed program:")
    print(kernel.pretty())
    print()

    # --- Execute functionally and verify against numpy. ---------------
    rng = np.random.default_rng(0)
    inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
    result = kernel.execute(inputs, verify=True)
    print("Verified against numpy.einsum")
    print(f"  copies moved : {len(result.trace.copies)}")
    print(f"  bytes moved  : {result.trace.total_copy_bytes:,}")
    print(f"  total flops  : {result.trace.total_flops:,.0f}")

    # --- Simulate at supercomputer scale. ------------------------------
    from repro import Cluster
    from repro.algorithms import summa

    cluster = Cluster.cpu_cluster(16)  # 16 Lassen-like CPU nodes
    big = summa(Machine(cluster, Grid(8, 4)), 32768)
    report = big.simulate()
    print()
    print("Simulated on 16 CPU nodes, n=32768:")
    print(f"  {report.gflops_per_node:8.1f} GFLOP/s per node")
    print(f"  {report.total_time:8.3f} s total")
    print(f"  {report.comm_time:8.3f} s communication (overlapped)")


if __name__ == "__main__":
    main()
