#!/usr/bin/env python
"""Higher-order tensor kernels in a decomposition workload.

The paper motivates TTM and MTTKRP as "important building blocks in
routines that compute Tucker and canonical polyadic decompositions"
(Section 7.2). This example runs one sweep of each building block on a
distributed 3-tensor:

* a TTM (mode-1 product) as used by HOSVD/Tucker,
* an MTTKRP as used by one step of CP-ALS,
* the inner product used for residual norms,

all compiled through the library and verified against numpy.

Run:  python examples/tensor_decomposition.py
"""

import numpy as np

from repro import Machine
from repro.algorithms import innerprod, mttkrp, ttm, ttv


def main():
    n, r = 24, 8
    rng = np.random.default_rng(2)
    X = rng.random((n, n, n))  # the data tensor
    factor_c = rng.random((n, r))
    factor_d = rng.random((n, r))

    # --- Tucker building block: mode product (TTM). --------------------
    m1 = Machine.flat(4)
    kern_ttm = ttm(m1, n, r=r)
    res = kern_ttm.execute({"B": X, "C": factor_c}, verify=True)
    print("TTM    A(i,j,l) = B(i,j,k) C(k,l)")
    print(f"  communication: {res.trace.total_copy_bytes} bytes "
          f"(communication-free schedule)")

    # --- CP-ALS building block: MTTKRP (Ballard et al. algorithm). -----
    m3 = Machine.flat(2, 2, 2)
    kern_mk = mttkrp(m3, n, r=r)
    res = kern_mk.execute(
        {"B": X, "C": factor_c, "D": factor_d}, verify=True
    )
    reduces = sum(1 for c in res.trace.copies if c.reduce)
    print("MTTKRP A(i,l) = B(i,j,k) C(j,l) D(k,l)")
    print(f"  B stays in place; {reduces} partial results reduced into A")

    # --- Residual norm building blocks. ---------------------------------
    m2 = Machine.flat(2, 2)
    kern_ip = innerprod(m2, n)
    res = kern_ip.execute({"B": X, "C": X}, verify=True)
    norm2 = float(res.outputs["a"])
    print("Innerprod a = B(i,j,k) C(i,j,k)")
    print(f"  ||X||^2 = {norm2:.4f} (expected {np.sum(X * X):.4f})")

    kern_ttv = ttv(m2, n)
    res = kern_ttv.execute({"B": X, "c": rng.random(n)}, verify=True)
    print("TTV    A(i,j) = B(i,j,k) c(k)")
    print(f"  communication: {res.trace.total_copy_bytes} bytes")

    print("\nAll decomposition building blocks verified against numpy.")


if __name__ == "__main__":
    main()
