#!/usr/bin/env python
"""Weak-scaling simulation: a slice of the paper's Figure 15.

Simulates GEMM weak scaling on a Lassen-like cluster — DISTAL's Cannon
and SUMMA schedules against the ScaLAPACK, CTF and COSMA baseline
models — and prints the per-node throughput table the paper plots.

Run:  python examples/weak_scaling_simulation.py          (CPU, quick)
      python examples/weak_scaling_simulation.py gpu      (GPU figure)
"""

import sys

from repro.bench.figures import (
    fig15a_cpu_matmul,
    fig15b_gpu_matmul,
    format_table,
    series,
)

NODE_COUNTS = [1, 4, 16, 64]


def main():
    gpu = len(sys.argv) > 1 and sys.argv[1] == "gpu"
    if gpu:
        rows = fig15b_gpu_matmul(node_counts=NODE_COUNTS)
        print(format_table(rows, "Figure 15b: GPU matmul weak scaling"))
    else:
        rows = fig15a_cpu_matmul(node_counts=NODE_COUNTS)
        print(format_table(rows, "Figure 15a: CPU matmul weak scaling"))
        top = NODE_COUNTS[-1]
        ours = series(rows, "Our Cannon")[top]
        scalapack = series(rows, "ScaLAPACK")[top]
        cosma = series(rows, "COSMA")[top]
        print()
        print(f"At {top} nodes: ours/ScaLAPACK = {ours / scalapack:.2f}x, "
              f"ours/COSMA = {ours / cosma:.2f}x")
        print("(The paper reports >=1.25x over ScaLAPACK/CTF and ~0.95x "
              "of COSMA.)")


if __name__ == "__main__":
    main()
