"""Setuptools shim for environments without the wheel package.

``pip install -e .`` needs ``bdist_wheel`` for PEP 660 editable installs;
this offline environment lacks the ``wheel`` module, so ``python setup.py
develop`` provides the equivalent editable install. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
