"""DISTAL reproduced: a distributed tensor algebra compiler in Python.

This package reimplements the system of *DISTAL: The Distributed Tensor
Algebra Compiler* (Yadav, Aiken, Kjolstad — PLDI 2022): a tensor index
notation frontend, the tensor distribution notation format language, the
distributed scheduling language (``distribute`` / ``communicate`` /
``rotate`` on top of classic loop transformations), lowering to a
Legion-like task-based runtime, and a Lassen-calibrated performance model
that regenerates the paper's evaluation figures.

Quickstart::

    import numpy as np
    from repro import (
        Format, Grid, Machine, Schedule, TensorVar, compile_kernel, index_vars,
    )
    from repro.ir.tensor import Assignment

    m = Machine.flat(2, 2)
    f = Format("xy -> xy")
    A = TensorVar("A", (64, 64), f)
    B = TensorVar("B", (64, 64), f)
    C = TensorVar("C", (64, 64), f)
    i, j, k = index_vars("i j k")
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")

    stmt = Assignment(A[i, j], B[i, k] * C[k, j])
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
        .split(k, ko, ki, 32)
        .reorder([ko, ii, ji, ki])
        .communicate(A, jo)
        .communicate([B, C], ko)
    )
    kernel = compile_kernel(sched, m)
    out = kernel.execute(
        {"B": np.random.rand(64, 64), "C": np.random.rand(64, 64)},
        verify=True,
    )
"""

from repro.core.autoschedule import AutoScheduleResult, auto_schedule
from repro.core.kernel import Kernel, compile_kernel
# NOTE: the search entry point is ``Kernel.tune`` / ``repro.tuner.tune``;
# a top-level ``repro.tune`` re-export would be shadowed by the
# ``python -m repro.tune`` CLI module of the same name.
from repro.tuner import Decision, TuneResult, TuningLedger
from repro.core.transfer import (
    formats_equivalent,
    redistribution_bytes,
    redistribution_trace,
    transfer_kernel,
)
from repro.pipeline import Pipeline, PipelinePlan, PipelineReport, Stage
from repro.tuner.joint import PipelineTuneResult, tune_pipeline
from repro.formats.distribution import Distribution
from repro.formats.format import Format
from repro.ir.expr import Access, IndexVar, index_vars
from repro.ir.tensor import Assignment, TensorVar, reference_einsum
from repro.machine.cluster import Cluster, Memory, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule
from repro.sim.params import LASSEN, MachineParams
from repro.sim.report import SimReport
from repro.util.errors import (
    DistributionError,
    LoweringError,
    OutOfMemoryError,
    PipelineError,
    ReproError,
    ScheduleError,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AutoScheduleResult",
    "auto_schedule",
    "redistribution_bytes",
    "transfer_kernel",
    "Assignment",
    "Cluster",
    "Decision",
    "Distribution",
    "DistributionError",
    "Format",
    "Grid",
    "IndexVar",
    "Kernel",
    "LASSEN",
    "LoweringError",
    "Machine",
    "MachineParams",
    "Memory",
    "MemoryKind",
    "OutOfMemoryError",
    "Pipeline",
    "PipelineError",
    "PipelinePlan",
    "PipelineReport",
    "PipelineTuneResult",
    "ProcessorKind",
    "ReproError",
    "ScheduleError",
    "Schedule",
    "SimReport",
    "Stage",
    "TensorVar",
    "TuneResult",
    "TuningLedger",
    "compile_kernel",
    "formats_equivalent",
    "index_vars",
    "redistribution_trace",
    "reference_einsum",
    "tune_pipeline",
]
