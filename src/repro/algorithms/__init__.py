"""Case-study algorithms (Section 4, Figure 9; Section 7.2 kernels).

Every distributed matrix-multiplication algorithm of Figure 9 — Cannon's,
PUMMA, SUMMA, Johnson's 3-D, Solomonik's 2.5-D, and COSMA — expressed as a
data distribution plus a schedule, plus the higher-order tensor kernels of
the evaluation (TTV, Innerprod, TTM, MTTKRP).
"""

from repro.algorithms.matmul import (
    cannon,
    cosma,
    johnson,
    matmul_assignment,
    pumma,
    solomonik,
    summa,
)
from repro.algorithms.cosma_grid import CosmaDecomposition, optimize_grid
from repro.algorithms.higher_order import innerprod, mttkrp, ttm, ttv

__all__ = [
    "CosmaDecomposition",
    "cannon",
    "cosma",
    "innerprod",
    "johnson",
    "matmul_assignment",
    "mttkrp",
    "optimize_grid",
    "pumma",
    "solomonik",
    "summa",
    "ttm",
    "ttv",
]
