"""COSMA's processor-grid and step optimizer.

COSMA (Kwasniewski et al. 2019) derives a near-communication-optimal
parallelization from the red-blue pebbling game: choose a processor grid
``(gx, gy, gz)`` and a number of sequential steps so that each processor
computes a local domain maximizing computation per unit of communication,
subject to its memory. The paper's Figure 9 notes that DISTAL expresses
COSMA's distribution layer once ``gx, gy, gz, numSteps`` are computed by
the COSMA scheduler — this module is that scheduler.

The optimizer enumerates factorizations of ``p`` into three grid factors
and scores each by the per-processor communication volume of the matmul
``C[m,n] += A[m,k] B[k,n]``:

    V(g) = mk/(gx*gz) + kn/(gz*gy) + (gz > 1) * mn/(gx*gy)

(the two input fetches plus the output reduction when the k dimension is
split), breaking ties toward balanced local domains. Sequential steps are
added when the local chunks exceed the memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.util.geometry import ceil_div


@dataclass(frozen=True)
class CosmaDecomposition:
    """The output of the COSMA scheduler."""

    grid: Tuple[int, int, int]
    num_steps: int
    comm_volume: float

    @property
    def gx(self) -> int:
        return self.grid[0]

    @property
    def gy(self) -> int:
        return self.grid[1]

    @property
    def gz(self) -> int:
        return self.grid[2]


def factor_triples(p: int) -> Iterator[Tuple[int, int, int]]:
    """All ordered triples ``(gx, gy, gz)`` with ``gx*gy*gz == p``."""
    for gx in divisors(p):
        rest = p // gx
        for gy in divisors(rest):
            yield gx, gy, rest // gy


def divisors(n: int) -> List[int]:
    """Divisors of ``n`` in increasing order."""
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def comm_volume(
    m: int, n: int, k: int, grid: Tuple[int, int, int]
) -> float:
    """Per-processor words communicated for a grid choice."""
    gx, gy, gz = grid
    volume = m * k / (gx * gz) + k * n / (gz * gy)
    if gz > 1:
        volume += m * n / (gx * gy)
    return volume


def optimize_grid(
    m: int,
    n: int,
    k: int,
    processors: int,
    memory_words: float = float("inf"),
) -> CosmaDecomposition:
    """Choose the best grid and step count for ``C[m,n] += A[m,k] B[k,n]``.

    ``memory_words`` bounds the per-processor working set (local tiles of
    all three matrices); when a candidate exceeds it, the k-chunks are
    stepped sequentially, and grids whose *resident* tiles alone exceed
    memory are discarded.
    """
    best: CosmaDecomposition | None = None
    for grid in factor_triples(processors):
        gx, gy, gz = grid
        if gx > m or gy > n or gz > k:
            continue
        tile_a = ceil_div(m, gx) * ceil_div(k, gz)
        tile_b = ceil_div(k, gz) * ceil_div(n, gy)
        tile_c = ceil_div(m, gx) * ceil_div(n, gy)
        if tile_c * (2 if gz > 1 else 1) > memory_words:
            continue
        steps = 1
        working = tile_a + tile_b + tile_c
        if working > memory_words:
            chunk_budget = memory_words - tile_c
            if chunk_budget <= 0:
                continue
            steps = max(1, ceil_div(tile_a + tile_b, int(chunk_budget)))
            steps = min(steps, ceil_div(k, gz))
        volume = comm_volume(m, n, k, grid)
        candidate = CosmaDecomposition(
            grid=grid, num_steps=steps, comm_volume=volume
        )
        if best is None or _better(candidate, best, m, n, k):
            best = candidate
    if best is None:
        raise ValueError(
            f"no feasible COSMA decomposition for {processors} processors "
            f"and {memory_words} words of memory"
        )
    return best


def _better(
    a: CosmaDecomposition, b: CosmaDecomposition, m: int, n: int, k: int
) -> bool:
    """Lower communication wins; ties prefer fewer steps, then balance."""
    if abs(a.comm_volume - b.comm_volume) > 1e-9:
        return a.comm_volume < b.comm_volume
    if a.num_steps != b.num_steps:
        return a.num_steps < b.num_steps
    return _imbalance(a, m, n, k) < _imbalance(b, m, n, k)


def _imbalance(d: CosmaDecomposition, m: int, n: int, k: int) -> float:
    sides = sorted([m / d.gx, n / d.gy, k / d.gz])
    return sides[-1] / max(sides[0], 1e-9)
