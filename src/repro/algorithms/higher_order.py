"""Higher-order tensor kernels from the evaluation (Section 7.2).

* TTV — tensor-times-vector, ``A(i,j) = B(i,j,k) c(k)``: element-wise,
  schedulable with *zero* inter-node communication by tiling i,j and
  replicating the vector (the paper's schedule; CTF instead reshapes to
  matmul and collapses past one node).
* Innerprod — ``a = B(i,j,k) C(i,j,k)``: node-local reductions followed
  by a global reduction tree.
* TTM — tensor-times-matrix, ``A(i,j,l) = B(i,j,k) C(k,l)``: distributing
  i makes it a set of communication-free local matmuls.
* MTTKRP — ``A(i,l) = B(i,j,k) C(j,l) D(k,l)``: the Ballard et al. (2018)
  algorithm: keep the 3-tensor in place on a 3-D grid, replicate the
  factor matrices along faces, reduce partial outputs into A.
"""

from __future__ import annotations

from typing import Optional

from repro.core.kernel import Kernel, compile_kernel
from repro.formats.format import Format
from repro.ir.expr import index_vars
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule
from repro.util.errors import ScheduleError


def _gemm_leaf(machine: Machine, leaf: Optional[str]) -> str:
    if leaf is not None:
        return leaf
    if machine.cluster.processor_kind is ProcessorKind.GPU:
        return "cublas_gemm"
    return "blas_gemm"


def ttv(
    machine: Machine,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
) -> Kernel:
    """Tensor-times-vector with a communication-free schedule.

    ``B`` is tiled over the 2-D machine by its first two modes, ``A``
    matches, and the vector ``c`` is replicated everywhere; distributing
    i and j then needs no communication at all (Section 7.2.2, TTV).
    """
    if machine.dim != 2:
        raise ScheduleError("the TTV schedule expects a 2-D machine grid")
    gx, gy = machine.shape
    A = TensorVar("A", (n, n), Format("xy -> xy", memory=memory))
    B = TensorVar("B", (n, n, n), Format("xyz -> xy", memory=memory))
    c = TensorVar("c", (n,), Format("x -> **", memory=memory))
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, j, k] * c[k])
    io, ii, jo, ji = index_vars("io ii jo ji")
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))
        .communicate(A, jo)
        .communicate([B, c], jo)
        .parallelize(ii)
    )
    return compile_kernel(sched, machine)


def innerprod(
    machine: Machine,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
) -> Kernel:
    """3-tensor inner product: local reductions then a global tree.

    Both tensors are tiled identically, every processor reduces its local
    block to a scalar partial, and the partials reduce to the machine
    origin (Section 7.2.2, Innerprod).
    """
    if machine.dim != 2:
        raise ScheduleError("the innerprod schedule expects a 2-D machine grid")
    gx, gy = machine.shape
    f3 = Format("xyz -> xy", memory=memory)
    a = TensorVar("a", (), Format(memory=memory))
    B = TensorVar("B", (n, n, n), f3)
    C = TensorVar("C", (n, n, n), f3)
    i, j, k = index_vars("i j k")
    stmt = Assignment(a[()], B[i, j, k] * C[i, j, k])
    io, ii, jo, ji = index_vars("io ii jo ji")
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))
        .communicate([a, B, C], jo)
        .parallelize(ii)
    )
    return compile_kernel(sched, machine)


def ttm(
    machine: Machine,
    n: int,
    r: Optional[int] = None,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """Tensor-times-matrix as communication-free parallel matmuls.

    Distributing the i loop with ``B`` partitioned by its first mode and
    the small matrix ``C`` replicated turns TTM into independent local
    GEMMs — no inter-node communication, unlike CTF's distributed-matmul
    decomposition (Section 7.2.2, TTM).
    """
    if machine.dim != 1:
        raise ScheduleError("the TTM schedule expects a 1-D machine grid")
    p = machine.shape[0]
    if r is None:
        r = max(16, n // 4)
    A = TensorVar("A", (n, n, r), Format("xyw -> x", memory=memory))
    B = TensorVar("B", (n, n, n), Format("xyz -> x", memory=memory))
    C = TensorVar("C", (n, r), Format("zw -> *", memory=memory))
    i, j, k, l = index_vars("i j k l")
    stmt = Assignment(A[i, j, l], B[i, j, k] * C[k, l])
    io, ii = index_vars("io ii")
    sched = (
        Schedule(stmt)
        .distribute([i], [io], [ii], Grid(p))
        .communicate([A, B, C], io)
        .substitute([ii, j, l, k], _gemm_leaf(machine, leaf))
    )
    return compile_kernel(sched, machine)


def mttkrp(
    machine: Machine,
    n: int,
    r: int = 64,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """MTTKRP via the algorithm of Ballard, Knight and Rouse (2018).

    The 3-tensor ``B`` stays in place, tiled over a 3-D grid; the factor
    matrices ``C`` and ``D`` are partitioned by one mode and replicated
    along the other grid dimensions; partial results reduce into the
    output ``A`` on the (0, 0) face (Section 7.2.2, MTTKRP).
    """
    if machine.dim != 3:
        raise ScheduleError("the MTTKRP schedule expects a 3-D machine grid")
    g1, g2, g3 = machine.shape
    A = TensorVar("A", (n, r), Format("xw -> x00", memory=memory))
    B = TensorVar("B", (n, n, n), Format("xyz -> xyz", memory=memory))
    C = TensorVar("C", (n, r), Format("yw -> *y*", memory=memory))
    D = TensorVar("D", (n, r), Format("zw -> **z", memory=memory))
    i, j, k, l = index_vars("i j k l")
    stmt = Assignment(A[i, l], B[i, j, k] * C[j, l] * D[k, l])
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    sched = (
        Schedule(stmt)
        # Default order is i, l, j, k (free then reduction variables);
        # move l innermost so i, j, k can tile onto the grid.
        .reorder([i, j, k, l])
        .distribute([i, j, k], [io, jo, ko], [ii, ji, ki], Grid(g1, g2, g3))
        .communicate([A, B, C, D], ko)
        .substitute([ii, ji, ki, l], _gemm_leaf(machine, leaf))
    )
    return compile_kernel(sched, machine)
