"""The six distributed matrix-multiplication algorithms of Figure 9.

Each function returns a compiled :class:`~repro.core.kernel.Kernel` for
``A(i,j) = sum_k B(i,k) * C(k,j)``, built from exactly the data
distribution and schedule the paper lists:

=============  ==================  ==========================  =========
algorithm      machine             data distribution           pattern
=============  ==================  ==========================  =========
Cannon's       Grid(gx, gy)        A,B,C xy->xy                systolic
PUMMA          Grid(gx, gy)        A,B,C xy->xy                hybrid
SUMMA          Grid(gx, gy)        A,B,C xy->xy                broadcast
Johnson's      Grid(g, g, g)       A xy->xy0, B xz->x0z,       one-shot
                                   C zy->0yz                   broadcast
Solomonik 2.5D Grid(q, q, c)       A,B,C xy->xy0               systolic
COSMA          Grid(gx, gy, gz)    induced by schedule         broadcast
=============  ==================  ==========================  =========
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algorithms.cosma_grid import CosmaDecomposition, optimize_grid
from repro.core.kernel import Kernel, compile_kernel
from repro.formats.format import Format
from repro.ir.expr import index_vars
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule
from repro.util.errors import ScheduleError


def matmul_assignment(
    n: int,
    a_format: Format,
    b_format: Format,
    c_format: Format,
) -> Tuple[Assignment, TensorVar, TensorVar, TensorVar]:
    """The GEMM statement ``A(i,j) = B(i,k) * C(k,j)`` on n x n matrices."""
    A = TensorVar("A", (n, n), a_format)
    B = TensorVar("B", (n, n), b_format)
    C = TensorVar("C", (n, n), c_format)
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j]), A, B, C


def _leaf_for(machine: Machine, leaf: Optional[str]) -> str:
    if leaf is not None:
        return leaf
    if machine.cluster.processor_kind is ProcessorKind.GPU:
        return "cublas_gemm"
    return "blas_gemm"


def _tiled_format(machine: Machine, memory: MemoryKind) -> Format:
    return Format("xy -> xy", memory=memory)


def summa(
    machine: Machine,
    n: int,
    chunk: Optional[int] = None,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """SUMMA (van de Geijn & Watts 1995): the ScaLAPACK algorithm.

    2-D tiled data; processors step over k in chunks; the owners of each
    chunk broadcast it along their row/column (Figure 10).
    """
    gx, gy = machine.shape[0], machine.shape[1]
    if chunk is None:
        chunk = max(1, n // max(gx, gy))
    f = _tiled_format(machine, memory)
    stmt, A, B, C = matmul_assignment(n, f, f, f)
    i, j, k = stmt.all_vars
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))
        .split(k, ko, ki, chunk)
        .reorder([ko, ii, ji, ki])
        .communicate(A, jo)
        .communicate([B, C], ko)
        .substitute([ii, ji, ki], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


def cannon(
    machine: Machine,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """Cannon's algorithm (1969): fully systolic 2-D matmul.

    Like SUMMA but k is divided into processor-row-sized tiles and the
    k loop is rotated by both grid coordinates, so every step shifts B
    and C between neighbours instead of broadcasting (Figures 11, 12).
    """
    gx, gy = machine.shape[0], machine.shape[1]
    f = _tiled_format(machine, memory)
    stmt, A, B, C = matmul_assignment(n, f, f, f)
    i, j, k = stmt.all_vars
    io, ii, jo, ji, ko, ki, kos = index_vars("io ii jo ji ko ki kos")
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))
        .divide(k, ko, ki, gx)
        .reorder([ko, ii, ji, ki])
        .rotate(ko, [io, jo], kos)
        .communicate(A, jo)
        .communicate([B, C], kos)
        .substitute([ii, ji, ki], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


def pumma(
    machine: Machine,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """PUMMA (Choi, Walker, Dongarra 1994): broadcast/systolic hybrid.

    Identical to Cannon's except the rotation uses only the row
    coordinate, so one matrix shifts while the other is broadcast.
    """
    gx, gy = machine.shape[0], machine.shape[1]
    f = _tiled_format(machine, memory)
    stmt, A, B, C = matmul_assignment(n, f, f, f)
    i, j, k = stmt.all_vars
    io, ii, jo, ji, ko, ki, kos = index_vars("io ii jo ji ko ki kos")
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))
        .divide(k, ko, ki, gx)
        .reorder([ko, ii, ji, ki])
        .rotate(ko, [io], kos)
        .communicate(A, jo)
        .communicate([B, C], kos)
        .substitute([ii, ji, ki], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


def johnson(
    machine: Machine,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """Johnson's 3-D algorithm (Agarwal et al. 1995).

    Inputs are tiled onto faces of a processor cube and broadcast along
    the third dimension; each processor runs one local multiply and the
    partial outputs reduce back onto a face (Figure 13). Uses
    asymptotically less communication than 2-D algorithms at the price of
    replicated memory.
    """
    if machine.dim != 3:
        raise ScheduleError("Johnson's algorithm needs a 3-D machine grid")
    g1, g2, g3 = machine.shape
    A = TensorVar("A", (n, n), Format("xy -> xy0", memory=memory))
    B = TensorVar("B", (n, n), Format("xz -> x0z", memory=memory))
    C = TensorVar("C", (n, n), Format("zy -> 0yz", memory=memory))
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, k] * C[k, j])
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    sched = (
        Schedule(stmt)
        .distribute([i, j, k], [io, jo, ko], [ii, ji, ki], Grid(g1, g2, g3))
        .communicate([A, B, C], ko)
        .substitute([ii, ji, ki], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


def solomonik(
    machine: Machine,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """Solomonik & Demmel's 2.5-D algorithm (2011), as used by CTF.

    A ``q x q x c`` grid: each of the ``c`` slices runs a Cannon-style
    systolic pass over ``1/c`` of the k dimension, using the extra memory
    to cut communication by ``sqrt(c)``; partials reduce onto the c=0
    face.
    """
    if machine.dim != 3:
        raise ScheduleError("the 2.5D algorithm needs a Grid(q, q, c) machine")
    q, q2, c = machine.shape
    if q != q2:
        raise ScheduleError("the 2.5D algorithm needs square slices")
    if q % c != 0:
        raise ScheduleError(
            f"the 2.5D algorithm needs c ({c}) to divide q ({q})"
        )
    f = Format("xy -> xy0", memory=memory)
    stmt, A, B, C = matmul_assignment(n, f, f, f)
    i, j, k = stmt.all_vars
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    kio, kii, kios = index_vars("kio kii kios")
    sched = (
        Schedule(stmt)
        .distribute([i, j, k], [io, jo, ko], [ii, ji, ki], Grid(q, q, c))
        .divide(ki, kio, kii, q // c)
        .reorder([kio, ii, ji, kii])
        .rotate(kio, [io, jo], kios)
        .communicate(A, jo)
        .communicate([B, C], kios)
        .substitute([ii, ji, kii], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


def cosma(
    cluster: Cluster,
    n: int,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
    memory_words: float = float("inf"),
    decomposition: Optional[CosmaDecomposition] = None,
) -> Kernel:
    """DISTAL's expression of the COSMA algorithm (Figure 9, last row).

    The COSMA scheduler (:mod:`repro.algorithms.cosma_grid`) picks the
    processor grid and sequential step count; the machine organization
    and data distribution are *induced by the schedule* — inputs are
    placed Johnson-style on the faces of the derived grid.
    """
    p = cluster.num_processors
    if decomposition is None:
        decomposition = optimize_grid(n, n, n, p, memory_words=memory_words)
    gx, gy, gz = decomposition.grid
    machine = Machine(cluster, Grid(gx, gy, gz))
    A = TensorVar("A", (n, n), Format("xy -> xy0", memory=memory))
    B = TensorVar("B", (n, n), Format("xz -> x0z", memory=memory))
    C = TensorVar("C", (n, n), Format("zy -> 0yz", memory=memory))
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, k] * C[k, j])
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    kio, kii = index_vars("kio kii")
    sched = (
        Schedule(stmt)
        .distribute([i, j, k], [io, jo, ko], [ii, ji, ki], Grid(gx, gy, gz))
        .divide(ki, kio, kii, decomposition.num_steps)
        .reorder([kio, ii, ji, kii])
        .communicate(A, ko)
        .communicate([B, C], kio)
        .substitute([ii, ji, kii], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


def summa_rect(
    machine: Machine,
    m: int,
    k: int,
    n: int,
    chunk: Optional[int] = None,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    leaf: Optional[str] = None,
) -> Kernel:
    """Rectangular SUMMA: ``A(m,n) = B(m,k) C(k,n)`` on a 2-D grid.

    The general form used internally by library baselines (CTF folds
    arbitrary contractions into rectangular matmuls); also handy on its
    own for non-square problems.
    """
    gx, gy = machine.shape[0], machine.shape[1]
    if gx > m or gy > n:
        raise ScheduleError(
            f"grid ({gx}, {gy}) larger than output matrix ({m}, {n})"
        )
    if chunk is None:
        chunk = max(1, k // max(gx, gy))
    chunk = min(chunk, k)
    f = _tiled_format(machine, memory)
    A = TensorVar("A", (m, n), f)
    B = TensorVar("B", (m, k), f)
    C = TensorVar("C", (k, n), f)
    i, j, kk = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, kk] * C[kk, j])
    io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
    sched = (
        Schedule(stmt)
        .distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))
        .split(kk, ko, ki, chunk)
        .reorder([ko, ii, ji, ki])
        .communicate(A, jo)
        .communicate([B, C], ko)
        .substitute([ii, ji, ki], _leaf_for(machine, leaf))
    )
    return compile_kernel(sched, machine)


ALGORITHMS_2D = {"cannon": cannon, "pumma": pumma, "summa": summa}
