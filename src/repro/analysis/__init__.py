"""Static schedule analysis: passes over decision vectors and traces.

Four passes, all independent of the simulator:

* :mod:`repro.analysis.legality` — reject ill-formed decision vectors
  with structured diagnostics before any compilation.
* :mod:`repro.analysis.membound` — per-node peak-footprint lower/upper
  bounds from the decision vector alone.
* :mod:`repro.analysis.commbound` — per-kernel communication lower
  bounds (Irony–Toledo–Tishby / Loomis–Whitney for matmul, volume-based
  for higher-order contractions).
* :mod:`repro.analysis.sanitizer` — an independent consistency check
  over execution traces (write–write races, misplaced reductions,
  copies whose source never held the data).

:mod:`repro.analysis.prune` glues the first two into the tuner's
zero-simulation static pruner.
"""

from repro.analysis.commbound import CommBound, comm_lower_bound
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.legality import check_legal, verify_legality
from repro.analysis.membound import MemoryBound, memory_bounds
from repro.analysis.prune import (
    STATIC_DOMINATED,
    STATIC_OOM,
    prune_reason,
)
from repro.analysis.report import AnalysisReport, analyze_kernel
from repro.analysis.sanitizer import sanitize_trace

__all__ = [
    "AnalysisReport",
    "CommBound",
    "Diagnostic",
    "MemoryBound",
    "STATIC_DOMINATED",
    "STATIC_OOM",
    "analyze_kernel",
    "check_legal",
    "comm_lower_bound",
    "memory_bounds",
    "prune_reason",
    "sanitize_trace",
    "verify_legality",
]
