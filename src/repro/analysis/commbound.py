"""Pass 3: per-kernel communication lower bounds.

Bounds the bytes the *busiest* node must ingest, independent of the
schedule chosen — the certificate behind "the tuned schedule is within
X× of the lower bound".

Two families, both conditioned on ``local_bytes`` (``L``) — the data a
node may hold without communicating. By default ``L`` is the node's
memory capacity, which makes the bound sound against *any* schedule
this runtime can express (home replicas materialize for free at t=0,
but never beyond capacity). Passing the analyzer's home-byte count for
a concrete decision instead yields the tighter format-conditioned
certificate used in reports.

* **Volume bound** (any kernel): of ``I`` iteration points some node
  executes ``V >= I/nodes``. A dense operand ``T`` whose index set is a
  subset of the iteration variables is touched by exactly ``I/|T|``
  points per element, so those ``V`` points touch at least
  ``V * |T| / I`` distinct elements of ``T``; summed over operands and
  less the ``L`` bytes already local, the rest must arrive over the
  NIC.
* **Irony–Toledo–Tishby / Loomis–Whitney bound** (matmul-like kernels:
  three index variables, three rank-2 operands): a node performing
  ``V`` multiply-adds with ``M`` words of memory moves at least
  ``V / (2 * sqrt(2 * M)) - M`` words (ITT Theorem 3.1); without the
  memory segmentation, Loomis–Whitney already forces it to touch
  ``3 * V^(2/3)`` operand elements.

The per-node bound divides by the NIC bandwidth for a makespan lower
bound: the busiest node's ingress cannot be overlapped below it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster, MemoryKind
from repro.sim.params import LASSEN, MachineParams


@dataclass(frozen=True)
class CommBound:
    """Communication lower bound for one kernel on one cluster."""

    model: str
    per_node_bytes: int
    time_s: float
    iterations_per_node: int
    local_bytes: int
    num_nodes: int

    def certificate(self, inter_node_bytes: int) -> Optional[float]:
        """Observed-average-node traffic over the bound (the "within X×"
        number), or ``None`` when the bound is vacuous (0)."""
        if self.per_node_bytes <= 0 or self.num_nodes <= 0:
            return None
        return (inter_node_bytes / self.num_nodes) / self.per_node_bytes

    def describe(self) -> str:
        mib = 1024 * 1024
        return (
            f"comm lower bound ({self.model}): "
            f">= {self.per_node_bytes / mib:.2f} MiB into the busiest "
            f"node (>= {self.time_s * 1e3:.3f} ms at the NIC)"
        )


def comm_lower_bound(
    assignment: Assignment,
    cluster: Cluster,
    params: MachineParams = LASSEN,
    local_bytes: Optional[int] = None,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
) -> CommBound:
    """Lower-bound the busiest node's NIC ingress for ``assignment``."""
    nodes = max(1, cluster.num_nodes)
    domains = assignment.domains()
    extents = [e for e in domains.values() if e is not None]
    if len(extents) != len(domains) or not extents:
        return CommBound("volume", 0, 0.0, 0, 0, nodes)
    total_iters = math.prod(extents)
    per_node_iters = -(-total_iters // nodes)  # ceil
    tensors = assignment.tensors()
    itemsize = min(t.itemsize for t in tensors)

    node = cluster.nodes[0]
    if local_bytes is None:
        if memory is MemoryKind.GPU_FB:
            capacity = sum(
                p.memory.capacity_bytes
                for p in node.processors
                if p.memory.kind is MemoryKind.GPU_FB
            )
        else:
            capacity = (
                node.system_memory.capacity_bytes
                if node.system_memory is not None
                else sum(p.memory.capacity_bytes for p in node.processors)
            )
        local_bytes = min(capacity, sum(t.nbytes for t in tensors))

    # Volume bound: distinct operand bytes the busiest node touches.
    touched = 0.0
    for tensor in tensors:
        size = max(1, tensor.nbytes // tensor.itemsize)
        touched += per_node_iters * size / total_iters * tensor.itemsize
    per_node = max(0, math.floor(touched) - local_bytes)
    model = "volume"

    if _matmul_like(assignment):
        words = max(1, local_bytes // itemsize)
        itt = (
            per_node_iters / (2.0 * math.sqrt(2.0 * words)) - words
        ) * itemsize
        lw = 3.0 * per_node_iters ** (2.0 / 3.0) * itemsize - local_bytes
        best = max(itt, lw)
        if best > per_node:
            per_node = math.floor(best)
            model = "itt-loomis-whitney"

    nic = params.nic_bw if params.nic_bw else 1.0
    return CommBound(
        model=model,
        per_node_bytes=per_node,
        time_s=per_node / nic,
        iterations_per_node=per_node_iters,
        local_bytes=local_bytes,
        num_nodes=nodes,
    )


def _matmul_like(assignment: Assignment) -> bool:
    """Three index variables, three distinct rank-2 dense operands —
    the shape ITT's segment argument applies to."""
    if len(assignment.all_vars) != 3 or not assignment.reduction_vars:
        return False
    tensors = assignment.tensors()
    if len(tensors) != 3:
        return False
    return all(len(a.indices) == 2 for a in assignment.accesses())
