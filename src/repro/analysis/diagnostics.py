"""Structured diagnostics shared by every analysis pass."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass.

    ``rule`` is a stable kebab-case identifier tests can assert on;
    ``field`` names the offending decision field (legality) or trace
    entity (sanitizer); ``message`` is the human-readable explanation.
    """

    rule: str
    field: str
    message: str

    def __str__(self):
        return f"[{self.rule}] {self.field}: {self.message}"
