"""Pass 1: static legality verification of schedule decision vectors.

Every rule inspects only the assignment and the decision vector — no
machine, no compilation, no simulation — so rejection costs microseconds.
:func:`verify_legality` returns structured :class:`Diagnostic`s (rule id
+ offending decision field); :func:`check_legal` raises
:class:`~repro.util.errors.LegalityError` carrying them.

Rule identifiers (stable, asserted on by tests):

``grid-empty``            grid has no dimensions or a non-positive extent
``grid-factorization``    grid does not factorize the processor count /
                          does not match the machine's outer level
``dist-arity``            number of distributed variables != grid rank
``unbound-var``           a distributed name is not a variable of the
                          assignment
``duplicate-var``         the same variable bound to two grid dimensions
``extent-mismatch``       a distributed variable's extent is smaller
                          than its grid dimension
``seq-unbound``           sequenced variable is not an assignment var
``seq-distributed``       sequenced variable is also distributed
``seq-not-reduction``     sequenced variable is not a reduction var
``reduction-order``       steps/per-step fetches without the sequenced
                          reduction loop that must precede them (or a
                          sequenced loop with no step dimension)
``steps-dim-range``       steps dimension outside the grid
``steps-extent``          more steps than the sequenced extent allows
``rotation-range``        rotation source outside the grid (or listed
                          twice)
``rotation-without-seq``  rotation with no sequenced loop to rotate
``rotation-aliases-dest`` a rotation source coordinate is the sequenced
                          variable itself — the source set aliases the
                          destination loop
``tile-untileable``       a tiled tensor that has no untiled reduction
                          mode (or is unknown / the output)
``step-comm-invalid``     per-step fetch of a tensor that is not tiled
                          or that the sequenced variable does not index
``bad-output-style``      unknown output placement
``bad-leaf``              unknown leaf kernel choice
``format-grid-incompatible``  the induced per-tensor distributions are
                          invalid for this grid
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.formats.distribution import DimName
from repro.ir.tensor import Assignment
from repro.util.errors import DistributionError, LegalityError

_OUTPUT_STYLES = ("face", "replicate")
_LEAVES = ("gemm", "loops")


def verify_legality(
    assignment: Assignment,
    decision,
    num_procs: Optional[int] = None,
    grid_shape: Optional[Sequence[int]] = None,
) -> List[Diagnostic]:
    """All legality violations of ``decision`` for ``assignment``.

    ``num_procs`` (if given) pins the required grid product;
    ``grid_shape`` (if given) pins the exact machine outer-level shape.
    An empty list means the decision is legal.
    """
    from repro.tuner.space import (
        _input_accesses,
        _tileable_inputs,
        formats_for,
    )

    diags: List[Diagnostic] = []

    def flag(rule: str, field: str, message: str):
        diags.append(Diagnostic(rule, field, message))

    grid = tuple(decision.grid)
    if not grid or any(g < 1 for g in grid):
        flag("grid-empty", "grid", f"invalid grid shape {grid}")
        return diags
    if num_procs is not None and math.prod(grid) != num_procs:
        flag(
            "grid-factorization", "grid",
            f"grid {grid} has {math.prod(grid)} points but the machine "
            f"has {num_procs} processors",
        )
    if grid_shape is not None and grid != tuple(grid_shape):
        flag(
            "grid-factorization", "grid",
            f"decision targets grid {grid} but the machine's outer "
            f"level is {tuple(grid_shape)}",
        )

    domains = assignment.domains()
    var_names = {v.name for v in assignment.all_vars}
    reductions = {v.name for v in assignment.reduction_vars}
    extent_of = {v.name: e for v, e in domains.items()}

    dist = tuple(decision.dist)
    if len(dist) != len(grid):
        flag(
            "dist-arity", "dist",
            f"{len(dist)} distributed variables for a rank-{len(grid)} "
            "grid",
        )
    unbound = [n for n in dist if n not in var_names]
    for name in unbound:
        flag(
            "unbound-var", "dist",
            f"distributed variable {name!r} is not bound by the "
            "assignment",
        )
    seen = set()
    for name in dist:
        if name in seen:
            flag(
                "duplicate-var", "dist",
                f"variable {name!r} bound to two grid dimensions",
            )
        seen.add(name)
    for name, extent in zip(dist, grid):
        dom = extent_of.get(name)
        if name in var_names and dom is not None and dom < extent:
            flag(
                "extent-mismatch", "dist",
                f"variable {name!r} has extent {dom}, smaller than its "
                f"grid dimension ({extent})",
            )

    seq = decision.seq
    steps_dim = decision.steps_dim
    rotate = tuple(decision.rotate)
    if seq is not None:
        if seq not in var_names:
            flag(
                "seq-unbound", "seq",
                f"sequenced variable {seq!r} is not bound by the "
                "assignment",
            )
        else:
            if seq in dist:
                if any(
                    d < len(dist) and dist[d] == seq for d in rotate
                ):
                    flag(
                        "rotation-aliases-dest", "rotate",
                        f"rotation source dimension carries {seq!r}, "
                        "the sequenced variable it would rotate",
                    )
                flag(
                    "seq-distributed", "seq",
                    f"sequenced variable {seq!r} is also distributed",
                )
            if seq not in reductions:
                flag(
                    "seq-not-reduction", "seq",
                    f"sequenced variable {seq!r} is not a reduction "
                    "variable",
                )
        if steps_dim is None:
            flag(
                "reduction-order", "steps_dim",
                f"sequenced loop over {seq!r} has no step dimension",
            )
        elif not 0 <= steps_dim < len(grid):
            flag(
                "steps-dim-range", "steps_dim",
                f"steps dimension {steps_dim} outside rank-{len(grid)} "
                "grid",
            )
        else:
            dom = extent_of.get(seq)
            if dom is not None and grid[steps_dim] > dom:
                flag(
                    "steps-extent", "steps_dim",
                    f"{grid[steps_dim]} steps over {seq!r} with extent "
                    f"{dom}",
                )
    else:
        if steps_dim is not None:
            flag(
                "reduction-order", "steps_dim",
                f"step dimension {steps_dim} with no sequenced "
                "reduction loop before its consumers",
            )
        if decision.step_comm:
            flag(
                "reduction-order", "step_comm",
                "per-step fetches with no sequenced reduction loop "
                "before their consumers",
            )
        if rotate:
            flag(
                "rotation-without-seq", "rotate",
                "rotation with no sequenced loop to rotate",
            )

    seen_rot = set()
    for d in rotate:
        if not 0 <= d < len(grid):
            flag(
                "rotation-range", "rotate",
                f"rotation source dimension {d} outside rank-"
                f"{len(grid)} grid",
            )
        elif d in seen_rot:
            flag(
                "rotation-range", "rotate",
                f"rotation source dimension {d} listed twice",
            )
        seen_rot.add(d)

    output = assignment.lhs.tensor.name
    input_names = {a.tensor.name for a in _input_accesses(assignment)}
    bound_dist = tuple(n for n in dist if n in var_names)
    tileable = set(_tileable_inputs(assignment, bound_dist))
    for name in decision.tiled:
        if name == output or name not in input_names:
            flag(
                "tile-untileable", "tiled",
                f"tiled tensor {name!r} is not an input of the "
                "assignment",
            )
        elif name not in tileable:
            flag(
                "tile-untileable", "tiled",
                f"input {name!r} has no untiled reduction mode to tile",
            )
    tiled_set = set(decision.tiled)
    for name in decision.step_comm:
        if name not in tiled_set:
            flag(
                "step-comm-invalid", "step_comm",
                f"per-step fetch of {name!r}, which is not tiled",
            )
        elif seq is not None and not _accesses_with(
            assignment, name, seq
        ):
            flag(
                "step-comm-invalid", "step_comm",
                f"per-step fetch of {name!r}, which {seq!r} does not "
                "index",
            )

    if decision.output_style not in _OUTPUT_STYLES:
        flag(
            "bad-output-style", "output_style",
            f"unknown output placement {decision.output_style!r}",
        )
    if decision.leaf not in _LEAVES:
        flag(
            "bad-leaf", "leaf",
            f"unknown leaf kernel {decision.leaf!r}",
        )

    tensor_names = {t.name for t in assignment.tensors()}
    for name in getattr(decision, "checkpoint", ()):
        if name not in tensor_names:
            flag(
                "checkpoint-unknown", "checkpoint",
                f"checkpointed tensor {name!r} is not a tensor of the "
                "assignment",
            )

    if not diags:
        # Only meaningful once the vector is structurally sound.
        try:
            formats = formats_for(assignment, decision)
        except DistributionError as exc:
            flag("format-grid-incompatible", "dist", str(exc))
        else:
            for name, fmt in formats.items():
                for dist_level in fmt.distributions:
                    if dist_level.machine_ndim != len(grid):
                        flag(
                            "format-grid-incompatible", "dist",
                            f"tensor {name!r}: distribution names "
                            f"{dist_level.machine_ndim} machine dims "
                            f"for a rank-{len(grid)} grid",
                        )
                    modes = set()
                    for mdim in dist_level.machine_dims:
                        if isinstance(mdim, DimName):
                            if mdim.name in modes:
                                flag(
                                    "format-grid-incompatible", "dist",
                                    f"tensor {name!r}: mode "
                                    f"{mdim.name!r} partitioned by two "
                                    "grid dimensions",
                                )
                            modes.add(mdim.name)
    return diags


def _accesses_with(assignment: Assignment, tensor: str, var: str) -> bool:
    from repro.tuner.space import _indexed_by

    return _indexed_by(assignment, tensor, var)


def check_legal(
    assignment: Assignment,
    decision,
    num_procs: Optional[int] = None,
    grid_shape: Optional[Sequence[int]] = None,
) -> None:
    """Raise :class:`LegalityError` if the decision is ill-formed."""
    diags = verify_legality(
        assignment, decision, num_procs=num_procs, grid_shape=grid_shape
    )
    if diags:
        raise LegalityError(diags)
