"""Pass 2: per-node peak-footprint bounds from the decision vector alone.

The bound mirrors the runtime's instance accounting
(:class:`~repro.runtime.instances.DataEnvironment`) without executing
anything, for the *fullest* memory — node 0's (the first grid points
land there row-major, so it carries the ceil-sized leading blocks, the
0-face output homes, and every origin-homed undistributed tensor; no
other node holds more).

Resident classes, in the order the executor creates them:

* **home** — every distinct home instance the formats place in the
  target memory, deduplicated by ``(tensor, rect)`` exactly as
  ``DataEnvironment._account_home`` does. Exact, so it alone is already
  strictly tighter than the oracle's historical floor-block estimate.
* **task staging** — each task's one-shot fetches (inputs not in
  ``step_comm``) register the full request rectangle when the home
  piece does not cover it, and stay resident until task end. Exact.
* **step staging** — per-step fetches of sequenced inputs. The lower
  bound takes the smallest chunk any step can leave resident; the upper
  bound doubles the largest chunk (the executor registers the next
  chunk before releasing the stale one).
* **partials** — a task that does not own its output rectangle holds a
  partial instance from its first leaf until the task-end flush. Exact.

All four coexist at the end of the last step's leaf, so
``lower = home + task + step_lb + partials`` is a true peak lower
bound; ``upper`` adds the chunk double-hold and the owner's transient
reduction-staging instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.formats.distribution import Fixed
from repro.ir.expr import IndexVar
from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster, MemoryKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.util.geometry import (
    Interval,
    Rect,
    ceil_div,
    split_evenly,
)

#: Above this many grid points, node-0 membership is not enumerated.
_POINT_LIMIT = 1 << 16


@dataclass(frozen=True)
class MemoryBound:
    """Peak-footprint bounds for the fullest memory of a candidate."""

    memory_name: str
    capacity_bytes: int
    lower_bytes: int
    upper_bytes: int
    home_bytes: int
    task_staging_bytes: int
    step_staging_lower: int
    step_staging_upper: int
    partial_bytes: int

    @property
    def infeasible(self) -> bool:
        """Provably over capacity before any simulation."""
        return self.lower_bytes > self.capacity_bytes

    def describe(self) -> str:
        mib = 1024 * 1024
        return (
            f"{self.memory_name}: peak in "
            f"[{self.lower_bytes / mib:.1f}, {self.upper_bytes / mib:.1f}] "
            f"MiB of {self.capacity_bytes / mib:.1f} MiB "
            f"(home {self.home_bytes / mib:.1f}, "
            f"staged {self.task_staging_bytes / mib:.1f}"
            f"+[{self.step_staging_lower / mib:.1f}, "
            f"{self.step_staging_upper / mib:.1f}], "
            f"partials {self.partial_bytes / mib:.1f})"
        )


def memory_bounds(
    assignment: Assignment,
    decision,
    cluster: Cluster,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
) -> MemoryBound:
    """Bound the peak footprint of node 0's target memory statically."""
    from repro.tuner.space import formats_for

    machine = Machine(cluster, Grid(*decision.grid))
    formats = formats_for(assignment, decision, memory)
    per_node = _target_is_node_memory(cluster, memory)
    points = _target_points(machine, cluster, per_node)
    if per_node:
        target = cluster.nodes[0].system_memory
    else:
        target = cluster.processors[0].memory
    domains = {v.name: e for v, e in assignment.domains().items()}
    tensors = assignment.tensors()
    output = tensors[0]
    accesses_by_tensor: Dict[str, List] = {}
    for access in assignment.accesses():
        accesses_by_tensor.setdefault(access.tensor.name, []).append(access)

    home = 0
    seen_home: set = set()
    for tensor in tensors:
        fmt = formats[tensor.name]
        if not fmt.is_distributed:
            if tensor.ndim == 0:
                continue
            # Undistributed: one instance at the origin (node 0).
            home += tensor.nbytes
            continue
        for point in points:
            rect = fmt.owned_rect(machine, point, tensor.shape)
            if rect is None or rect.is_empty:
                continue
            key = (tensor.name, rect)
            if key in seen_home:
                continue
            seen_home.add(key)
            home += rect.volume * tensor.itemsize

    output_read = assignment.accumulate or any(
        a.tensor.name == output.name for a in assignment.accesses()[1:]
    )
    # A 0-face-homed output means non-face tasks exist that flush their
    # partials to the face owners; each flush transiently registers one
    # incoming instance at the owner (add, reduce, release).
    flush_to_owner = any(
        isinstance(m, Fixed)
        for level in formats[output.name].distributions
        for m in level.machine_dims
    )
    step_set = set(decision.step_comm)
    dist_dim = {name: d for d, name in enumerate(decision.dist)}
    steps = (
        decision.grid[decision.steps_dim]
        if decision.steps_dim is not None
        else None
    )

    task_staging = 0
    step_lb = 0
    step_ub = 0
    partials = 0
    reduction_transient = 0
    known_extents = all(
        domains.get(n) is not None for n in dist_dim
    ) and (decision.seq is None or domains.get(decision.seq) is not None)
    if not known_extents:
        # Unknown loop extents: only the home instances are static.
        points = []
    for point in points:
        blocks = {
            name: split_evenly(domains[name], decision.grid[d], point[d])
            for name, d in dist_dim.items()
        }
        for tensor in tensors:
            fmt = formats[tensor.name]
            is_output = tensor.name == output.name
            if is_output and not output_read:
                rect = _request_rect(
                    tensor, accesses_by_tensor[tensor.name], blocks,
                    domains, None, None,
                )
                if rect is None:
                    continue
                nbytes = rect.volume * tensor.itemsize
                if not _owned_covers(
                    fmt, machine, point, tensor.shape, rect
                ):
                    partials += nbytes
                    reduction_transient = max(reduction_transient, nbytes)
                elif flush_to_owner:
                    reduction_transient = max(reduction_transient, nbytes)
                continue
            stepped = (
                tensor.name in step_set
                and decision.seq is not None
                and not is_output
            )
            rect = _request_rect(
                tensor, accesses_by_tensor[tensor.name], blocks, domains,
                decision.seq if stepped else None, steps,
            )
            if rect is None:
                continue
            if stepped:
                lo, hi = _step_chunk_bounds(
                    tensor, fmt, machine, point,
                    accesses_by_tensor[tensor.name], blocks, domains,
                    decision.seq, steps,
                )
                step_lb += lo
                step_ub += hi
            elif not _owned_covers(
                fmt, machine, point, tensor.shape, rect
            ):
                task_staging += rect.volume * tensor.itemsize
            if is_output and output_read:
                # A read output also accumulates partials when unowned.
                nbytes = rect.volume * tensor.itemsize
                if not _owned_covers(
                    fmt, machine, point, tensor.shape, rect
                ):
                    partials += nbytes
                    reduction_transient = max(reduction_transient, nbytes)
                elif flush_to_owner:
                    reduction_transient = max(reduction_transient, nbytes)

    lower = home + task_staging + step_lb + partials
    upper = home + task_staging + step_ub + partials + reduction_transient
    return MemoryBound(
        memory_name=target.name,
        capacity_bytes=target.capacity_bytes,
        lower_bytes=lower,
        upper_bytes=upper,
        home_bytes=home,
        task_staging_bytes=task_staging,
        step_staging_lower=step_lb,
        step_staging_upper=step_ub,
        partial_bytes=partials,
    )


def _target_is_node_memory(cluster: Cluster, memory: MemoryKind) -> bool:
    if memory is MemoryKind.SYSTEM_MEM:
        return cluster.nodes[0].system_memory is not None
    return False


def _target_points(
    machine: Machine, cluster: Cluster, per_node: bool
) -> List[Tuple[int, ...]]:
    """Grid points whose instances land in the target memory.

    Row-major placement puts linear point ``L`` on processor
    ``L % num_procs``; node 0 owns the first ``procs_per_node``
    processors. With over-decomposed grids past ``_POINT_LIMIT`` only
    the leading points are counted (the bound stays a lower bound).
    """
    shape = machine.shape
    total = math.prod(shape)
    num_procs = cluster.num_processors
    if per_node:
        target_procs = min(cluster.procs_per_node, num_procs)
    else:
        target_procs = 1
    if total <= num_procs or total > _POINT_LIMIT:
        linears = range(min(target_procs, total))
    else:
        linears = (
            linear
            for linear in range(total)
            if linear % num_procs < target_procs
        )
    points = []
    for linear in linears:
        coords = []
        rem = linear
        for extent in reversed(shape):
            rem, c = divmod(rem, extent)
            coords.append(c)
        points.append(tuple(reversed(coords)))
    return points


def _request_rect(
    tensor,
    accesses,
    blocks: Dict[str, Interval],
    domains: Dict[str, int],
    step_var: Optional[str],
    steps: Optional[int],
    step_index: int = 0,
) -> Optional[Rect]:
    """The rectangle one task requests for a tensor (bounding box over
    its accesses), or ``None`` when an access is not a plain variable
    (the conservative caller then skips the tensor)."""
    if tensor.ndim == 0:
        return Rect(())
    los = [None] * tensor.ndim
    his = [None] * tensor.ndim
    for access in accesses:
        if len(access.indices) != tensor.ndim:
            return None
        for mode, var in enumerate(access.indices):
            if not isinstance(var, IndexVar):
                return None
            extent = domains.get(var.name)
            if extent is None:
                return None
            if var.name in blocks:
                ival = blocks[var.name]
            elif var.name == step_var and steps is not None:
                ival = split_evenly(extent, steps, step_index)
            else:
                ival = Interval.extent(extent)
            if los[mode] is None or ival.lo < los[mode]:
                los[mode] = ival.lo
            if his[mode] is None or ival.hi > his[mode]:
                his[mode] = ival.hi
    if any(lo is None for lo in los):
        return None
    return Rect.from_bounds(los, his)


def _owned_covers(fmt, machine, point, shape, rect: Rect) -> bool:
    owned = fmt.owned_rect(machine, point, shape)
    return owned is not None and owned.contains(rect)


def _step_chunk_bounds(
    tensor,
    fmt,
    machine,
    point,
    accesses,
    blocks,
    domains,
    seq: str,
    steps: int,
) -> Tuple[int, int]:
    """(guaranteed-resident, worst-transient) bytes for per-step chunks.

    Chunks differ only along the sequenced variable's blocks; the lower
    bound is the smallest chunk any step can stage (0 when the task owns
    one of the blocks — rotation may park it there at any step), the
    upper bound twice the largest (registered-before-released swap).
    """
    extent = domains[seq]
    tile = ceil_div(extent, steps)
    full_blocks, short = divmod(extent, tile)
    nonzero_blocks = full_blocks + (1 if short else 0)
    min_seq = (
        0 if steps > nonzero_blocks else (short if short else tile)
    )
    max_seq = tile
    base = _request_rect(
        tensor, accesses, blocks, domains, None, None
    )
    if base is None:
        return 0, 0
    # Per-unit-of-seq volume: the bounding rect with seq collapsed.
    seq_modes = {
        mode
        for access in accesses
        for mode, var in enumerate(access.indices)
        if isinstance(var, IndexVar) and var.name == seq
    }
    itemsize = tensor.itemsize
    if len(seq_modes) != 1:
        # Diagonal or absent sequenced accesses: stay conservative.
        return 0, 2 * base.volume * itemsize
    unit = 1
    for mode, ival in enumerate(base.intervals):
        unit *= 1 if mode in seq_modes else ival.size
    owned = fmt.owned_rect(machine, point, tensor.shape)
    owned_some_block = False
    if owned is not None:
        covers_rest = all(
            mode in seq_modes or owned.intervals[mode].contains(ival)
            for mode, ival in enumerate(base.intervals)
        )
        if covers_rest:
            for mode in seq_modes:
                span = owned.intervals[mode]
                first = span.lo // tile if tile else 0
                block = split_evenly(extent, steps, min(first, steps - 1))
                if not block.is_empty and span.contains(block):
                    owned_some_block = True
    lo = 0 if owned_some_block else min_seq * unit * itemsize
    hi = 2 * max_seq * unit * itemsize
    return lo, hi
