"""Static pruning verdicts the tuner consults before simulating.

Two rules keep candidates out of the simulator entirely:

* **memory infeasibility** — the :mod:`~repro.analysis.membound` peak
  lower bound already exceeds the target memory's capacity, so every
  simulation would end in the same OOM.
* **leaf dominance** — a ``loops``-leaf candidate whose ``gemm`` twin is
  a *distinct* canonical candidate. The phase fingerprint masks the
  leaf, so both candidates replay the identical trace; communication is
  identical and the loops leaf is priced at the lower (or equal)
  ``naive_leaf_efficiency``, so its cost can never beat the twin's and
  the ranking tie-break (decision key, ``"gemm" < "loops"``) prefers
  the twin even on equality. The rule only fires when the machine
  params actually order the efficiencies that way.

:func:`prune_reason` returns the human-readable reason string (one of
the module constants) or ``None`` when the candidate must be simulated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.analysis.membound import memory_bounds
from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster, MemoryKind
from repro.sim.params import MachineParams

STATIC_OOM = "static: home-instance lower bound exceeds memory capacity"
STATIC_DOMINATED = (
    "static: loops leaf dominated by its gemm twin "
    "(identical trace, lower efficiency)"
)


def prune_reason(
    assignment: Assignment,
    decision,
    cluster: Cluster,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    params: Optional[MachineParams] = None,
    check_capacity: bool = True,
) -> Optional[str]:
    """Why ``decision`` need not be simulated, or ``None``."""
    if check_capacity:
        if memory_bounds(assignment, decision, cluster, memory).infeasible:
            return STATIC_OOM
    if params is not None and _dominated_loops(
        assignment, decision, params
    ):
        return STATIC_DOMINATED
    return None


def _dominated_loops(
    assignment: Assignment, decision, params: MachineParams
) -> bool:
    from repro.tuner.space import LEAF_GEMM, LEAF_LOOPS, normalize

    if decision.leaf != LEAF_LOOPS:
        return False
    if params.naive_leaf_efficiency > params.gemm_efficiency:
        return False
    twin = normalize(assignment, replace(decision, leaf=LEAF_GEMM))
    # The twin must be a real, distinct candidate of the canonical
    # space: normalize folds non-contractions back to the loops leaf,
    # in which case there is nothing dominating this decision.
    return twin.leaf == LEAF_GEMM and twin != decision
