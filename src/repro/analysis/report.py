"""One-call analysis of a compiled kernel (``Kernel.analyze()``).

Bundles the passes that apply to a *compiled* kernel — the trace
sanitizer and the communication lower bound — with the simulated
traffic they certify. (Legality and memory bounds act on decision
vectors; see :mod:`repro.analysis.legality` / ``membound``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.commbound import CommBound, comm_lower_bound
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sanitizer import sanitize_trace
from repro.sim.params import LASSEN, MachineParams


@dataclass
class AnalysisReport:
    """What the analyzer can prove about one compiled kernel."""

    #: Trace-sanitizer findings (empty for a consistent execution).
    findings: List[Diagnostic]
    #: Schedule-independent communication lower bound.
    comm: CommBound
    #: Simulated cross-node traffic of *this* schedule.
    inter_node_bytes: float
    #: ``inter_node_bytes`` (averaged per node) over the bound — the
    #: "within X× of the lower bound" number; ``None`` when the bound
    #: is vacuous (everything fits locally).
    comm_certificate: Optional[float]
    #: Observed per-memory high-water marks from the symbolic run.
    memory_high_water: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        lines = []
        if self.findings:
            lines.append(f"{len(self.findings)} sanitizer finding(s):")
            lines.extend(f"  {d}" for d in self.findings)
        else:
            lines.append("trace sanitizer: clean")
        lines.append(self.comm.describe())
        mib = 1024 * 1024
        lines.append(
            f"simulated cross-node traffic: "
            f"{self.inter_node_bytes / mib:.2f} MiB"
        )
        if self.comm_certificate is not None:
            lines.append(
                f"certified within {self.comm_certificate:.2f}x of the "
                "communication lower bound"
            )
        return "\n".join(lines)


def analyze_kernel(
    kernel,
    params: MachineParams = LASSEN,
    check_capacity: bool = False,
) -> AnalysisReport:
    """Sanitize one full symbolic execution and certify its traffic."""
    from repro.sim.costmodel import CostModel

    result = kernel.trace(check_capacity=check_capacity, mode="batched")
    findings = sanitize_trace(kernel.plan, result.trace)
    cluster = kernel.machine.cluster
    report = CostModel(cluster, params).time_trace(result.trace)
    comm = comm_lower_bound(kernel.assignment, cluster, params)
    return AnalysisReport(
        findings=findings,
        comm=comm,
        inter_node_bytes=report.inter_node_bytes,
        comm_certificate=comm.certificate(report.inter_node_bytes),
        memory_high_water=dict(result.memory_high_water),
    )
