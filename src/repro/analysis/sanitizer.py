"""Pass 4: independent consistency checking of execution traces.

The executor's phase discipline promises three invariants that nothing
previously re-checked:

* **write–write-race** — within one step, two non-reduce copies land
  overlapping rectangles of one tensor on the same destination from
  different sources. Phase-granularity resolution should make every
  same-phase fetch of a region name one source.
* **reduction-order** — a reduction write-back must target a
  destination that owns the rectangle (reductions fold into registered
  home instances, in registration order), and no step may mix an
  overwrite of a region with a reduction into it.
* **stale-source** — every non-reduce copy's source must either own the
  rectangle or have received a containing rectangle in an *earlier*
  step of the current payload version. A reduction step bumps its
  tensor's version: cached non-owner holds become stale. (Reduce-copy
  sources are exempt — partials are produced by local leaf work.)

The checks consume ``step.copies`` — the canonical per-copy record —
rather than the lossy ``skeleton_of`` projection, which keeps neither
rectangles nor coordinates. Holds are tracked per *processor* (copies
between grid points of one processor are elided by the executor, so
coordinate-level tracking would report false positives on
over-decomposed machines). On orbit-compressed traces (``count > 1``
representatives) only the per-step checks run; hold tracking needs the
full trace, which is how the executors' ``sanitize`` mode obtains it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.codegen.plan import DistributedPlan
from repro.runtime.instances import DataEnvironment
from repro.runtime.trace import Trace
from repro.util.geometry import Rect

_MAX_FINDINGS = 50
_POINT_LIMIT = 1 << 16


def sanitize_trace(plan: DistributedPlan, trace: Trace) -> List[Diagnostic]:
    """All sanity violations of ``trace`` against ``plan``'s formats."""
    machine = plan.machine
    env = DataEnvironment(plan, check_capacity=False, count_home=False)
    findings: List[Diagnostic] = []
    compressed = any(
        c.count > 1 for s in trace.steps for c in s.copies
    )

    proc_points: Dict[int, List[Tuple[int, ...]]] = {}
    if machine.size <= _POINT_LIMIT:
        for point in machine.points():
            proc = machine.proc_at(point)
            proc_points.setdefault(proc.proc_id, []).append(point)

    owns_cache: Dict[Tuple[str, int, Rect], bool] = {}

    def proc_owns(tensor: str, proc_id: int, coords, rect: Rect) -> bool:
        key = (tensor, proc_id, rect)
        cached = owns_cache.get(key)
        if cached is not None:
            return cached
        points = proc_points.get(proc_id)
        if points is None:
            # Machine too large to enumerate: fall back to the copy's
            # own coordinates (exact except for proc-sharing points).
            result = bool(coords) and env.owns(tensor, tuple(coords), rect)
        else:
            result = any(env.owns(tensor, p, rect) for p in points)
        owns_cache[key] = result
        return result

    # tensor -> proc_id -> received rects (current version).
    held: Dict[str, Dict[int, List[Rect]]] = {}

    def flag(rule: str, field: str, message: str) -> bool:
        findings.append(Diagnostic(rule, field, message))
        return len(findings) >= _MAX_FINDINGS

    for step_idx, step in enumerate(trace.steps):
        where = f"step {step_idx} ({step.label!r})"
        incoming: Dict[Tuple[str, int, Tuple[int, ...]], List] = {}
        reduced_tensors = set()
        for copy in step.copies:
            if copy.tensor not in plan.tensors:
                if flag(
                    "unknown-tensor", copy.tensor,
                    f"{where}: copy of a tensor the plan does not bind",
                ):
                    return findings
                continue
            if copy.reduce:
                reduced_tensors.add(copy.tensor)
                if not proc_owns(
                    copy.tensor, copy.dst_proc.proc_id,
                    copy.dst_coords, copy.rect,
                ):
                    if flag(
                        "reduction-order", copy.tensor,
                        f"{where}: reduction of {copy.rect} applied at "
                        f"proc {copy.dst_proc.proc_id}, which holds no "
                        "registered home instance covering it",
                    ):
                        return findings
            elif not compressed:
                src_id = copy.src_proc.proc_id
                ok = proc_owns(
                    copy.tensor, src_id, copy.src_coords, copy.rect
                )
                if not ok:
                    for rect in held.get(copy.tensor, {}).get(src_id, ()):
                        if rect.contains(copy.rect):
                            ok = True
                            break
                if not ok:
                    if flag(
                        "stale-source", copy.tensor,
                        f"{where}: copy of {copy.rect} from proc "
                        f"{src_id}, which never held the current "
                        "version of that region",
                    ):
                        return findings
            key = (copy.tensor, copy.dst_proc.proc_id, tuple(copy.dst_coords))
            incoming.setdefault(key, []).append(copy)

        for (tensor, dst_id, _), group in incoming.items():
            overwrites = [c for c in group if not c.reduce]
            reduces = [c for c in group if c.reduce]
            for i, a in enumerate(overwrites):
                for b in overwrites[i + 1:]:
                    same_src = (
                        a.src_proc.proc_id == b.src_proc.proc_id
                        and tuple(a.src_coords) == tuple(b.src_coords)
                    )
                    if not same_src and a.rect.overlaps(b.rect):
                        if flag(
                            "write-write-race", tensor,
                            f"{where}: {a.rect} and {b.rect} written to "
                            f"proc {dst_id} from two different sources "
                            "in one phase",
                        ):
                            return findings
            for a in overwrites:
                for b in reduces:
                    if a.rect.overlaps(b.rect):
                        if flag(
                            "reduction-order", tensor,
                            f"{where}: proc {dst_id} both overwritten "
                            f"({a.rect}) and reduced into ({b.rect}) "
                            "in one phase",
                        ):
                            return findings

        if not compressed:
            for copy in step.copies:
                if copy.reduce or copy.tensor not in plan.tensors:
                    continue
                held.setdefault(copy.tensor, {}).setdefault(
                    copy.dst_proc.proc_id, []
                ).append(copy.rect)
            for tensor in reduced_tensors:
                # The reduction bumps the payload version: every cached
                # non-owner hold of this tensor is now stale.
                held.pop(tensor, None)
    return findings
