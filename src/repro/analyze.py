"""Command-line static schedule analysis: ``python -m repro.analyze``.

Usage::

    python -m repro.analyze matmul [--nodes 16] [--size N] [--gpu]
    python -m repro.analyze --all-demos

Runs the analyzer's four passes over one workload (or every demo
workload at a seconds-scale size):

* the **legality verifier** over the full enumerated schedule space —
  every candidate the tuner would consider must verify cleanly;
* the **static pruner** — how many candidates the analyzer can decide
  (provable OOMs, dominated leaves) with zero simulations;
* **memory and communication bounds** for the heuristic schedule;
* the **trace sanitizer** over a full symbolic execution of the
  heuristic kernel.

Exit status is non-zero when any enumerated candidate fails the
verifier or the sanitizer reports any finding.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro.analysis import (
    analyze_kernel,
    memory_bounds,
    prune_reason,
    verify_legality,
)
from repro.core.kernel import compile_kernel
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.tuner.search import default_seed_grid
from repro.tuner.space import enumerate_space, from_heuristic, realize
from repro.tuner.workloads import WORKLOADS, sized, weak_scaled

#: ``--all-demos`` problem side: big enough for real phase structure,
#: small enough that the whole sweep stays in CI-smoke territory.
DEMO_SIZE = 1024


def analyze_workload(name: str, cluster: Cluster, assignment) -> int:
    """Run every pass over one workload; returns the finding count."""
    p = cluster.num_processors
    memory = (
        MemoryKind.GPU_FB
        if cluster.processor_kind is ProcessorKind.GPU
        else MemoryKind.SYSTEM_MEM
    )
    sizes = {t.name: t.shape for t in assignment.tensors()}
    print(f"analyzing {name} {sizes} on {cluster!r}")

    space = enumerate_space(assignment, p)
    illegal = 0
    for decision in space:
        diags = verify_legality(assignment, decision, num_procs=p)
        for diag in diags:
            illegal += 1
            print(f"  ILLEGAL {decision.encode()}: {diag}")
    print(f"  legality: {len(space)} candidates, {illegal} violations")

    pruned = sum(
        1
        for decision in space
        if prune_reason(
            assignment, decision, cluster, memory, params=LASSEN
        )
        is not None
    )
    print(
        f"  static pruning: {pruned}/{len(space)} candidates decided "
        "without simulation"
    )

    decision = from_heuristic(assignment, default_seed_grid(assignment, p))
    bound = memory_bounds(assignment, decision, cluster, memory)
    print(f"  heuristic {decision.encode()}")
    print(f"    memory:  {bound.describe()}")

    machine = Machine(cluster, Grid(*decision.grid))
    schedule, _formats = realize(
        assignment, machine, decision, memory=memory
    )
    kernel = compile_kernel(schedule, machine)
    report = analyze_kernel(kernel)
    for line in report.describe().splitlines():
        print(f"    {line}")
    return illegal + len(report.findings)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static legality, bounds, and trace-sanity analysis.",
    )
    parser.add_argument(
        "workload", nargs="?", choices=sorted(WORKLOADS), default=None
    )
    parser.add_argument(
        "--all-demos",
        action="store_true",
        help="every workload at a seconds-scale demo size (the CI job)",
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="cluster node count"
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="problem side (default: the paper's weak-scaled size)",
    )
    parser.add_argument(
        "--gpu", action="store_true", help="Lassen GPU nodes (4 V100s)"
    )
    args = parser.parse_args(argv)
    if not args.all_demos and args.workload is None:
        parser.error("name a workload or pass --all-demos")

    cluster = (
        Cluster.gpu_cluster(args.nodes)
        if args.gpu
        else Cluster.cpu_cluster(args.nodes)
    )
    try:
        if args.all_demos:
            findings = 0
            for name in sorted(WORKLOADS):
                findings += analyze_workload(
                    name, cluster, sized(name, args.size or DEMO_SIZE)
                )
        else:
            assignment = (
                sized(args.workload, args.size)
                if args.size is not None
                else weak_scaled(args.workload, args.nodes)
            )
            findings = analyze_workload(args.workload, cluster, assignment)
    except Exception:
        traceback.print_exc()
        print("analysis run failed", file=sys.stderr)
        return 1
    from repro.obs.metrics import METRICS

    print("== Metrics ==")
    for name, value in METRICS.snapshot().items():
        print(f"  {name} = {value}")
    if findings:
        print(f"{findings} finding(s)", file=sys.stderr)
        return 1
    print("all passes clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
