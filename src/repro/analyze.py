"""Command-line static schedule analysis: ``python -m repro.analyze``.

Usage::

    python -m repro.analyze matmul [--nodes 16] [--size N] [--gpu]
        [--json]
    python -m repro.analyze --all-demos

Runs the analyzer's four passes over one workload (or every demo
workload at a seconds-scale size):

* the **legality verifier** over the full enumerated schedule space —
  every candidate the tuner would consider must verify cleanly;
* the **static pruner** — how many candidates the analyzer can decide
  (provable OOMs, dominated leaves) with zero simulations;
* **memory and communication bounds** for the heuristic schedule;
* the **trace sanitizer** over a full symbolic execution of the
  heuristic kernel.

``--json`` (from the shared :mod:`repro.cli` group) replaces the
human report with one machine-readable object: per-workload candidate
counts, violations, pruning rates, and sanitizer findings.

Exit status is non-zero when any enumerated candidate fails the
verifier or the sanitizer reports any finding.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro import cli
from repro.analysis import (
    analyze_kernel,
    memory_bounds,
    prune_reason,
    verify_legality,
)
from repro.core.kernel import compile_kernel
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.tuner.search import default_seed_grid
from repro.tuner.space import enumerate_space, from_heuristic, realize
from repro.tuner.workloads import WORKLOADS, sized, weak_scaled

#: ``--all-demos`` problem side: big enough for real phase structure,
#: small enough that the whole sweep stays in CI-smoke territory.
DEMO_SIZE = 1024


def analyze_workload(name: str, cluster: Cluster, assignment, say=print):
    """Run every pass over one workload; returns ``(findings,
    summary)`` where ``summary`` is the JSON-payload row."""
    p = cluster.num_processors
    memory = (
        MemoryKind.GPU_FB
        if cluster.processor_kind is ProcessorKind.GPU
        else MemoryKind.SYSTEM_MEM
    )
    sizes = {t.name: t.shape for t in assignment.tensors()}
    say(f"analyzing {name} {sizes} on {cluster!r}")

    space = enumerate_space(assignment, p)
    illegal = 0
    for decision in space:
        diags = verify_legality(assignment, decision, num_procs=p)
        for diag in diags:
            illegal += 1
            say(f"  ILLEGAL {decision.encode()}: {diag}")
    say(f"  legality: {len(space)} candidates, {illegal} violations")

    pruned = sum(
        1
        for decision in space
        if prune_reason(
            assignment, decision, cluster, memory, params=LASSEN
        )
        is not None
    )
    say(
        f"  static pruning: {pruned}/{len(space)} candidates decided "
        "without simulation"
    )

    decision = from_heuristic(assignment, default_seed_grid(assignment, p))
    bound = memory_bounds(assignment, decision, cluster, memory)
    say(f"  heuristic {decision.encode()}")
    say(f"    memory:  {bound.describe()}")

    machine = Machine(cluster, Grid(*decision.grid))
    schedule, _formats = realize(
        assignment, machine, decision, memory=memory
    )
    kernel = compile_kernel(schedule, machine)
    report = analyze_kernel(kernel)
    for line in report.describe().splitlines():
        say(f"    {line}")
    summary = {
        "workload": name,
        "sizes": {tensor: list(shape) for tensor, shape in sizes.items()},
        "candidates": len(space),
        "violations": illegal,
        "pruned": pruned,
        "heuristic_decision": decision.encode(),
        "sanitizer_findings": len(report.findings),
    }
    return illegal + len(report.findings), summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static legality, bounds, and trace-sanity analysis.",
    )
    parser.add_argument(
        "workload", nargs="?", choices=sorted(WORKLOADS), default=None
    )
    parser.add_argument(
        "--all-demos",
        action="store_true",
        help="every workload at a seconds-scale demo size (the CI job)",
    )
    cli.add_cluster_args(parser, nodes_default=4)
    cli.add_common_args(parser, ledger=False, jobs=False, seed=False)
    args = parser.parse_args(argv)
    if not args.all_demos and args.workload is None:
        parser.error("name a workload or pass --all-demos")

    say = (lambda *a, **k: None) if args.json else print
    cluster = cli.build_cluster(args)
    workloads = []
    try:
        if args.all_demos:
            findings = 0
            for name in sorted(WORKLOADS):
                found, summary = analyze_workload(
                    name,
                    cluster,
                    sized(name, args.size or DEMO_SIZE),
                    say=say,
                )
                findings += found
                workloads.append(summary)
        else:
            assignment = (
                sized(args.workload, args.size)
                if args.size is not None
                else weak_scaled(args.workload, args.nodes)
            )
            findings, summary = analyze_workload(
                args.workload, cluster, assignment, say=say
            )
            workloads.append(summary)
    except Exception:
        traceback.print_exc()
        print("analysis run failed", file=sys.stderr)
        return 1
    if not cli.emit(args, {
        "findings": findings,
        "workloads": workloads,
    }):
        cli.print_metrics()
    if findings:
        print(f"{findings} finding(s)", file=sys.stderr)
        return 1
    say("all passes clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
