"""The unified scheduling API: one canonical request/answer pair.

Before this module the repository answered its central question — *the
best distributed schedule for (einsum, shapes, dtype, machine)* —
through three divergent surfaces: ``Kernel.tune(...)`` kwargs, the
tuning ledger's ad-hoc key strings, and whatever each CLI printed.
The schedule-serving daemon (:mod:`repro.serve`) needs a wire format,
which forces the redesign: :class:`ScheduleRequest` and
:class:`ScheduleAnswer` are the *single* canonical types used
identically by

* the in-process API — :meth:`repro.core.kernel.Kernel.tune` builds a
  request and returns a :class:`~repro.tuner.search.TuneResult` whose
  ``answer`` field is the canonical answer;
* the daemon's newline-delimited JSON protocol
  (:mod:`repro.serve.protocol`) — requests and answers cross the wire
  as their :meth:`~ScheduleRequest.to_record` dicts;
* the sharded ledger (:mod:`repro.serve.shard`) — answers persist under
  their request fingerprint, so a daemon restart re-serves every tuned
  schedule from microsecond in-memory hits.

Everything in a record is a JSON scalar/list/dict, floats round-trip
exactly (``json`` uses ``repr``), and :meth:`ScheduleRequest.fingerprint`
is a stable content hash — two processes building the same request get
the same fingerprint, which is what makes in-flight deduplication and
the answer cache sound.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.ir.expr import Access, Add, Expr, IndexVar, Literal, Mul
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.sim.params import MachineParams, LASSEN

#: Answer provenance values (how the serving layer obtained it).
HIT = "hit"
TUNED = "tuned"
WARM_STARTED = "warm-started"
#: The serving daemon's poison-request quarantine: N consecutive
#: worker crashes produce a persisted infeasible answer with this
#: provenance (see :mod:`repro.serve.supervise`) instead of re-tuning
#: the crasher forever.
QUARANTINED = "quarantined"


def canonical_json(payload) -> str:
    """The one JSON rendering fingerprints and byte-comparisons use."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Einsum text <-> Assignment.
# ----------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<access>[A-Za-z_]\w*)\[(?P<idx>[^\]]*)\]"
    r"|(?P<num>\d+(?:\.\d+)?)"
    r"|(?P<op>[+*()]))"
)


def einsum_of(assignment: Assignment) -> str:
    """Render an assignment as canonical einsum text.

    ``A[i,j]=B[i,k]*C[k,j]`` — accesses as ``Name[i,j,...]``, binary
    ``+``/``*`` with minimal parentheses (left association is implicit,
    matching how operator overloading builds the trees), no whitespace.
    :func:`assignment_of` inverts it exactly for left-associated trees.
    """
    lhs = _access_text(assignment.lhs)
    return f"{lhs}={_expr_text(assignment.rhs, 0, False)}"


def _access_text(access: Access) -> str:
    inner = ",".join(v.name for v in access.indices)
    return f"{access.tensor.name}[{inner}]"


def _expr_text(expr: Expr, parent_prec: int, right_child: bool) -> str:
    if isinstance(expr, Access):
        return _access_text(expr)
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, (Add, Mul)):
        prec = 2 if isinstance(expr, Mul) else 1
        text = (
            _expr_text(expr.lhs, prec, False)
            + expr.op
            + _expr_text(expr.rhs, prec, True)
        )
        if prec < parent_prec or (prec == parent_prec and right_child):
            return f"({text})"
        return text
    raise TypeError(f"unexpected expression node {expr!r}")


class _Parser:
    """Recursive-descent parser for the canonical einsum grammar:

    ``sum := product ('+' product)* ; product := atom ('*' atom)* ;
    atom := NAME '[' indices ']' | NUMBER | '(' sum ')'`` — both
    operators left-associative, mirroring expression-building via the
    overloaded ``+``/``*``.
    """

    def __init__(self, text: str, tensors: Dict[str, TensorVar]):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.tensors = tensors

    @staticmethod
    def _tokenize(text: str) -> List[Tuple[str, str]]:
        tokens = []
        pos = 0
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if m is None:
                raise ValueError(
                    f"unparseable einsum text at {text[pos:pos + 20]!r}"
                )
            if m.group("access") is not None:
                tokens.append(("access", (m.group("access"), m.group("idx"))))
            elif m.group("num") is not None:
                tokens.append(("num", m.group("num")))
            else:
                tokens.append(("op", m.group("op")))
            pos = m.end()
        return tokens

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise ValueError("unexpected end of einsum text")
        self.pos += 1
        return token

    def parse(self) -> Expr:
        expr = self.sum()
        if self._peek() is not None:
            raise ValueError(f"trailing einsum tokens: {self._peek()!r}")
        return expr

    def sum(self) -> Expr:
        expr = self.product()
        while self._peek() == ("op", "+"):
            self._next()
            expr = Add(expr, self.product())
        return expr

    def product(self) -> Expr:
        expr = self.atom()
        while self._peek() == ("op", "*"):
            self._next()
            expr = Mul(expr, self.atom())
        return expr

    def atom(self) -> Expr:
        kind, value = self._next()
        if kind == "access":
            return self.access(*value)
        if kind == "num":
            return Literal(float(value))
        if (kind, value) == ("op", "("):
            expr = self.sum()
            if self._next() != ("op", ")"):
                raise ValueError("unbalanced parentheses in einsum text")
            return expr
        raise ValueError(f"unexpected einsum token {value!r}")

    def access(self, name: str, idx: str) -> Access:
        tensor = self.tensors.get(name)
        if tensor is None:
            raise ValueError(
                f"einsum names tensor {name!r} but shapes do not"
            )
        indices = [IndexVar(v.strip()) for v in idx.split(",") if v.strip()]
        return Access(tensor, indices)


def assignment_of(
    einsum: str,
    shapes: Dict[str, Tuple[int, ...]],
    dtype: str = "float64",
    accumulate: bool = False,
) -> Assignment:
    """Build a fresh :class:`Assignment` from canonical einsum text.

    Tensors get default (undistributed) formats — exactly what the
    tuner expects, since it derives formats per candidate.
    """
    lhs_text, sep, rhs_text = einsum.partition("=")
    if not sep:
        raise ValueError(f"einsum text has no '=': {einsum!r}")
    tensors = {
        name: TensorVar(name, tuple(int(e) for e in shape), dtype=dtype)
        for name, shape in shapes.items()
    }
    lhs = _Parser(lhs_text, tensors).parse()
    if not isinstance(lhs, Access):
        raise ValueError("einsum left-hand side must be a tensor access")
    rhs = _Parser(rhs_text, tensors).parse()
    return Assignment(lhs, rhs, accumulate=accumulate)


# ----------------------------------------------------------------------
# Machine description.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec:
    """Wire-shaped identity of a homogeneous cluster.

    Carries exactly the fields :func:`repro.bench.cache.cluster_signature`
    hashes, so a cluster rebuilt from a spec lands on the same tuning
    ledger namespace as the original.
    """

    nodes: int
    procs_per_node: int
    proc_kind: str  # ProcessorKind value, e.g. "cpu-socket" / "gpu"
    proc_mem_kind: str  # MemoryKind value
    proc_mem_bytes: int
    system_mem_bytes: int

    @staticmethod
    def from_cluster(cluster: Cluster) -> "MachineSpec":
        proc = cluster.processors[0]
        system = cluster.nodes[0].system_memory
        return MachineSpec(
            nodes=cluster.num_nodes,
            procs_per_node=cluster.procs_per_node,
            proc_kind=proc.kind.value,
            proc_mem_kind=proc.memory.kind.value,
            proc_mem_bytes=proc.memory.capacity_bytes,
            system_mem_bytes=(
                system.capacity_bytes if system is not None else 0
            ),
        )

    def to_cluster(self) -> Cluster:
        return Cluster.build(
            num_nodes=self.nodes,
            procs_per_node=self.procs_per_node,
            proc_kind=ProcessorKind(self.proc_kind),
            proc_mem_kind=MemoryKind(self.proc_mem_kind),
            proc_mem_capacity=self.proc_mem_bytes,
            system_mem_capacity=self.system_mem_bytes,
        )

    def to_record(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_record(record: Dict) -> "MachineSpec":
        return MachineSpec(**record)

    def anatomy(self) -> Tuple:
        """Everything but the node count — the axis transfer
        warm-starting projects along (:mod:`repro.serve`)."""
        return (
            self.procs_per_node,
            self.proc_kind,
            self.proc_mem_kind,
            self.proc_mem_bytes,
            self.system_mem_bytes,
        )


# ----------------------------------------------------------------------
# The canonical request.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling question: best schedule for (einsum, shapes,
    dtype, machine, objective, seed).

    ``params`` is the *fully explicit* cost-model knob dict (no named
    registry — a record must mean the same thing on every machine that
    ever reads it). ``seed`` is the deterministic search seed; equal
    requests produce byte-identical answers.
    """

    einsum: str
    shapes: Dict[str, Tuple[int, ...]]
    machine: MachineSpec
    dtype: str = "float64"
    seed: int = 0
    objective: str = "total"
    failure_rate: float = 0.0
    accumulate: bool = False
    params: Dict[str, object] = field(default_factory=dict)

    @staticmethod
    def from_assignment(
        assignment: Assignment,
        cluster: Cluster,
        params: MachineParams = LASSEN,
        seed: int = 0,
        objective: str = "total",
        failure_rate: float = 0.0,
    ) -> "ScheduleRequest":
        return ScheduleRequest(
            einsum=einsum_of(assignment),
            shapes={
                t.name: tuple(t.shape) for t in assignment.tensors()
            },
            machine=MachineSpec.from_cluster(cluster),
            dtype=str(assignment.lhs.tensor.dtype),
            seed=seed,
            objective=objective,
            failure_rate=failure_rate,
            accumulate=assignment.accumulate,
            params=dict(params.__dict__),
        )

    # -- reconstruction -------------------------------------------------

    def assignment(self) -> Assignment:
        return assignment_of(
            self.einsum, self.shapes, self.dtype, self.accumulate
        )

    def cluster(self) -> Cluster:
        return self.machine.to_cluster()

    def machine_params(self) -> MachineParams:
        if not self.params:
            return LASSEN
        return MachineParams(**self.params)

    # -- wire form ------------------------------------------------------

    def to_record(self) -> Dict:
        return {
            "einsum": self.einsum,
            "shapes": {
                name: list(shape) for name, shape in self.shapes.items()
            },
            "machine": self.machine.to_record(),
            "dtype": self.dtype,
            "seed": self.seed,
            "objective": self.objective,
            "failure_rate": self.failure_rate,
            "accumulate": self.accumulate,
            "params": dict(self.params),
        }

    @staticmethod
    def from_record(record: Dict) -> "ScheduleRequest":
        return ScheduleRequest(
            einsum=record["einsum"],
            shapes={
                name: tuple(shape)
                for name, shape in record["shapes"].items()
            },
            machine=MachineSpec.from_record(record["machine"]),
            dtype=record.get("dtype", "float64"),
            seed=int(record.get("seed", 0)),
            objective=record.get("objective", "total"),
            failure_rate=float(record.get("failure_rate", 0.0)),
            accumulate=bool(record.get("accumulate", False)),
            params=dict(record.get("params", {})),
        )

    def fingerprint(self) -> str:
        """Stable content hash — the answer cache and dedup key."""
        return hashlib.sha256(
            canonical_json(self.to_record()).encode()
        ).hexdigest()[:16]

    def structure_key(self) -> str:
        """Identity *minus* shapes and node count: the neighborhood
        transfer warm-starting searches for tuned neighbors in."""
        payload = {
            "einsum": self.einsum,
            "dtype": self.dtype,
            "objective": self.objective,
            "failure_rate": self.failure_rate,
            "accumulate": self.accumulate,
            "anatomy": list(self.machine.anatomy()),
            "params": dict(self.params),
        }
        return hashlib.sha256(
            canonical_json(payload).encode()
        ).hexdigest()[:16]


# ----------------------------------------------------------------------
# The canonical answer.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleAnswer:
    """One scheduling answer: decision vector, realized formats,
    priced cost, provenance.

    :meth:`canonical_record` is the provenance-free payload — a ledger
    hit and a fresh tune of the same request must agree on it
    byte-for-byte; provenance (``hit`` / ``tuned`` / ``warm-started``)
    and the evaluation count legitimately differ between the two and
    ride only in :meth:`to_record`.
    """

    decision: str  # Decision.encode() of the winner
    formats: Dict[str, Tuple[str, str]]  # name -> (notation, memory)
    cost: float
    comm_time: float
    compute_time: float
    inter_node_bytes: float
    max_memory_bytes: float
    num_steps: int
    feasible: bool
    provenance: str = TUNED
    evaluations: int = 0
    request_fingerprint: str = ""

    @staticmethod
    def from_result(
        request: ScheduleRequest,
        result,
        provenance: str = TUNED,
    ) -> "ScheduleAnswer":
        """Build the canonical answer from a
        :class:`~repro.tuner.search.TuneResult`."""
        best = result.search.best
        return ScheduleAnswer(
            decision=best.decision.encode(),
            formats={
                name: (fmt.notation(), fmt.memory.value)
                for name, fmt in sorted(result.formats.items())
            },
            cost=best.cost if best.feasible else float("inf"),
            comm_time=best.comm_time,
            compute_time=best.compute_time,
            inter_node_bytes=best.inter_node_bytes,
            max_memory_bytes=best.max_memory_bytes,
            num_steps=best.num_steps,
            feasible=best.feasible,
            provenance=provenance,
            evaluations=result.search.evaluations,
            request_fingerprint=request.fingerprint(),
        )

    def canonical_record(self) -> Dict:
        """The provenance-free payload (byte-compared by the smoke
        tests: ledger hits must equal offline ``Kernel.tune``)."""
        return {
            "decision": self.decision,
            "formats": {
                name: list(pair) for name, pair in self.formats.items()
            },
            "cost": self.cost if self.feasible else "infeasible",
            "comm_time": self.comm_time,
            "compute_time": self.compute_time,
            "inter_node_bytes": self.inter_node_bytes,
            "max_memory_bytes": self.max_memory_bytes,
            "num_steps": self.num_steps,
        }

    def to_record(self) -> Dict:
        record = self.canonical_record()
        record["provenance"] = self.provenance
        record["evaluations"] = self.evaluations
        record["request_fingerprint"] = self.request_fingerprint
        return record

    @staticmethod
    def from_record(record: Dict) -> "ScheduleAnswer":
        cost = record["cost"]
        feasible = cost != "infeasible"
        return ScheduleAnswer(
            decision=record["decision"],
            formats={
                name: tuple(pair)
                for name, pair in record["formats"].items()
            },
            cost=float(cost) if feasible else float("inf"),
            comm_time=record.get("comm_time", 0.0),
            compute_time=record.get("compute_time", 0.0),
            inter_node_bytes=record.get("inter_node_bytes", 0.0),
            max_memory_bytes=record.get("max_memory_bytes", 0.0),
            num_steps=int(record.get("num_steps", 0)),
            feasible=feasible,
            provenance=record.get("provenance", TUNED),
            evaluations=int(record.get("evaluations", 0)),
            request_fingerprint=record.get("request_fingerprint", ""),
        )

    def with_provenance(self, provenance: str) -> "ScheduleAnswer":
        from dataclasses import replace

        return replace(self, provenance=provenance)


# ----------------------------------------------------------------------
# The one engine behind every surface.
# ----------------------------------------------------------------------

#: Request fields that double as tuner keywords; popped off option
#: dicts so shims can forward legacy kwargs without duplication.
REQUEST_OPTIONS = ("seed", "objective", "failure_rate")


def tune_request(
    request: ScheduleRequest,
    assignment: Optional[Assignment] = None,
    cluster: Optional[Cluster] = None,
    warm_start=None,
    **options,
):
    """Answer a request with the tuner; the single engine behind
    ``Kernel.tune``, the daemon, and the CLI.

    ``assignment``/``cluster`` may be passed to avoid a rebuild when
    the caller already holds them (``Kernel.tune``); the daemon
    reconstructs both from the record. Remaining keywords forward to
    :func:`repro.tuner.search.tune` (``jobs``, ``strategy``,
    ``ledger``, ...). ``warm_start`` (a decoded
    :class:`~repro.tuner.space.Decision` from a tuned neighbor)
    switches provenance to ``warm-started`` when combined with
    ``strategy="warm"``.

    Returns the :class:`~repro.tuner.search.TuneResult` with its
    ``answer`` field set to the canonical :class:`ScheduleAnswer`.
    """
    from repro.tuner.search import tune as tuner_tune

    if assignment is None:
        assignment = request.assignment()
    if cluster is None:
        cluster = request.cluster()
    params = options.pop("params", None)
    if params is None:
        params = request.machine_params()
    for name in REQUEST_OPTIONS:
        options.pop(name, None)
    result = tuner_tune(
        assignment,
        cluster,
        params,
        seed=request.seed,
        objective=request.objective,
        failure_rate=request.failure_rate,
        warm_start=warm_start,
        **options,
    )
    provenance = (
        WARM_STARTED
        if warm_start is not None and options.get("strategy") == "warm"
        else TUNED
    )
    result.answer = ScheduleAnswer.from_result(request, result, provenance)
    return result


# Keep the dataclass-field import alive for subclasses/tools.
_ = fields
