"""Comparison systems from the evaluation (Section 7).

Each baseline is a *model built from its real algorithm*, run on the same
simulator as DISTAL's kernels:

* :mod:`~repro.baselines.scalapack` — SUMMA with MPI-style blocking
  collectives (no communication/computation overlap).
* :mod:`~repro.baselines.ctf` — the Cyclops Tensor Framework strategy:
  fold any contraction into distributed matmuls, paying redistribution
  for the folds, with the 2.5-D algorithm for the matmuls themselves.
* :mod:`~repro.baselines.cosma` — the COSMA scheduler with its tuned
  collectives and (for GPUs) host-resident, out-of-core execution.
"""

from repro.baselines.scalapack import scalapack_matmul
from repro.baselines.cosma import cosma_reference_matmul
from repro.baselines.ctf import (
    ctf_innerprod,
    ctf_matmul,
    ctf_mttkrp,
    ctf_ttm,
    ctf_ttv,
)

__all__ = [
    "cosma_reference_matmul",
    "ctf_innerprod",
    "ctf_matmul",
    "ctf_mttkrp",
    "ctf_ttm",
    "ctf_ttv",
    "scalapack_matmul",
]
