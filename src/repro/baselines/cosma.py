"""COSMA baseline: the authors' reference implementation, modelled.

COSMA (Kwasniewski et al. 2019) pairs a communication-optimal
decomposition with a heavily tuned implementation. The behaviours the
paper measures, which this model reproduces:

* grid + step counts from the red-blue-pebbling optimizer
  (:mod:`repro.algorithms.cosma_grid` — the same one DISTAL's COSMA
  schedule uses);
* matmul-specialized broadcast/reduce collectives (lower effective
  collective cost than a generic runtime's);
* full use of all CPU cores (no task-runtime core tax), with a
  "restricted CPUs" variant pinned to DISTAL's 36 worker cores
  (Figure 15a);
* on GPU clusters, matrices stay in *host* memory and an out-of-core
  GEMM streams tiles over PCIe (Section 7.1.2): half the single-node
  throughput of framebuffer-resident DISTAL, but full-rate NIC transfers
  and no framebuffer OOM at scale.
"""

from __future__ import annotations

from repro.algorithms.matmul import cosma as distal_cosma
from repro.machine.cluster import Cluster, MemoryKind
from repro.sim.costmodel import CostModel
from repro.sim.params import (
    COSMA_PARAMS,
    COSMA_RESTRICTED_PARAMS,
    MachineParams,
)
from repro.sim.report import SimReport


def cosma_reference_matmul(
    cluster: Cluster,
    n: int,
    restricted_cpus: bool = False,
    params: MachineParams = None,
) -> SimReport:
    """Simulate the reference COSMA on ``n x n`` matrices.

    On GPU clusters, data is host-resident (``MemoryKind.SYSTEM_MEM``):
    inter-node copies run at the full NIC rate and the GEMM pays PCIe
    staging, matching the paper's description of the author
    implementation. ``restricted_cpus`` models the Figure 15a run pinned
    to 36 of 40 cores.
    """
    if params is None:
        params = COSMA_RESTRICTED_PARAMS if restricted_cpus else COSMA_PARAMS
    # Host-resident data even on GPU machines: out-of-core execution.
    kernel = distal_cosma(cluster, n, memory=MemoryKind.SYSTEM_MEM)
    trace = kernel.trace(check_capacity=True).trace
    return CostModel(cluster, params).time_trace(trace)
