"""Cyclops Tensor Framework baseline.

CTF (Solomonik et al. 2014) achieves generality by *folding*: any tensor
contraction is cast into distributed matrix multiplications by grouping
modes, transposing/redistributing the tensors into matrix layouts, running
a hand-tuned matmul (the 2.5-D algorithm), and redistributing results
back. That is exactly the strategy modelled here (Section 8: "CTF casts
tensor contractions into a series of distributed matrix-multiplication
operations and transposes").

Consequences reproduced, per the paper's Section 7.2.2:

* square dense matmul is strong (the native 2.5-D kernel, modulo the
  missing communication/computation overlap);
* TTV collapses past one node — the fold moves the entire 3-tensor
  through the network to perform a bandwidth-bound matvec;
* TTM pays a full redistribution of the 3-tensor;
* MTTKRP needs two folded contractions with a large intermediate;
* Innerprod needs no fold (a pure reduction) and weak-scales flat, just
  slower than a bespoke kernel.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.algorithms.higher_order import innerprod as distal_innerprod
from repro.algorithms.matmul import solomonik, summa_rect
from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.runtime.trace import Copy, Step, Trace
from repro.sim.costmodel import CostModel
from repro.sim.params import CTF_PARAMS, MachineParams
from repro.sim.report import SimReport
from repro.util.geometry import Interval, Rect

ITEM = 8  # double precision


# ----------------------------------------------------------------------
# Grid selection.
# ----------------------------------------------------------------------

def best_25d_grid(p: int) -> Tuple[int, int, int]:
    """The largest ``q x q x c`` grid with ``c | q`` and ``q*q*c <= p``.

    CTF virtualizes over whatever processor count it is given; processor
    counts that don't factor nicely leave processors idle — one source of
    its performance variability on non-square machines (Section 7.1.1).
    """
    best = (1, 1, 1)
    best_size = 1
    for c in (1, 2, 4, 8):
        q = int(math.isqrt(p // c)) if p >= c else 0
        while q > 0 and (q * q * c > p or q % c != 0):
            q -= 1
        if q > 0 and q * q * c > best_size:
            best = (q, q, c)
            best_size = q * q * c
    return best


def best_rect_grid(p: int, m: int, n: int) -> Tuple[int, int]:
    """A 2-D grid matched to a rectangular output (gy may be 1)."""
    best = (p, 1)
    best_score = float("inf")
    for gy in range(1, p + 1):
        if p % gy != 0:
            continue
        gx = p // gy
        if gx > m or gy > n:
            continue
        score = abs(math.log((m / gx) / max(n / gy, 1e-9)))
        if score < best_score:
            best_score = score
            best = (gx, gy)
    return best


# ----------------------------------------------------------------------
# Redistribution modelling.
# ----------------------------------------------------------------------

def redistribution_steps(
    cluster: Cluster, total_bytes: float, label: str
) -> List[Step]:
    """Steps modelling an all-to-all tensor redistribution (a CTF fold).

    Every processor exchanges its ``1/p`` share with a distant partner
    (the worst half of an all-to-all crosses the node boundary) and
    repacks it locally. This under-counts a full personalized all-to-all
    slightly and is therefore generous to CTF.
    """
    p = cluster.num_processors
    per_proc = int(total_bytes / p)
    if per_proc <= 0:
        return []
    step = Step(label=label)
    rect = Rect.of(Interval(0, max(per_proc // ITEM, 1)))
    for proc in cluster.processors:
        partner = cluster.processors[
            (proc.proc_id + p // 2) % p if p > 1 else 0
        ]
        if partner.proc_id != proc.proc_id:
            step.copies.append(
                Copy(
                    tensor=f"__redist_{label}__",
                    rect=rect,
                    nbytes=per_proc,
                    src_proc=proc,
                    dst_proc=partner,
                    src_mem=proc.memory,
                    dst_mem=partner.memory,
                )
            )
        # Local repack: read + write each element once.
        work = step.work_for(proc)
        work.add(flops=0.0, bytes_touched=2 * per_proc, kernel=None,
                 parallel=True)
    return [step]


def _compose(cluster: Cluster, params: MachineParams, *parts) -> SimReport:
    """Time a sequence of traces / step lists as one execution."""
    combined = Trace()
    for part in parts:
        steps = part.steps if isinstance(part, Trace) else part
        combined.steps.extend(steps)
        if isinstance(part, Trace):
            for mem, hw in part.memory_high_water.items():
                combined.memory_high_water[mem] = max(
                    combined.memory_high_water.get(mem, 0), hw
                )
    return CostModel(cluster, params).time_trace(combined)


# ----------------------------------------------------------------------
# Kernels.
# ----------------------------------------------------------------------

def ctf_matmul(
    cluster: Cluster, n: int, params: MachineParams = CTF_PARAMS
) -> SimReport:
    """CTF's native strength: the 2.5-D matmul, no fold required.

    When the processor count does not factor into a usable ``q x q x c``
    grid, CTF virtualizes down to a 2-D decomposition; we model that as a
    rectangular SUMMA over all processors (the c=1 degenerate case).
    """
    p = cluster.num_processors
    q, q2, c = best_25d_grid(p)
    if q * q2 * c >= 0.75 * p:
        machine = Machine(cluster, Grid(q, q2, c))
        kernel = solomonik(machine, n, leaf="blas_gemm")
    else:
        gx, gy = best_rect_grid(p, n, n)
        machine = Machine(cluster, Grid(gx, gy))
        kernel = summa_rect(
            machine, n, n, n, chunk=max(1, n // 16), leaf="blas_gemm"
        )
    trace = kernel.trace(check_capacity=True).trace
    return _compose(cluster, params, trace)


def ctf_ttv(
    cluster: Cluster, n: int, params: MachineParams = CTF_PARAMS
) -> SimReport:
    """TTV folded to a distributed matvec.

    ``B(i,j,k) c(k)`` becomes ``Bm((ij), k) @ c(k)``: the whole 3-tensor
    is redistributed into the matmul layout, a bandwidth-bound matvec
    runs, and the (i,j) matrix redistributes back. The redistribution of
    ``n^3`` words is the unnecessary communication the paper describes.
    """
    p = cluster.num_processors
    m_dim = n * n
    gx, gy = best_rect_grid(p, m_dim, 1)
    machine = Machine(cluster, Grid(gx, gy))
    kernel = summa_rect(machine, m_dim, n, 1, chunk=max(1, n // 8), leaf=None)
    trace = kernel.trace(check_capacity=True).trace
    pre = redistribution_steps(cluster, float(n) ** 3 * ITEM, "fold-B")
    post = redistribution_steps(cluster, float(n) ** 2 * ITEM, "unfold-A")
    return _compose(cluster, params, pre, trace, post)


def ctf_innerprod(
    cluster: Cluster, n: int, params: MachineParams = CTF_PARAMS
) -> SimReport:
    """Innerprod needs no fold: local reductions plus a global tree.

    CTF executes this well (flat weak scaling) but with its generic
    element-wise leaf and blocking collectives.
    """
    from repro.baselines.scalapack import best_2d_grid

    gx, gy = best_2d_grid(cluster.num_processors)
    machine = Machine(cluster, Grid(gx, gy))
    kernel = distal_innerprod(machine, n)
    trace = kernel.trace(check_capacity=True).trace
    return _compose(cluster, params, trace)


def ctf_ttm(
    cluster: Cluster, n: int, r: int, params: MachineParams = CTF_PARAMS
) -> SimReport:
    """TTM folded to ``((ij), k) @ (k, l)``: redistribute the 3-tensor
    into matrix layout, one rectangular matmul, fold the result back."""
    p = cluster.num_processors
    m_dim = n * n
    gx, gy = best_rect_grid(p, m_dim, r)
    machine = Machine(cluster, Grid(gx, gy))
    kernel = summa_rect(
        machine, m_dim, n, r, chunk=max(1, n // 8), leaf="blas_gemm"
    )
    trace = kernel.trace(check_capacity=True).trace
    pre = redistribution_steps(cluster, float(n) ** 3 * ITEM, "fold-B")
    post = redistribution_steps(cluster, float(n) ** 2 * r * ITEM, "unfold-A")
    return _compose(cluster, params, pre, trace, post)


def ctf_mttkrp(
    cluster: Cluster, n: int, r: int, params: MachineParams = CTF_PARAMS
) -> SimReport:
    """MTTKRP as two folded contractions with a large intermediate.

    Stage 1: ``T(i,j,l) = B(i,j,k) D(k,l)`` — a TTM (fold + matmul).
    Stage 2: ``A(i,l) = T(i,j,l) C(j,l)`` — a batched (over l) matvec
    with an element-wise reduction, again through matrix layouts. The
    intermediate ``T`` (``n^2 r`` words) must itself be redistributed.
    """
    p = cluster.num_processors
    m_dim = n * n
    gx, gy = best_rect_grid(p, m_dim, r)
    machine = Machine(cluster, Grid(gx, gy))
    stage1 = summa_rect(
        machine, m_dim, n, r, chunk=max(1, n // 8), leaf="blas_gemm"
    )
    trace1 = stage1.trace(check_capacity=True).trace
    # Stage 2 as a batched matvec: model with a rectangular matmul of the
    # same flop count ((i) x (j) contracted per l slice).
    gx2, gy2 = best_rect_grid(p, n, r)
    machine2 = Machine(cluster, Grid(gx2, gy2))
    stage2 = summa_rect(machine2, n, n, r, chunk=max(1, n // 8), leaf=None)
    trace2 = stage2.trace(check_capacity=True).trace
    pre = redistribution_steps(cluster, float(n) ** 3 * ITEM, "fold-B")
    mid = redistribution_steps(
        cluster, float(n) ** 2 * r * ITEM, "redist-T"
    )
    post = redistribution_steps(cluster, float(n) * r * ITEM, "unfold-A")
    return _compose(cluster, params, pre, trace1, mid, trace2, post)
