"""ScaLAPACK baseline: SUMMA with blocking MPI collectives.

ScaLAPACK's PDGEMM implements the SUMMA algorithm over a 2-D
block(-cyclic) process grid. Performance-wise the library differs from a
task-based system in exactly the ways the paper measures (Section 7.1.1):
its broadcasts are blocking (no communication/computation overlap) and it
runs on whatever process grid the processor count factors into —
rectangular grids at non-square counts cause its visible variability.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.algorithms.matmul import summa
from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.costmodel import CostModel
from repro.sim.params import SCALAPACK_PARAMS, MachineParams
from repro.sim.report import SimReport


def best_2d_grid(p: int) -> Tuple[int, int]:
    """The most-square factorization ``gx * gy == p`` with ``gx >= gy``."""
    gy = int(math.isqrt(p))
    while p % gy != 0:
        gy -= 1
    return p // gy, gy


def scalapack_matmul(
    cluster: Cluster,
    n: int,
    params: MachineParams = SCALAPACK_PARAMS,
) -> SimReport:
    """Simulate PDGEMM on ``n x n`` matrices over the whole cluster."""
    gx, gy = best_2d_grid(cluster.num_processors)
    machine = Machine(cluster, Grid(gx, gy))
    kernel = summa(machine, n, leaf="blas_gemm")
    trace = kernel.trace(check_capacity=True).trace
    return CostModel(cluster, params).time_trace(trace)
