"""Benchmark harness: weak-scaling drivers and figure generators.

Regenerates every table and figure of the paper's evaluation (Section 7)
as printable rows; the ``benchmarks/`` pytest suite wraps these and
asserts the paper's qualitative results hold.
"""

from repro.bench.weak_scaling import (
    cube_grid,
    grid_25d,
    square_grid,
    weak_cube_side,
    weak_matrix_size,
)
from repro.bench.figures import (
    DEFAULT_NODE_COUNTS,
    fig15a_cpu_matmul,
    fig15b_gpu_matmul,
    fig16_higher_order,
    format_table,
    headline_speedups,
    series,
)

__all__ = [
    "DEFAULT_NODE_COUNTS",
    "cube_grid",
    "fig15a_cpu_matmul",
    "fig15b_gpu_matmul",
    "fig16_higher_order",
    "format_table",
    "grid_25d",
    "headline_speedups",
    "series",
    "square_grid",
    "weak_cube_side",
    "weak_matrix_size",
]
