"""Command-line figure regeneration: ``python -m repro.bench <figure>``.

Usage::

    python -m repro.bench fig15a [--nodes 1,4,16,64,256]
    python -m repro.bench fig15b
    python -m repro.bench ttv|innerprod|ttm|mttkrp [--gpu]
    python -m repro.bench weak512 [--gpu]
    python -m repro.bench headline
    python -m repro.bench all

Prints the corresponding paper table. Figures run on the simulator;
the full node axis takes a few minutes.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import (
    DEFAULT_NODE_COUNTS,
    fig15a_cpu_matmul,
    fig15b_gpu_matmul,
    fig16_higher_order,
    format_table,
    headline_speedups,
)
from repro.bench.weak_scaling import EXTENDED_NODE_COUNTS, matmul_weak_scaling

HIGHER_ORDER = ("ttv", "innerprod", "ttm", "mttkrp")


def parse_nodes(text):
    return [int(x) for x in text.split(",") if x]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=[
            "fig15a", "fig15b", "weak512", "headline", "all", *HIGHER_ORDER,
        ],
    )
    parser.add_argument(
        "--nodes",
        type=parse_nodes,
        default=None,
        help="comma-separated node counts (default: the paper's axis)",
    )
    parser.add_argument(
        "--gpu", action="store_true", help="GPU variant of Figure 16 kernels"
    )
    args = parser.parse_args(argv)
    nodes = args.nodes or DEFAULT_NODE_COUNTS

    if args.figure in ("fig15a", "all"):
        print(format_table(
            fig15a_cpu_matmul(node_counts=nodes),
            "Figure 15a: CPU matmul weak scaling",
        ))
    if args.figure in ("fig15b", "all"):
        print(format_table(
            fig15b_gpu_matmul(node_counts=nodes),
            "Figure 15b: GPU matmul weak scaling",
        ))
    for kernel in HIGHER_ORDER:
        if args.figure in (kernel, "all"):
            rows = fig16_higher_order(
                kernel, gpu=args.gpu, node_counts=nodes
            )
            label = "GPU" if args.gpu else "CPU"
            print(format_table(
                rows, f"Figure 16: {kernel} weak scaling ({label})"
            ))
    if args.figure in ("weak512", "all"):
        counts = args.nodes or EXTENDED_NODE_COUNTS
        label = "GPU" if args.gpu else "CPU"
        print(format_table(
            matmul_weak_scaling(node_counts=counts, gpu=args.gpu),
            f"Weak scaling to {counts[-1]} nodes ({label})",
        ))
    if args.figure in ("headline", "all"):
        ratios = headline_speedups(node_counts=[nodes[-1]])
        print(f"== Headline speedups at {nodes[-1]} nodes ==")
        for key, value in ratios.items():
            print(f"  {key:<28s} {value:6.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
