"""Command-line figure regeneration: ``python -m repro.bench <figure>``.

Usage::

    python -m repro.bench fig15a [--nodes 1,4,16,64,256] [--jobs 8]
    python -m repro.bench fig15b
    python -m repro.bench ttv|innerprod|ttm|mttkrp [--gpu]
    python -m repro.bench weak512 [--gpu]
    python -m repro.bench weak4096 [--gpu]
    python -m repro.bench weak65536 [--gpu]
    python -m repro.bench headline
    python -m repro.bench all [--profile]
    python -m repro.bench --list

Prints the corresponding paper table. ``--jobs N`` (from the shared
:mod:`repro.cli` group) distributes sweep points over worker
processes; ``--json`` emits the tables as one machine-readable object
instead of formatted text; ``--profile`` prints per-figure wall-clock
and appends it (with headline simulated metrics) to the
``BENCH_simulator.json`` perf trajectory at the repo root. ``--list``
prints the available sweep names one per line (CI workflows iterate it
instead of hard-coding names). A sweep that raises produces a non-zero
exit code.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro import cli
from repro.bench.figures import (
    DEFAULT_NODE_COUNTS,
    fig15a_cpu_matmul,
    fig15b_gpu_matmul,
    fig16_higher_order,
    format_table,
    headline_speedups,
)
from repro.bench.weak_scaling import (
    EXTENDED_NODE_COUNTS,
    EXTREME_NODE_COUNTS,
    matmul_weak_scaling,
)

HIGHER_ORDER = ("ttv", "innerprod", "ttm", "mttkrp")

#: Every invocable sweep, in display order (`--list` prints these).
SWEEPS = (
    "fig15a", "fig15b", *HIGHER_ORDER, "weak512", "weak4096",
    "weak65536", "headline", "all",
)


def parse_nodes(text):
    return [int(x) for x in text.split(",") if x]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        choices=list(SWEEPS),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the available sweep names (one per line) and exit",
    )
    parser.add_argument(
        "--nodes",
        type=parse_nodes,
        default=None,
        help="comma-separated node counts (default: the paper's axis)",
    )
    parser.add_argument(
        "--gpu", action="store_true", help="GPU variant of Figure 16 kernels"
    )
    cli.add_common_args(parser, ledger=False, seed=False)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-figure wall-clock and append it to "
        "BENCH_simulator.json",
    )
    args = parser.parse_args(argv)
    if args.list:
        for sweep in SWEEPS:
            if sweep != "all":
                print(sweep)
        return 0
    if args.figure is None:
        parser.error("a sweep name (or --list) is required")
    nodes = args.nodes or DEFAULT_NODE_COUNTS
    profile: list = []
    tables: list = []

    def show(label, rows, title):
        tables.append({"sweep": label, "title": title, "rows": rows})
        if not args.json:
            print(format_table(rows, title))

    def timed(label, thunk):
        start = time.monotonic()
        result = thunk()
        wall = time.monotonic() - start
        profile.append((label, wall))
        return result

    try:
        if args.figure in ("fig15a", "all"):
            show(
                "fig15a",
                timed("fig15a", lambda: fig15a_cpu_matmul(
                    node_counts=nodes, jobs=args.jobs)),
                "Figure 15a: CPU matmul weak scaling",
            )
        if args.figure in ("fig15b", "all"):
            show(
                "fig15b",
                timed("fig15b", lambda: fig15b_gpu_matmul(
                    node_counts=nodes, jobs=args.jobs)),
                "Figure 15b: GPU matmul weak scaling",
            )
        for kernel in HIGHER_ORDER:
            if args.figure in (kernel, "all"):
                rows = timed(kernel, lambda k=kernel: fig16_higher_order(
                    k, gpu=args.gpu, node_counts=nodes, jobs=args.jobs
                ))
                label = "GPU" if args.gpu else "CPU"
                show(
                    kernel, rows,
                    f"Figure 16: {kernel} weak scaling ({label})",
                )
        # `all` includes the 512-node sweep; the larger axes run only
        # when asked for by name.
        sweep = None
        if args.figure in ("weak512", "all"):
            sweep = ("weak512", EXTENDED_NODE_COUNTS)
        elif args.figure == "weak4096":
            sweep = (
                "weak4096",
                [n for n in EXTREME_NODE_COUNTS if n <= 4096],
            )
        elif args.figure == "weak65536":
            sweep = ("weak65536", EXTREME_NODE_COUNTS)
        if sweep is not None:
            name, axis = sweep
            counts = args.nodes or axis
            label = "GPU" if args.gpu else "CPU"
            trio = [n for n in counts if n <= 4096]
            top = [n for n in counts if n > 4096]

            def run_sweep(trio=trio, top=top):
                rows = []
                if trio:
                    rows += matmul_weak_scaling(
                        node_counts=trio, gpu=args.gpu, jobs=args.jobs
                    )
                if top:
                    # Beyond 4096 nodes only Cannon's systolic phases
                    # replay; the broadcast algorithms re-resolve every
                    # phase and would take hours at 131k processors.
                    rows += matmul_weak_scaling(
                        node_counts=top,
                        algorithms=("cannon",),
                        gpu=args.gpu,
                        jobs=args.jobs,
                    )
                return rows

            rows = timed(name, run_sweep)
            suffix = "; cannon-only beyond 4096" if top else ""
            show(
                name, rows,
                f"Weak scaling to {counts[-1]} nodes ({label}{suffix})",
            )
        ratios = None
        if args.figure in ("headline", "all"):
            ratios = timed(
                "headline",
                lambda: headline_speedups(node_counts=[nodes[-1]]),
            )
            if not args.json:
                print(f"== Headline speedups at {nodes[-1]} nodes ==")
                for key, value in ratios.items():
                    print(f"  {key:<28s} {value:6.2f}x")
    except Exception:
        traceback.print_exc()
        print("benchmark sweep failed", file=sys.stderr)
        status = 1
    else:
        status = 0
        cli.emit(args, {
            "figure": args.figure,
            "tables": tables,
            "headline": ratios,
            "profile": {
                label: round(wall, 4) for label, wall in profile
            },
        })

    # The profile flushes even when the sweep failed: the figures that
    # *did* finish carry the wall-clock evidence of where the run died,
    # which used to be discarded with the non-zero exit.
    if args.profile:
        from repro.bench.perf_log import append_record
        from repro.obs.metrics import METRICS

        if not args.json:
            print("== Wall-clock profile ==")
        for label, wall in profile:
            if not args.json:
                print(f"  {label:<10s} {wall:8.2f}s")
            append_record(f"cli:{label}", wall)
        if profile:
            append_record(
                f"profile:{args.figure}",
                sum(wall for _label, wall in profile),
                metrics={
                    "profile": {label: round(wall, 4)
                                for label, wall in profile},
                    "failed": bool(status),
                },
                counters=METRICS.snapshot(),
            )
    return status


if __name__ == "__main__":
    sys.exit(main())
