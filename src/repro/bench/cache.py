"""Keyed plan/trace cache for benchmark sweeps.

The paper's figures re-simulate the same configurations over and over:
``headline_speedups`` re-runs Figure 15a's top node count, every figure
shares baselines across sweeps, and the benchmark suite executes several
figures in one process. Symbolic execution is deterministic — a kernel's
:class:`~repro.sim.report.SimReport` is a pure function of the plan, the
machine, and the cost-model parameters — so results are memoized under a
structural key:

``(kernel fingerprint, machine shape, cluster signature, tensor sizes,
params, check_capacity, executor mode)``

The :class:`~repro.sim.params.MachineParams` and the executor mode
(orbit / batched / scalar) are part of the key, so parameter sweeps and
mode toggles can never alias to stale entries. Cache contents are
picklable and exportable (:meth:`SimulationCache.export` /
:meth:`SimulationCache.install`), which is how the process-parallel
sweep driver (:mod:`repro.bench.parallel`) shares one logical cache
across workers.

where the *kernel fingerprint* is the plan's printed form (loop
structure, extents, communication points, leaf kernels — i.e. the
schedule) plus every tensor's shape/dtype/format. Out-of-memory
outcomes are cached too: a configuration that OOMs re-raises
:class:`~repro.util.errors.OutOfMemoryError` on every hit, so OOM rows
in a sweep are as cheap as successful ones.

Baseline models (ScaLAPACK, CTF, reference COSMA) build traces from
closed-form formulas rather than kernels; :func:`cached_baseline`
memoizes those per ``(function, cluster signature, arguments)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.machine.cluster import Cluster
from repro.sim.params import LASSEN, MachineParams
from repro.sim.report import SimReport
from repro.util.errors import OutOfMemoryError


def cluster_signature(cluster: Cluster) -> Tuple:
    """Structural identity of a cluster (homogeneous by construction)."""
    proc = cluster.processors[0]
    node = cluster.nodes[0]
    return (
        cluster.num_nodes,
        cluster.procs_per_node,
        proc.kind.value,
        proc.memory.kind.value,
        proc.memory.capacity_bytes,
        node.system_memory.capacity_bytes
        if node.system_memory is not None
        else None,
    )


def kernel_fingerprint(kernel) -> Tuple:
    """Structural identity of a compiled kernel.

    The plan's pretty-printed form pins the schedule (loop nest, launch
    dims, communication points, substituted leaf kernels, extents); the
    tensor table pins sizes, dtypes, and data distributions; the machine
    shape and cluster signature pin the placement.
    """
    plan = kernel.plan
    tensors = tuple(
        (
            name,
            t.shape,
            str(t.dtype),
            t.format.notation(),
            t.format.memory.value,
        )
        for name, t in sorted(plan.tensors.items())
    )
    return (
        plan.pretty(),
        plan.machine.shape,
        cluster_signature(plan.machine.cluster),
        tensors,
    )


def params_key(params: MachineParams) -> Tuple:
    return tuple(sorted(params.__dict__.items()))


class SimulationCache:
    """Memoizes ``Kernel.simulate`` results (including OOM outcomes)."""

    def __init__(self):
        self._store: Dict[Tuple, Tuple[str, object]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(kernel, params: MachineParams, check_capacity: bool,
             mode: str) -> Tuple:
        return (
            kernel_fingerprint(kernel),
            params_key(params),
            check_capacity,
            mode,
        )

    def simulate(
        self,
        kernel,
        params: MachineParams = LASSEN,
        check_capacity: bool = True,
        mode: str = "orbit",
    ) -> SimReport:
        """``kernel.simulate(params, check_capacity, mode)``, memoized."""
        key = self._key(kernel, params, check_capacity, mode)
        hit = self._store.get(key)
        if hit is not None:
            self.hits += 1
            outcome, payload = hit
            if outcome == "oom":
                raise OutOfMemoryError(*payload)
            return payload
        self.misses += 1
        try:
            report = kernel.simulate(
                params, check_capacity=check_capacity, mode=mode
            )
        except OutOfMemoryError as err:
            self._store[key] = ("oom", _oom_args(err))
            raise
        self._store[key] = ("ok", report)
        return report

    def cached(self, kernel, params: MachineParams, check_capacity: bool,
               mode: str):
        """The stored outcome for a configuration, or ``None``.

        Returns ``("ok", report)`` / ``("oom", args)`` without touching
        the hit counters; used by the tuner's incremental oracle, which
        layers a phase-structure store on top of this cache.
        """
        return self._store.get(
            self._key(kernel, params, check_capacity, mode)
        )

    def put(self, kernel, params: MachineParams, check_capacity: bool,
            mode: str, outcome: Tuple[str, object]):
        """Install an externally computed outcome for a configuration."""
        self._store[
            self._key(kernel, params, check_capacity, mode)
        ] = outcome

    def clear(self):
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def key_set(self):
        return set(self._store)

    def export(self, exclude=None) -> Dict[Tuple, Tuple[str, object]]:
        """Entries (optionally minus ``exclude`` keys), picklable."""
        if not exclude:
            return dict(self._store)
        return {k: v for k, v in self._store.items() if k not in exclude}

    def install(self, entries: Dict[Tuple, Tuple[str, object]]):
        """Merge entries exported by another process."""
        self._store.update(entries)


#: Process-global cache used by the figure generators and benchmarks.
SIM_CACHE = SimulationCache()

_BASELINE_STORE: Dict[Tuple, Tuple[str, object]] = {}


def cached_baseline(
    fn: Callable[..., SimReport], cluster: Cluster, *args, **kwargs
) -> SimReport:
    """Memoized call of a closed-form baseline model.

    Baselines are deterministic in ``(cluster, arguments)``; OOM
    outcomes are cached and re-raised like :class:`SimulationCache`.
    """
    key = (
        fn.__module__,
        fn.__qualname__,
        cluster_signature(cluster),
        args,
        tuple(sorted(kwargs.items())),
    )
    hit = _BASELINE_STORE.get(key)
    if hit is not None:
        outcome, payload = hit
        if outcome == "oom":
            raise OutOfMemoryError(*payload)
        return payload
    try:
        report = fn(cluster, *args, **kwargs)
    except OutOfMemoryError as err:
        _BASELINE_STORE[key] = ("oom", _oom_args(err))
        raise
    _BASELINE_STORE[key] = ("ok", report)
    return report


def _oom_args(err: OutOfMemoryError) -> Tuple:
    return (err.memory_name, err.needed_bytes, err.capacity_bytes)


def baseline_key_set():
    return set(_BASELINE_STORE)


def export_baselines(exclude=None) -> Dict[Tuple, Tuple[str, object]]:
    """Baseline-store entries (optionally minus ``exclude``), picklable."""
    if not exclude:
        return dict(_BASELINE_STORE)
    return {k: v for k, v in _BASELINE_STORE.items() if k not in exclude}


def install_baselines(entries: Dict[Tuple, Tuple[str, object]]):
    """Merge baseline entries exported by another process."""
    _BASELINE_STORE.update(entries)
