"""Per-figure benchmark generators (Section 7's plots, as tables).

Each ``fig*`` function returns rows ``{"system", "nodes", "value",
"unit", "note"}`` — one per plotted point. ``value`` is ``None`` with
``note="OOM"`` where the paper's corresponding run exhausted memory.

All simulations go through the process-global plan/trace cache
(:mod:`repro.bench.cache`): identical configurations — the same kernel
fingerprint, machine shape, sizes, and cost-model parameters — are
simulated once per process, so overlapping sweeps (e.g.
:func:`headline_speedups` re-running Figure 15a's top node count) cost
one dictionary lookup.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.higher_order import innerprod, mttkrp, ttm, ttv
from repro.algorithms.matmul import (
    cannon,
    cosma,
    johnson,
    pumma,
    solomonik,
    summa,
)
from repro.baselines.cosma import cosma_reference_matmul
from repro.baselines.ctf import (
    ctf_innerprod,
    ctf_matmul,
    ctf_mttkrp,
    ctf_ttm,
    ctf_ttv,
)
from repro.baselines.scalapack import scalapack_matmul
from repro.bench.cache import SIM_CACHE, cached_baseline
from repro.bench.weak_scaling import (
    Row,
    cube_grid,
    factor3,
    grid_25d,
    run_point as _run,
    square_grid,
    weak_cube_side,
    weak_matrix_size,
)
from repro.machine.cluster import Cluster, MemoryKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.util.errors import OutOfMemoryError

DEFAULT_NODE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def _solomonik_gflops(
    cluster: Cluster, n: int, memory: MemoryKind
) -> float:
    """Best 2.5-D configuration: use "extra memory when possible".

    Solomonik's algorithm interpolates between 3-D (large c) and 2-D
    (c=1): we try replication factors from large to small and keep the
    first that fits memory, exactly the algorithm's stated adaptivity
    (Section 7.1.2). Falls back to a 2-D grid when the processor count
    admits no efficient q x q x c factorization.
    """
    p = cluster.num_processors
    last_error: Optional[OutOfMemoryError] = None
    for max_c in (8, 4, 2, 1):
        q, _q, c = grid_25d(p, max_c=max_c)
        if q * q * c < 0.75 * p:
            continue
        machine = Machine(cluster, Grid(q, q, c))
        try:
            kern = solomonik(machine, n, memory=memory)
            return SIM_CACHE.simulate(kern, LASSEN).gflops_per_node
        except OutOfMemoryError as err:
            last_error = err
            continue
    gx, gy = square_grid(p)
    machine = Machine(cluster, Grid(gx, gy))
    try:
        return SIM_CACHE.simulate(
            cannon(machine, n, memory=memory), LASSEN
        ).gflops_per_node
    except OutOfMemoryError:
        raise last_error if last_error is not None else OutOfMemoryError(
            "gpu_fb", 0, 0
        )


# ----------------------------------------------------------------------
# Figure 15a: CPU matrix-multiplication weak scaling.
# ----------------------------------------------------------------------

def fig15a_cpu_matmul(
    node_counts: Optional[List[int]] = None,
    base_n: int = 8192,
    jobs: int = 1,
) -> List[Row]:
    """GFLOP/s per node for GEMM on CPUs, all systems (Figure 15a)."""
    node_counts = node_counts or DEFAULT_NODE_COUNTS
    if jobs > 1 and len(node_counts) > 1:
        from repro.bench.parallel import run_points

        return run_points(
            "fig15a_cpu_matmul",
            [{"node_counts": [n], "base_n": base_n} for n in node_counts],
            jobs,
        )
    unit = "GFLOP/s/node"
    rows: List[Row] = []
    for nodes in node_counts:
        cluster = Cluster.cpu_cluster(nodes)
        p = cluster.num_processors
        n = weak_matrix_size(base_n, nodes)
        gx, gy = square_grid(p)
        m2 = Machine(cluster, Grid(gx, gy))
        g3 = cube_grid(p)
        m3 = Machine(cluster, Grid(*g3))

        def sim(kernel) -> float:
            return SIM_CACHE.simulate(kernel, LASSEN).gflops_per_node

        rows.append(_run("COSMA", nodes, unit,
                         lambda: cached_baseline(
                             cosma_reference_matmul, cluster, n
                         ).gflops_per_node))
        rows.append(_run("COSMA (Restricted CPUs)", nodes, unit,
                         lambda: cached_baseline(
                             cosma_reference_matmul, cluster, n,
                             restricted_cpus=True).gflops_per_node))
        rows.append(_run("CTF", nodes, unit,
                         lambda: cached_baseline(
                             ctf_matmul, cluster, n).gflops_per_node))
        rows.append(_run("ScaLAPACK", nodes, unit,
                         lambda: cached_baseline(
                             scalapack_matmul, cluster, n).gflops_per_node))
        rows.append(_run("Our Cannon", nodes, unit,
                         lambda: sim(cannon(m2, n))))
        rows.append(_run("Our SUMMA", nodes, unit,
                         lambda: sim(summa(m2, n))))
        rows.append(_run("Our PUMMA", nodes, unit,
                         lambda: sim(pumma(m2, n))))
        rows.append(_run("Our Solomonik", nodes, unit,
                         lambda: _solomonik_gflops(
                             cluster, n, MemoryKind.SYSTEM_MEM)))
        rows.append(_run("Our Johnson", nodes, unit,
                         lambda: sim(johnson(m3, n))))
        rows.append(_run("Our COSMA", nodes, unit,
                         lambda: sim(cosma(cluster, n))))
    return rows


# ----------------------------------------------------------------------
# Figure 15b: GPU matrix-multiplication weak scaling.
# ----------------------------------------------------------------------

def fig15b_gpu_matmul(
    node_counts: Optional[List[int]] = None,
    base_n: int = 20000,
    jobs: int = 1,
) -> List[Row]:
    """GFLOP/s per node for GEMM on GPUs (Figure 15b).

    DISTAL kernels pin data in framebuffer memory (and can OOM, like
    Johnson's and the COSMA schedule at 32+ nodes); the reference COSMA
    keeps data host-resident and out-of-core.
    """
    node_counts = node_counts or DEFAULT_NODE_COUNTS
    if jobs > 1 and len(node_counts) > 1:
        from repro.bench.parallel import run_points

        return run_points(
            "fig15b_gpu_matmul",
            [{"node_counts": [n], "base_n": base_n} for n in node_counts],
            jobs,
        )
    unit = "GFLOP/s/node"
    fb = MemoryKind.GPU_FB
    rows: List[Row] = []
    for nodes in node_counts:
        cluster = Cluster.gpu_cluster(nodes)
        p = cluster.num_processors
        n = weak_matrix_size(base_n, nodes)
        gx, gy = square_grid(p)
        m2 = Machine(cluster, Grid(gx, gy))
        g3 = cube_grid(p)
        m3 = Machine(cluster, Grid(*g3))

        def sim(kernel) -> float:
            return SIM_CACHE.simulate(kernel, LASSEN).gflops_per_node

        rows.append(_run("COSMA", nodes, unit,
                         lambda: cached_baseline(
                             cosma_reference_matmul, cluster, n
                         ).gflops_per_node))
        rows.append(_run("Our Cannon", nodes, unit,
                         lambda: sim(cannon(m2, n, memory=fb))))
        rows.append(_run("Our SUMMA", nodes, unit,
                         lambda: sim(summa(m2, n, memory=fb))))
        rows.append(_run("Our PUMMA", nodes, unit,
                         lambda: sim(pumma(m2, n, memory=fb))))
        rows.append(_run("Our Solomonik", nodes, unit,
                         lambda: _solomonik_gflops(cluster, n, fb)))
        rows.append(_run("Our Johnson", nodes, unit,
                         lambda: sim(johnson(m3, n, memory=fb))))
        rows.append(_run("Our COSMA", nodes, unit,
                         lambda: sim(cosma(cluster, n, memory=fb))))
    return rows


# ----------------------------------------------------------------------
# Figure 16: higher-order tensor kernels.
# ----------------------------------------------------------------------

def fig16_higher_order(
    kernel: str,
    gpu: bool = False,
    node_counts: Optional[List[int]] = None,
    base_n: Optional[int] = None,
    rank: int = 64,
    jobs: int = 1,
) -> List[Row]:
    """Weak scaling of TTV / Innerprod / TTM / MTTKRP, Ours vs CTF.

    ``kernel`` is one of ``"ttv"``, ``"innerprod"``, ``"ttm"``,
    ``"mttkrp"``. Bandwidth-bound kernels report GB/s per node, the
    rest GFLOP/s per node (Figure 16). The paper reports CTF on CPUs
    only (its GPU backend does not build); we do the same.
    """
    node_counts = node_counts or DEFAULT_NODE_COUNTS
    if jobs > 1 and len(node_counts) > 1:
        from repro.bench.parallel import run_points

        return run_points(
            "fig16_higher_order",
            [
                {
                    "kernel": kernel,
                    "gpu": gpu,
                    "node_counts": [n],
                    "base_n": base_n,
                    "rank": rank,
                }
                for n in node_counts
            ],
            jobs,
        )
    if base_n is None:
        base_n = 900 if gpu else 700
    bandwidth_bound = kernel in ("ttv", "innerprod")
    unit = "GB/s/node" if bandwidth_bound else "GFLOP/s/node"
    fb = MemoryKind.GPU_FB if gpu else MemoryKind.SYSTEM_MEM
    rows: List[Row] = []
    for nodes in node_counts:
        if gpu:
            cluster = Cluster.gpu_cluster(nodes)
        else:
            cluster = Cluster.cpu_cluster(nodes)
        p = cluster.num_processors
        n = weak_cube_side(base_n, nodes)
        gx, gy = square_grid(p)
        m2 = Machine(cluster, Grid(gx, gy))
        m1 = Machine(cluster, Grid(p))
        # Ballard's MTTKRP accepts any 3-D grid; use the most balanced
        # full factorization instead of Johnson's strict cube.
        m3 = Machine(cluster, Grid(*factor3(p)))

        def metric(kern) -> float:
            rep = SIM_CACHE.simulate(kern, LASSEN)
            return rep.gbytes_per_node if bandwidth_bound else rep.gflops_per_node

        if kernel == "ttv":
            rows.append(_run("Ours", nodes, unit,
                             lambda: metric(ttv(m2, n, memory=fb))))
            if not gpu:
                rows.append(_run("CTF", nodes, unit,
                                 lambda: cached_baseline(
                                     ctf_ttv, cluster, n).gbytes_per_node))
        elif kernel == "innerprod":
            rows.append(_run("Ours", nodes, unit,
                             lambda: metric(innerprod(m2, n, memory=fb))))
            if not gpu:
                rows.append(_run("CTF", nodes, unit,
                                 lambda: cached_baseline(
                                     ctf_innerprod, cluster, n
                                 ).gbytes_per_node))
        elif kernel == "ttm":
            rows.append(_run("Ours", nodes, unit,
                             lambda: metric(ttm(m1, n, r=rank, memory=fb))))
            if not gpu:
                rows.append(_run("CTF", nodes, unit,
                                 lambda: cached_baseline(
                                     ctf_ttm, cluster, n, rank
                                 ).gflops_per_node))
        elif kernel == "mttkrp":
            rows.append(_run("Ours", nodes, unit,
                             lambda: metric(mttkrp(m3, n, r=rank, memory=fb))))
            if not gpu:
                rows.append(_run("CTF", nodes, unit,
                                 lambda: cached_baseline(
                                     ctf_mttkrp, cluster, n, rank
                                 ).gflops_per_node))
        else:
            raise ValueError(f"unknown higher-order kernel {kernel!r}")
    return rows


# ----------------------------------------------------------------------
# Presentation + summary helpers.
# ----------------------------------------------------------------------

def series(rows: List[Row], system: str) -> Dict[int, Optional[float]]:
    """One system's nodes -> value curve out of a row list."""
    return {
        int(r["nodes"]): (None if r["value"] is None else float(r["value"]))
        for r in rows
        if r["system"] == system
    }


def format_table(rows: List[Row], title: str = "") -> str:
    """Render rows as the paper-style table: systems x node counts."""
    systems: List[str] = []
    for r in rows:
        if r["system"] not in systems:
            systems.append(r["system"])
    node_counts = sorted({int(r["nodes"]) for r in rows})
    unit = rows[0]["unit"] if rows else ""
    width = max(len(s) for s in systems) + 2 if systems else 10
    lines = []
    if title:
        lines.append(f"== {title} ({unit}) ==")
    header = " " * width + "".join(f"{n:>10d}" for n in node_counts)
    lines.append(header)
    for system in systems:
        curve = series(rows, system)
        cells = []
        for n in node_counts:
            v = curve.get(n)
            cells.append(f"{'OOM':>10s}" if v is None else f"{v:>10.1f}")
        lines.append(f"{system:<{width}s}" + "".join(cells))
    return "\n".join(lines)


def headline_speedups(
    node_counts: Optional[List[int]] = None,
) -> Dict[str, float]:
    """The abstract's headline ratios, recomputed from our benches.

    Returns DISTAL-vs-baseline speedups at the largest node count:
    ``vs_scalapack``/``vs_ctf``/``vs_cosma`` for GEMM and per-kernel
    ``higher_order_*`` ratios against CTF.
    """
    node_counts = node_counts or [64]
    top = node_counts[-1]
    cpu = fig15a_cpu_matmul(node_counts=[top])
    best_ours = max(
        v
        for name in ("Our Cannon", "Our SUMMA", "Our Solomonik")
        for v in series(cpu, name).values()
        if v is not None
    )
    out = {
        "vs_scalapack": best_ours / series(cpu, "ScaLAPACK")[top],
        "vs_ctf_gemm": best_ours / series(cpu, "CTF")[top],
        "vs_cosma": best_ours / series(cpu, "COSMA")[top],
    }
    for kernel in ("ttv", "innerprod", "ttm", "mttkrp"):
        rows = fig16_higher_order(kernel, gpu=False, node_counts=[top])
        ours = series(rows, "Ours")[top]
        ctf = series(rows, "CTF")[top]
        out[f"higher_order_{kernel}"] = ours / ctf
    return out
