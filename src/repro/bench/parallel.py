"""Process-parallel sweep driver for the figure generators.

Weak-scaling sweeps are embarrassingly parallel across node counts —
each point compiles and simulates its own kernels — but the paper's
figure tables must come back in axis order, and the keyed plan/trace
cache (:mod:`repro.bench.cache`) should stay warm across the whole
benchmark session. The driver therefore:

* forks one worker per point (``fork`` start method, so workers inherit
  the parent's warm cache for free);
* has every worker return its rows *plus* the cache entries it added
  (both the simulation cache and the closed-form baseline store) and
  its observability deltas (metric counters, wall-clock spans);
* merges those deltas back into the parent's process-global caches, so
  a figure computed with ``--jobs 8`` leaves the same cache state
  behind as a sequential run, and later figures (or
  ``headline_speedups``) reuse every simulated configuration.

On platforms without ``fork`` (or with ``jobs <= 1``) the driver simply
runs the points sequentially in-process.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
from typing import Callable, Dict, List, Sequence

from repro.bench.cache import (
    SIM_CACHE,
    baseline_key_set,
    export_baselines,
    install_baselines,
)
from repro.obs.metrics import METRICS
from repro.obs.spans import export_spans, install_spans, span_mark

#: Resolved lazily per worker; maps registered sweep names to callables.
_SWEEPS: Dict[str, Callable] = {}

#: Serializes the parent-side cache/metrics merge (and the sequential
#: fallback, which mutates the globals directly). The serving daemon
#: dispatches sweeps from an executor thread while its event loop keeps
#: answering hits on the main thread; without this, two concurrent
#: ``run_points`` calls could interleave their installs.
_DISPATCH_LOCK = threading.Lock()


def register_sweep(name: str, fn: Callable):
    """Make a sweep callable addressable by name (picklable dispatch)."""
    _SWEEPS[name] = fn


def _resolve(name: str) -> Callable:
    fn = _SWEEPS.get(name)
    if fn is not None:
        return fn
    # Import lazily so workers resolve the callable after the fork.
    from repro.bench import figures, weak_scaling
    from repro.tuner import oracle as tuner_oracle

    from repro.serve import worker as serve_worker

    for module in (figures, weak_scaling, tuner_oracle, serve_worker):
        fn = getattr(module, name, None)
        if fn is not None:
            return fn
    raise ValueError(f"unknown sweep {name!r}")


def _run_point(payload):
    """One worker task; never raises.

    Exceptions are shipped back as ``("err", traceback text)`` instead
    of propagating: a raising worker would poison the whole
    ``pool.map`` and lose the other points' finished work, so the
    parent decides what to do (retry in-process, then surface the
    original worker traceback).
    """
    name, kwargs = payload
    sim_before = SIM_CACHE.key_set()
    base_before = baseline_key_set()
    metrics_before = METRICS.export()
    mark = span_mark()
    try:
        rows = _resolve(name)(**kwargs)
    except Exception:
        return ("err", traceback.format_exc())
    # The observability deltas ride the same envelope as the cache
    # deltas: a forked worker inherited the parent's counters and span
    # list, so only what accumulated after the fork ships back.
    return ("ok", (
        rows,
        SIM_CACHE.export(exclude=sim_before),
        export_baselines(exclude=base_before),
        METRICS.delta(metrics_before),
        export_spans(since=mark),
    ))


def run_points(
    name: str,
    per_point_kwargs: Sequence[dict],
    jobs: int,
    costs: Sequence[float] = None,
    always_fork: bool = False,
) -> List:
    """Run one sweep function over many kwargs sets, possibly in parallel.

    Returns the concatenated row lists in input order. With ``jobs > 1``
    the points run in forked worker processes and their cache deltas are
    merged back into this process's global caches.

    ``costs`` (optional, one per point) orders the dispatch: expensive
    points start first, one task per worker pull (no chunk batching), so
    a sweep's largest configurations never serialize behind each other
    in one worker while the others sit idle. Row order is unaffected.

    ``always_fork`` forks even for a single point or ``jobs=1``: the
    serving daemon uses it so a lone cold tune still runs in a child
    process, keeping the parent's event loop (the microsecond hit path)
    free of GIL-heavy simulation work. Platforms without ``fork`` fall
    back to the sequential path regardless.
    """
    tasks = [(name, kwargs) for kwargs in per_point_kwargs]
    # More workers than cores just adds fork and scheduling overhead —
    # single-core runners (CI containers) degrade to a clean sequential
    # pass instead of time-slicing forks.
    jobs = max(1, min(jobs, len(tasks), os.cpu_count() or 1))
    sequential = jobs <= 1 or len(tasks) <= 1
    if always_fork and tasks:
        sequential = False
    if sequential or not _fork_available():
        with _DISPATCH_LOCK:
            rows: List = []
            for task in tasks:
                rows.extend(_resolve(name)(**task[1]))
            return rows
    order = list(range(len(tasks)))
    if costs is not None:
        order.sort(key=lambda i: -costs[i])
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=jobs) as pool:
        dispatched = pool.map(
            _run_point, [tasks[i] for i in order], chunksize=1
        )
    results = [None] * len(tasks)
    for slot, result in zip(order, dispatched):
        results[slot] = result
    rows = []
    with _DISPATCH_LOCK:
        for slot, outcome in enumerate(results):
            status, result = outcome
            if status == "err":
                # Retry the failed point once, sequentially in this
                # process: transient worker trouble (a fork inheriting a
                # torn cache, resource exhaustion under full fan-out)
                # often clears on resubmission. A second failure
                # surfaces the *original worker* traceback — the retry
                # may fail differently, but the first crash is what to
                # debug.
                status, result = _retry_point(tasks[slot], result)
            point_rows, sim_delta, base_delta, metrics_delta, spans = result
            SIM_CACHE.install(sim_delta)
            install_baselines(base_delta)
            METRICS.install(metrics_delta)
            install_spans(spans)
            rows.extend(point_rows)
    return rows


def _retry_point(task, worker_traceback: str):
    """Second (in-process) attempt at a point whose worker failed."""
    METRICS.inc("bench.pool_retries")
    try:
        return _run_point_strict(task)
    except Exception as retry_err:
        raise RuntimeError(
            f"sweep point {task[0]!r} failed in a pool worker and "
            f"again on in-process retry ({type(retry_err).__name__}: "
            f"{retry_err}); original worker traceback:\n"
            f"{worker_traceback}"
        ) from retry_err


def _run_point_strict(payload):
    """Like :func:`_run_point`, but lets exceptions propagate.

    Runs in the parent process, where metrics and spans accumulate in
    the live registry directly — the envelope ships empty deltas so the
    caller's install is a no-op rather than a double count.
    """
    name, kwargs = payload
    sim_before = SIM_CACHE.key_set()
    base_before = baseline_key_set()
    rows = _resolve(name)(**kwargs)
    return ("ok", (
        rows,
        SIM_CACHE.export(exclude=sim_before),
        export_baselines(exclude=base_before),
        {},
        [],
    ))


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False
