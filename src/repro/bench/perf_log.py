"""Machine-readable performance trajectory: ``BENCH_simulator.json``.

Benchmark runs append one record per sweep — wall-clock seconds plus
whatever simulated-time metrics the caller supplies — to a JSON list at
the repository root, so the simulator's performance trend is tracked
across PRs without digging through CI logs.

The writer is crash- and parallel-safe:

* records are written to a temporary file in the same directory and
  moved into place with ``os.replace``, so a killed process can never
  leave a half-written log behind;
* concurrent appenders (``--jobs`` sweeps, parallel tuning runs)
  serialize on an advisory ``flock`` of a sidecar ``.lock`` file where
  the platform provides one;
* a log whose *tail* was corrupted anyway (e.g. by a pre-fix writer
  dying mid-write) is salvaged: the valid leading records are kept, and
  the corrupt original is quarantined next to the log as
  ``<name>.corrupt`` before the salvaged list is rewritten.

Foreign content — a file that is not a JSON list and yields no salvage
— is never clobbered; ``append_record`` simply returns ``False``.

Override the destination with ``REPRO_BENCH_LOG`` (used by tests).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: The executor mode benchmark timings are recorded under by default.
DEFAULT_MODE = "orbit"


def environment(mode: str = DEFAULT_MODE) -> Dict[str, object]:
    """The recording environment attached to every perf record.

    Wall-clock timings are only comparable between equal environments —
    a 2-core CI runner legitimately takes longer than a 32-core laptop.
    ``repro.bench.regression`` compares records whose environments
    match and treats everything else as incomparable instead of
    false-flagging it.
    """
    return {
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "cpus": os.cpu_count() or 1,
        "mode": mode,
    }


def log_path() -> Path:
    override = os.environ.get("REPRO_BENCH_LOG")
    if override:
        return Path(override)
    # src/repro/bench/perf_log.py -> repository root.
    return Path(__file__).resolve().parents[3] / "BENCH_simulator.json"


@contextmanager
def locked(path: Path):
    """Best-effort advisory lock serializing concurrent writers of
    ``path`` (shared by the perf log and the tuner's ledger).

    The lock file lives *beside* the target (same directory), so logs
    pointed into temporary directories (``REPRO_BENCH_LOG`` in tests,
    per-run ledgers) lock within that directory — never at a shared
    global location — and the sidecar is a runtime artifact covered by
    ``.gitignore``, not repository content. A missing parent directory
    is created first, so a fresh temp path can be locked immediately.
    """
    lock_file = None
    try:
        import fcntl

        path.parent.mkdir(parents=True, exist_ok=True)
        lock_file = open(path.with_name(path.name + ".lock"), "a+")
        fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
    except (ImportError, OSError):
        # Fall back to unlocked appends (atomic replace still protects
        # readers); don't leak the handle if only the flock failed.
        if lock_file is not None:
            lock_file.close()
        lock_file = None
    try:
        yield
    finally:
        if lock_file is not None:
            try:
                import fcntl

                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)
            except (ImportError, OSError):
                pass
            lock_file.close()


def _salvage(text: str) -> Optional[List[Dict]]:
    """Recover the valid leading records of a truncated JSON list.

    A writer that died mid-``write`` leaves a prefix of the intended
    content: ``[`` followed by zero or more complete records and then a
    torn one. Decode records one by one and keep what parses.
    """
    stripped = text.lstrip()
    if not stripped.startswith("["):
        return None
    decoder = json.JSONDecoder()
    pos = text.find("[") + 1
    records: List[Dict] = []
    while True:
        while pos < len(text) and text[pos] in " \t\r\n,":
            pos += 1
        if pos >= len(text) or text[pos] == "]":
            break
        try:
            value, pos = decoder.raw_decode(text, pos)
        except json.JSONDecodeError:
            break
        records.append(value)
    return records


def _load(path: Path) -> Tuple[Optional[List[Dict]], bool]:
    """The log's records plus whether salvage dropped corrupt content.

    Returns ``(None, False)`` for unreadable or foreign content that
    must be preserved untouched.
    """
    if not path.exists():
        return [], False
    try:
        text = path.read_text()
    except OSError:
        return None, False
    if not text.strip():
        return [], False
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        salvaged = _salvage(text)
        if salvaged is None:
            return None, False
        return salvaged, True
    return (data, False) if isinstance(data, list) else (None, False)


def write_atomic(path: Path, text: str) -> bool:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so readers never observe a torn file. Shared by the
    perf log and the tuner's ledger."""
    try:
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
    except OSError:
        return False
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            # fsync before the rename: without it, a crash (or power
            # loss) between write and replace can publish an *empty*
            # temp file under the final name — a stale-but-valid log
            # that silently drops every record written so far.
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    return True


def read_records(path: Optional[Path] = None) -> List[Dict]:
    """The log's records for read-only consumers (``python -m
    repro.obs``); unreadable/foreign content reads as empty."""
    records, _salvaged = _load(path or log_path())
    return records or []


def append_record(
    name: str,
    wall_s: float,
    metrics: Optional[Dict] = None,
    mode: str = DEFAULT_MODE,
    counters: Optional[Dict] = None,
) -> bool:
    """Append one perf record; returns False when the log is unwritable
    or holds something that is not (a salvageable prefix of) a JSON
    list — foreign content is never clobbered. Each record carries the
    recording environment (:func:`environment`), so the regression gate
    never compares timings across machines.

    ``counters`` (a metrics-registry snapshot) is stored under
    ``metrics.counters`` — opt-in, so callers recording pure
    measurements keep schema-stable records — where the regression
    gate's efficiency rules read it."""
    path = log_path()
    with locked(path):
        records, salvaged = _load(path)
        if records is None:
            return False
        if salvaged:
            # Quarantine the corrupt original before rewriting.
            try:
                quarantine = path.with_name(path.name + ".corrupt")
                quarantine.write_text(path.read_text())
            except OSError:
                return False
        record = {
            "name": name,
            "wall_s": round(float(wall_s), 4),
            "timestamp": int(time.time()),
            "env": environment(mode),
        }
        if metrics:
            record["metrics"] = dict(metrics)
        if counters:
            record.setdefault("metrics", {})["counters"] = dict(counters)
        records.append(record)
        return write_atomic(path, json.dumps(records, indent=1) + "\n")
