"""Machine-readable performance trajectory: ``BENCH_simulator.json``.

Benchmark runs append one record per sweep — wall-clock seconds plus
whatever simulated-time metrics the caller supplies — to a JSON list at
the repository root, so the simulator's performance trend is tracked
across PRs without digging through CI logs. The file is append-only;
corrupt or foreign content is preserved untouched by writing nothing.

Override the destination with ``REPRO_BENCH_LOG`` (used by tests).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional


def log_path() -> Path:
    override = os.environ.get("REPRO_BENCH_LOG")
    if override:
        return Path(override)
    # src/repro/bench/perf_log.py -> repository root.
    return Path(__file__).resolve().parents[3] / "BENCH_simulator.json"


def _load(path: Path) -> Optional[List[Dict]]:
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, list) else None


def append_record(
    name: str, wall_s: float, metrics: Optional[Dict] = None
) -> bool:
    """Append one perf record; returns False when the log is unwritable
    or holds something that is not a JSON list (never clobbers it)."""
    path = log_path()
    records = _load(path)
    if records is None:
        return False
    record = {
        "name": name,
        "wall_s": round(float(wall_s), 4),
        "timestamp": int(time.time()),
    }
    if metrics:
        record["metrics"] = metrics
    records.append(record)
    try:
        path.write_text(json.dumps(records, indent=1) + "\n")
    except OSError:
        return False
    return True
