"""Perf-regression gate over the ``BENCH_simulator.json`` trajectory.

``python -m repro.bench.regression --baseline OLD.json`` compares the
*latest* record of every tracked name in the current perf log against
the latest record of the same name in a baseline log (CI uses the
last committed trajectory, snapshotted before the benchmark run
appends to it). A name regresses when its wall-clock grew by more than
``--threshold`` (default 25%) *and* by more than ``--min-seconds``
(default 0.05 s — sub-tick timings jitter far above 25% without
meaning anything). Names present only in one log are reported but
never fail the gate; exit status is 1 iff at least one tracked timing
regressed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.perf_log import log_path

#: Defaults of the CI gate.
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SECONDS = 0.05


def latest_by_name(records: List[Dict]) -> Dict[str, Dict]:
    """The last record of every name, in trajectory (append) order."""
    latest: Dict[str, Dict] = {}
    for record in records:
        name = record.get("name")
        if isinstance(name, str) and "wall_s" in record:
            latest[name] = record
    return latest


def load_records(path: Path) -> List[Dict]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"cannot read perf log {path}: {err}")
    if not isinstance(data, list):
        raise SystemExit(f"perf log {path} is not a JSON list")
    return data


def compare(
    baseline: Dict[str, Dict],
    current: Dict[str, Dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Tuple[List[Tuple[str, float, float]], List[str], List[str]]:
    """(regressions, names only in baseline, names only in current).

    A regression is ``(name, baseline wall_s, current wall_s)`` where
    the current timing exceeds the baseline by more than both the
    relative threshold and the absolute floor.
    """
    regressions: List[Tuple[str, float, float]] = []
    for name in sorted(set(baseline) & set(current)):
        base = float(baseline[name]["wall_s"])
        cur = float(current[name]["wall_s"])
        if cur > base * (1.0 + threshold) and cur - base > min_seconds:
            regressions.append((name, base, cur))
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    return regressions, missing, new


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Fail when a tracked benchmark timing regressed "
        "against a baseline perf trajectory.",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="baseline perf log (e.g. the last committed "
        "BENCH_simulator.json, snapshotted before the run)",
    )
    parser.add_argument(
        "--log",
        default=None,
        help="current perf log (default: the repository trajectory, "
        "honouring REPRO_BENCH_LOG)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that counts as a regression "
        "(default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="absolute slowdown floor; smaller deltas are noise",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    current_path = Path(args.log) if args.log else log_path()
    baseline = latest_by_name(load_records(baseline_path))
    current = latest_by_name(load_records(current_path))
    regressions, missing, new = compare(
        baseline, current, args.threshold, args.min_seconds
    )

    tracked = sorted(set(baseline) & set(current))
    print(
        f"comparing {len(tracked)} tracked timing(s) against "
        f"{baseline_path}"
    )
    for name in tracked:
        base = float(baseline[name]["wall_s"])
        cur = float(current[name]["wall_s"])
        delta = cur - base
        flag = "REGRESSED" if any(r[0] == name for r in regressions) else "ok"
        print(
            f"  {name:<44s} {base:9.3f}s -> {cur:9.3f}s "
            f"({delta:+.3f}s) {flag}"
        )
    if new:
        print(f"new (untracked) names: {', '.join(new)}")
    if missing:
        print(f"not re-measured this run: {', '.join(missing)}")
    if regressions:
        print(
            f"{len(regressions)} timing(s) regressed more than "
            f"{args.threshold:.0%} (+{args.min_seconds}s floor)",
            file=sys.stderr,
        )
        return 1
    print("no tracked timing regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
