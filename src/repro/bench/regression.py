"""Perf-regression gate over the ``BENCH_simulator.json`` trajectory.

``python -m repro.bench.regression --baseline OLD.json`` compares the
*latest* record of every tracked name in the current perf log against
the latest record of the same name in a baseline log (CI uses the
last committed trajectory, snapshotted before the benchmark run
appends to it). A name regresses when its wall-clock grew by more than
``--threshold`` (default 25%) *and* by more than ``--min-seconds``
(default 0.05 s — sub-tick timings jitter far above 25% without
meaning anything). Names present only in one log are reported but
never fail the gate; exit status is 1 iff at least one tracked timing
or efficiency counter regressed.

Records carrying a metrics snapshot (``metrics.counters``, written by
``append_record(..., counters=...)``) are additionally compared on the
efficiency rules of :func:`compare_counters` — regressions wall-clock
noise hides, like the orbit executor's scalar fallback reappearing or
a replay hit rate collapsing. A baseline record that predates the
metrics schema (no counters) is *reported*, never failed: old
trajectories stay usable as timing baselines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.perf_log import log_path

#: Defaults of the CI gate.
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SECONDS = 0.05


#: "No environment filter" sentinel — distinct from ``None``, which
#: matches exactly the legacy records that carry no ``env`` block.
ANY_ENV = object()


def latest_by_name(
    records: List[Dict], env: object = ANY_ENV
) -> Dict[str, Dict]:
    """The last record of every name, in trajectory (append) order.

    With ``env`` given (including ``None``), only records whose
    recording environment equals it are considered — wall-clock timings
    from a different machine class (cpu count, python version, executor
    mode) are not comparable, so the gate must never pair them. A
    ``None`` filter matches exactly the legacy records that carry no
    ``env`` block.
    """
    latest: Dict[str, Dict] = {}
    for record in records:
        name = record.get("name")
        if not (isinstance(name, str) and "wall_s" in record):
            continue
        if env is not ANY_ENV and record.get("env") != env:
            continue
        latest[name] = record
    return latest


def load_records(path: Path) -> List[Dict]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"cannot read perf log {path}: {err}")
    if not isinstance(data, list):
        raise SystemExit(f"perf log {path} is not a JSON list")
    return data


def compare(
    baseline: Dict[str, Dict],
    current: Dict[str, Dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Tuple[List[Tuple[str, float, float]], List[str], List[str]]:
    """(regressions, names only in baseline, names only in current).

    A regression is ``(name, baseline wall_s, current wall_s)`` where
    the current timing exceeds the baseline by more than both the
    relative threshold and the absolute floor.
    """
    regressions: List[Tuple[str, float, float]] = []
    for name in sorted(set(baseline) & set(current)):
        base = float(baseline[name]["wall_s"])
        cur = float(current[name]["wall_s"])
        if cur > base * (1.0 + threshold) and cur - base > min_seconds:
            regressions.append((name, base, cur))
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    return regressions, missing, new


def counters_of(record: Dict) -> Optional[Dict]:
    """A record's ``metrics.counters`` snapshot, or ``None`` when the
    record predates the metrics schema."""
    metrics = record.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counters")
        if isinstance(counters, dict):
            return counters
    return None


#: Hit/miss-style replay rates: ``(label, numerator, denominator)``
#: where the rate is num / (num + den). A rate that was >= 50% in the
#: baseline and halved in the current run fails the gate — the fast
#: path stopped firing.
RATE_RULES = (
    ("step-price replay", "costmodel.step_price_hits",
     "costmodel.step_price_misses"),
    ("orbit phase replay", "orbit.phase_replays", None),
)

#: Rate-rule thresholds: the baseline rate must be at least MIN_RATE
#: for the rule to arm, and the current rate must drop below half the
#: baseline's to fail.
MIN_RATE = 0.5

#: Zero-stays-zero counters: a benchmark run where one of these was 0
#: in the baseline and nonzero now regressed — a slow or failing path
#: started firing. (The chaos soak triggers them *on purpose*, which
#: is fine: the gate compares like-named records, and the soak's
#: record legitimately carries nonzero values on both sides.)
APPEARANCE_RULES = (
    ("orbit.fallback_events", "orbit scalar fallbacks reappeared"),
    ("serve.crashes", "serving tune workers started crashing"),
    ("serve.quarantined", "serving requests started being quarantined"),
    ("serve.shed", "serving daemon started shedding load"),
    ("serve.drained", "serving waiters started hitting drain errors"),
)

CounterFinding = Tuple[str, str, float, float, str]


def compare_counters(
    baseline: Dict[str, Dict], current: Dict[str, Dict]
) -> Tuple[List[CounterFinding], List[str]]:
    """(efficiency regressions, baseline names predating the schema).

    Each finding is ``(record name, counter, baseline value, current
    value, rule description)``. Only record pairs where *both* sides
    carry counters are judged; a current-only snapshot marks the
    baseline as pre-schema (reported, never failed).
    """
    findings: List[CounterFinding] = []
    pre_schema: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        cur_c = counters_of(current[name])
        if cur_c is None:
            continue
        base_c = counters_of(baseline[name])
        if base_c is None:
            pre_schema.append(name)
            continue
        for counter, description in APPEARANCE_RULES:
            base_v = base_c.get(counter, 0)
            cur_v = cur_c.get(counter, 0)
            if base_v == 0 and cur_v > 0:
                findings.append((
                    name, counter, base_v, cur_v, description,
                ))
        for label, num_key, den_key in RATE_RULES:
            if den_key is None:
                # Rate against the step count rather than a miss twin.
                base_den = base_c.get("orbit.steps", 0)
                cur_den = cur_c.get("orbit.steps", 0)
            else:
                base_den = base_c.get(num_key, 0) + base_c.get(den_key, 0)
                cur_den = cur_c.get(num_key, 0) + cur_c.get(den_key, 0)
            base_num = base_c.get(num_key, 0)
            cur_num = cur_c.get(num_key, 0)
            if not base_den or not cur_den:
                continue
            base_rate = base_num / base_den
            cur_rate = cur_num / cur_den
            if base_rate >= MIN_RATE and cur_rate < base_rate / 2:
                findings.append((
                    name, num_key, base_rate, cur_rate,
                    f"{label} hit rate collapsed",
                ))
    return findings, pre_schema


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Fail when a tracked benchmark timing regressed "
        "against a baseline perf trajectory.",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="baseline perf log (e.g. the last committed "
        "BENCH_simulator.json, snapshotted before the run)",
    )
    parser.add_argument(
        "--log",
        default=None,
        help="current perf log (default: the repository trajectory, "
        "honouring REPRO_BENCH_LOG)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that counts as a regression "
        "(default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="absolute slowdown floor; smaller deltas are noise",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    current_path = Path(args.log) if args.log else log_path()
    current_all = latest_by_name(load_records(current_path))
    # Pair records per name only when both sides were recorded in the
    # same environment: the current run's environment (per name) picks
    # the comparable baseline record, so a CI runner never false-flags
    # a laptop-recorded baseline.
    baseline_records = load_records(baseline_path)
    baseline: Dict[str, Dict] = {}
    incomparable: List[str] = []
    for name, record in current_all.items():
        env = record.get("env")
        matched = latest_by_name(baseline_records, env).get(name)
        if matched is not None:
            baseline[name] = matched
        elif name in latest_by_name(baseline_records):
            incomparable.append(name)
    current = current_all
    regressions, _filtered_missing, new = compare(
        baseline, current, args.threshold, args.min_seconds
    )
    # "Not re-measured" must consider every baseline name, not just the
    # env-comparable subset, so a benchmark silently vanishing from the
    # trajectory is still reported.
    missing = sorted(
        set(latest_by_name(baseline_records)) - set(current)
    )

    tracked = sorted(set(baseline) & set(current))
    print(
        f"comparing {len(tracked)} tracked timing(s) against "
        f"{baseline_path}"
    )
    if incomparable:
        print(
            "baseline recorded in a different environment (not "
            "compared): " + ", ".join(sorted(incomparable))
        )
    for name in tracked:
        base = float(baseline[name]["wall_s"])
        cur = float(current[name]["wall_s"])
        delta = cur - base
        flag = "REGRESSED" if any(r[0] == name for r in regressions) else "ok"
        print(
            f"  {name:<44s} {base:9.3f}s -> {cur:9.3f}s "
            f"({delta:+.3f}s) {flag}"
        )
    if new:
        print(f"new (untracked) names: {', '.join(new)}")
    if missing:
        print(f"not re-measured this run: {', '.join(missing)}")
    counter_findings, pre_schema = compare_counters(baseline, current)
    if pre_schema:
        print(
            "baseline predates the metrics schema (counters not "
            "compared): " + ", ".join(pre_schema)
        )
    for name, counter, base, cur, rule in counter_findings:
        print(
            f"  {name}: {rule} ({counter}: {base:g} -> {cur:g}) "
            "EFFICIENCY REGRESSED"
        )
    if regressions or counter_findings:
        if regressions:
            print(
                f"{len(regressions)} timing(s) regressed more than "
                f"{args.threshold:.0%} (+{args.min_seconds}s floor)",
                file=sys.stderr,
            )
        if counter_findings:
            print(
                f"{len(counter_findings)} efficiency counter(s) "
                "regressed",
                file=sys.stderr,
            )
        return 1
    print("no tracked timing regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
