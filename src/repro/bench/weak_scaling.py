"""Weak-scaling problem sizing, grid selection, and large-scale sweeps.

The paper weak-scales: memory per node stays constant, so matrix sides
grow with ``sqrt(nodes)`` and 3-tensor sides with ``cbrt(nodes)``
(Section 7.1). Grid helpers pick the processor organizations each
algorithm family expects; imperfect factorizations (non-square,
non-cube node counts) are deliberately kept — their imbalance is part
of the measured behaviour.

:func:`matmul_weak_scaling` extends the paper's 1–256-node axis to 512
nodes (1024 processors) — a sweep that was impractical on the seed's
per-context interpreter and is routine on the batched executor.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import OutOfMemoryError

#: One plotted point of a figure-style table.
Row = Dict[str, object]


def figure_row(system: str, nodes: int, value: Optional[float], unit: str,
               note: str = "") -> Row:
    return {
        "system": system,
        "nodes": nodes,
        "value": value,
        "unit": unit,
        "note": note,
    }


def run_point(system: str, nodes: int, unit: str,
              thunk: Callable[[], float]) -> Row:
    """Evaluate one sweep point; OOM becomes a ``note="OOM"`` row."""
    try:
        return figure_row(system, nodes, thunk(), unit)
    except OutOfMemoryError:
        return figure_row(system, nodes, None, unit, note="OOM")


def weak_matrix_size(base_n: int, nodes: int, multiple: int = 64) -> int:
    """Matrix side at a node count, keeping per-node memory constant."""
    n = base_n * math.sqrt(nodes)
    return max(multiple, int(round(n / multiple)) * multiple)


def weak_cube_side(base_n: int, nodes: int, multiple: int = 8) -> int:
    """3-tensor side at a node count, keeping per-node memory constant."""
    n = base_n * nodes ** (1.0 / 3.0)
    return max(multiple, int(round(n / multiple)) * multiple)


def square_grid(p: int) -> Tuple[int, int]:
    """Most-square 2-D factorization of ``p`` (gx >= gy)."""
    gy = int(math.isqrt(p))
    while p % gy != 0:
        gy -= 1
    return p // gy, gy


def cube_grid(p: int) -> Tuple[int, int, int]:
    """The processor cube Johnson's algorithm targets: side ``round(p^(1/3))``.

    For non-cube processor counts the grid over- or under-decomposes
    (idle processors or doubled-up grid points), reproducing the paper's
    observed degradation on non-cubes.
    """
    g = max(1, round(p ** (1.0 / 3.0)))
    return g, g, g


def factor3(p: int) -> Tuple[int, int, int]:
    """Most-balanced 3-way factorization of ``p`` (gx >= gy >= gz).

    Used by algorithms that accept any 3-D grid (e.g. Ballard et al.'s
    MTTKRP); unlike :func:`cube_grid` it always uses every processor.
    """
    best = (p, 1, 1)
    best_spread = p
    for gz in range(1, int(round(p ** (1.0 / 3.0))) + 1):
        if p % gz != 0:
            continue
        rest = p // gz
        gy = int(math.isqrt(rest))
        while rest % gy != 0:
            gy -= 1
        gx = rest // gy
        spread = max(gx, gy, gz) / min(gx, gy, gz)
        if spread < best_spread:
            best_spread = spread
            best = tuple(sorted((gx, gy, gz), reverse=True))
    return best


#: The extended weak-scaling axis: the paper's 1..256 plus 512 nodes.
EXTENDED_NODE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]

#: The orbit-compressed executor's axis, out to 65,536 nodes (131,072
#: processors — ``python -m repro.bench weak65536``); the phase-replay
#: fast paths make the top counts simulable at all. ``weak4096`` runs
#: the prefix up to 4096.
EXTREME_NODE_COUNTS = EXTENDED_NODE_COUNTS + [
    1024, 2048, 4096, 8192, 16384, 32768, 65536,
]


def matmul_weak_scaling(
    node_counts: Optional[Sequence[int]] = None,
    base_n: int = 8192,
    algorithms: Sequence[str] = ("cannon", "summa", "johnson"),
    gpu: bool = False,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Weak-scale GEMM out to 512 nodes (Figure 15's axis, extended).

    Returns figure-style rows ``{"system", "nodes", "value", "unit",
    "note"}`` with GFLOP/s per node; OOM configurations report ``value
    None`` and ``note "OOM"``. Simulations run through the plan/trace
    cache, so repeating a sweep (or sharing configurations with the
    Figure 15 generators) is free. ``jobs > 1`` distributes the node
    counts over forked worker processes (:mod:`repro.bench.parallel`),
    merging their cache deltas back into this process.
    """
    node_counts = list(node_counts or EXTENDED_NODE_COUNTS)
    if jobs > 1 and len(node_counts) * len(algorithms) > 1:
        from repro.bench.parallel import run_points

        # One point per (node count, algorithm): the largest node counts
        # dominate the sweep, so splitting them by algorithm keeps every
        # worker busy instead of serializing the whole top count in one.
        return run_points(
            "matmul_weak_scaling",
            [
                {
                    "node_counts": [n],
                    "base_n": base_n,
                    "algorithms": (algo,),
                    "gpu": gpu,
                }
                for n in node_counts
                for algo in algorithms
            ],
            jobs,
            costs=[n for n in node_counts for _ in algorithms],
        )
    # Imported here: the algorithms pull in the full compilation
    # pipeline, which this sizing module should not load eagerly.
    from repro.algorithms.matmul import cannon, johnson, summa
    from repro.bench.cache import SIM_CACHE
    from repro.machine.cluster import Cluster, MemoryKind
    from repro.machine.grid import Grid
    from repro.machine.machine import Machine
    from repro.sim.params import LASSEN

    builders = {"cannon": cannon, "summa": summa, "johnson": johnson}
    unknown = set(algorithms) - set(builders)
    if unknown:
        raise ValueError(f"unknown weak-scaling algorithms {sorted(unknown)}")
    memory = MemoryKind.GPU_FB if gpu else MemoryKind.SYSTEM_MEM
    rows: List[Row] = []
    for nodes in node_counts:
        cluster = (
            Cluster.gpu_cluster(nodes) if gpu else Cluster.cpu_cluster(nodes)
        )
        p = cluster.num_processors
        n = weak_matrix_size(base_n, nodes)
        for name in algorithms:
            if name == "johnson":
                machine = Machine(cluster, Grid(*cube_grid(p)))
            else:
                machine = Machine(cluster, Grid(*square_grid(p)))

            def point(build=builders[name], machine=machine):
                kern = build(machine, n, memory=memory)
                return SIM_CACHE.simulate(kern, LASSEN).gflops_per_node

            rows.append(run_point(name, nodes, "GFLOP/s/node", point))
    return rows


def grid_25d(p: int, max_c: int = 8) -> Tuple[int, int, int]:
    """The largest ``q x q x c`` grid (c | q, q*q*c <= p) for 2.5-D.

    Prefers replication (larger c) when it does not shrink the used
    processor count — extra memory is spent to reduce communication on
    non-square machines, Solomonik's interpolation knob.
    """
    best = (1, 1, 1)
    best_key = (1, 1)
    for c in (1, 2, 4, 8):
        if c > max_c:
            continue
        q = int(math.isqrt(p // c)) if p >= c else 0
        while q > 0 and (q * q * c > p or q % c != 0):
            q -= 1
        if q == 0:
            continue
        key = (q * q * c, c)
        if key > best_key:
            best_key = key
            best = (q, q, c)
    return best
