"""Weak-scaling problem sizing and machine-grid selection.

The paper weak-scales: memory per node stays constant, so matrix sides
grow with ``sqrt(nodes)`` and 3-tensor sides with ``cbrt(nodes)``
(Section 7.1). Grid helpers pick the processor organizations each
algorithm family expects; imperfect factorizations (non-square,
non-cube node counts) are deliberately kept — their imbalance is part
of the measured behaviour.
"""

from __future__ import annotations

import math
from typing import Tuple


def weak_matrix_size(base_n: int, nodes: int, multiple: int = 64) -> int:
    """Matrix side at a node count, keeping per-node memory constant."""
    n = base_n * math.sqrt(nodes)
    return max(multiple, int(round(n / multiple)) * multiple)


def weak_cube_side(base_n: int, nodes: int, multiple: int = 8) -> int:
    """3-tensor side at a node count, keeping per-node memory constant."""
    n = base_n * nodes ** (1.0 / 3.0)
    return max(multiple, int(round(n / multiple)) * multiple)


def square_grid(p: int) -> Tuple[int, int]:
    """Most-square 2-D factorization of ``p`` (gx >= gy)."""
    gy = int(math.isqrt(p))
    while p % gy != 0:
        gy -= 1
    return p // gy, gy


def cube_grid(p: int) -> Tuple[int, int, int]:
    """The processor cube Johnson's algorithm targets: side ``round(p^(1/3))``.

    For non-cube processor counts the grid over- or under-decomposes
    (idle processors or doubled-up grid points), reproducing the paper's
    observed degradation on non-cubes.
    """
    g = max(1, round(p ** (1.0 / 3.0)))
    return g, g, g


def factor3(p: int) -> Tuple[int, int, int]:
    """Most-balanced 3-way factorization of ``p`` (gx >= gy >= gz).

    Used by algorithms that accept any 3-D grid (e.g. Ballard et al.'s
    MTTKRP); unlike :func:`cube_grid` it always uses every processor.
    """
    best = (p, 1, 1)
    best_spread = p
    for gz in range(1, int(round(p ** (1.0 / 3.0))) + 1):
        if p % gz != 0:
            continue
        rest = p // gz
        gy = int(math.isqrt(rest))
        while rest % gy != 0:
            gy -= 1
        gx = rest // gy
        spread = max(gx, gy, gz) / min(gx, gy, gz)
        if spread < best_spread:
            best_spread = spread
            best = tuple(sorted((gx, gy, gz), reverse=True))
    return best


def grid_25d(p: int, max_c: int = 8) -> Tuple[int, int, int]:
    """The largest ``q x q x c`` grid (c | q, q*q*c <= p) for 2.5-D.

    Prefers replication (larger c) when it does not shrink the used
    processor count — extra memory is spent to reduce communication on
    non-square machines, Solomonik's interpolation knob.
    """
    best = (1, 1, 1)
    best_key = (1, 1)
    for c in (1, 2, 4, 8):
        if c > max_c:
            continue
        q = int(math.isqrt(p // c)) if p >= c else 0
        while q > 0 and (q * q * c > p or q % c != 0):
            q -= 1
        if q == 0:
            continue
        key = (q * q * c, c)
        if key > best_key:
            best_key = key
            best = (q, q, c)
    return best
