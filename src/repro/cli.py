"""Shared command-line plumbing for every ``python -m repro.*`` tool.

Before this module each CLI (``repro.tune``, ``repro.bench``,
``repro.faults``, ``repro.analyze``, ``repro.obs``) declared its own
copies of the same flags and printed the metrics registry with its own
loop. The shared pieces now live here:

* :func:`add_common_args` — the ``--ledger/--jobs/--seed/--json``
  group (each flag opt-in per CLI, defaults preserved);
* :func:`add_cluster_args` / :func:`build_cluster` — the
  ``--nodes/--size/--gpu`` workload-cluster group;
* :func:`make_ledger` — the one ``--ledger`` path rule: a directory
  (or a new path without a ``.json`` suffix) opens the *sharded*
  ledger the serving daemon uses, a ``.json`` file the classic
  single-file ledger;
* :func:`print_metrics` / :func:`emit` — human metrics printing and
  the ``--json`` machine-readable alternative. Every CLI supports
  ``--json``; the payload always carries the metrics snapshot under
  ``"metrics"``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def add_common_args(
    parser: argparse.ArgumentParser,
    *,
    ledger: bool = True,
    jobs: bool = True,
    seed: bool = True,
    timeout: bool = False,
    json_out: bool = True,
    jobs_default: int = 1,
    seed_default: int = 0,
) -> argparse.ArgumentParser:
    """Attach the shared ``--ledger/--jobs/--seed/--json`` group."""
    if ledger:
        parser.add_argument(
            "--ledger",
            default=None,
            help="tuning-ledger path: a directory (or extensionless "
            "new path) is sharded, a .json file is single-file; "
            "re-tunes are incremental either way",
        )
    if jobs:
        parser.add_argument(
            "--jobs",
            type=int,
            default=jobs_default,
            help="parallel fork-pool workers",
        )
    if seed:
        parser.add_argument(
            "--seed",
            type=int,
            default=seed_default,
            help="deterministic search seed",
        )
    if timeout:
        parser.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-candidate wall-clock budget in seconds; a "
            "candidate that exceeds it becomes an oracle error "
            "instead of hanging the run",
        )
    if json_out:
        parser.add_argument(
            "--json",
            action="store_true",
            help="emit one machine-readable JSON summary on stdout "
            "instead of the human report",
        )
    return parser


def add_cluster_args(
    parser: argparse.ArgumentParser,
    *,
    nodes_default: int = 16,
    system_mem: bool = False,
) -> argparse.ArgumentParser:
    """Attach the shared ``--nodes/--size/--gpu`` cluster group."""
    parser.add_argument(
        "--nodes",
        type=int,
        default=nodes_default,
        help="cluster node count",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="problem side (default: the paper's weak-scaled size)",
    )
    parser.add_argument(
        "--gpu", action="store_true", help="Lassen GPU nodes (4 V100s)"
    )
    if system_mem:
        parser.add_argument(
            "--system-mem-gib",
            type=int,
            default=None,
            help="override CPU node memory (smaller values force the "
            "tuner off replication-heavy schedules)",
        )
    return parser


def build_cluster(args):
    """The cluster the shared ``--nodes/--gpu`` flags describe."""
    from repro.machine.cluster import Cluster

    if getattr(args, "gpu", False):
        return Cluster.gpu_cluster(args.nodes)
    system_mem = getattr(args, "system_mem_gib", None)
    if system_mem is not None:
        return Cluster.cpu_cluster(args.nodes, system_mem_gib=system_mem)
    return Cluster.cpu_cluster(args.nodes)


def make_ledger(args):
    """Open the ledger named by ``--ledger`` (None when unset)."""
    from repro.serve.shard import open_ledger

    return open_ledger(getattr(args, "ledger", None))


def metrics_snapshot() -> Dict:
    from repro.obs.metrics import METRICS

    return METRICS.snapshot()


def print_metrics(stream=None):
    """The registry snapshot, printed after a run's own summary."""
    stream = stream or sys.stdout
    print("== Metrics ==", file=stream)
    for name, value in metrics_snapshot().items():
        print(f"  {name} = {value}", file=stream)


def emit(args, payload: Dict) -> bool:
    """Under ``--json``, print ``payload`` (plus the metrics snapshot)
    as one JSON object and return True; otherwise return False so the
    caller prints its human report (typically ending with
    :func:`print_metrics`)."""
    if not getattr(args, "json", False):
        return False
    body = dict(payload)
    body.setdefault("metrics", metrics_snapshot())
    print(json.dumps(body, sort_keys=True, indent=1))
    return True


def ledger_failed(ledger, stream=None) -> bool:
    """Shared exit-path check: report unwritable ledgers loudly."""
    stream = stream or sys.stderr
    if ledger is not None and ledger.save_failures:
        print(
            f"tuning ledger could not be written to {ledger.path}",
            file=stream,
        )
        return True
    return False


def workload_sizes(assignment) -> Dict[str, tuple]:
    """Tensor name -> shape, for run banners and JSON payloads."""
    return {t.name: t.shape for t in assignment.tensors()}


def json_default(value):
    """Fallback serializer for payloads carrying numpy scalars."""
    try:
        return value.item()
    except AttributeError:
        return str(value)
