"""Lowering concrete index notation to a distributed runtime plan.

The plan is this reproduction's analogue of the generated Legion program
(Section 6.2): distributed loops become index task launches, ``communicate``
tags become partition + copy points, and the innermost dense loops become
leaf operations (optionally substituted by optimized kernels).
"""

from repro.codegen.plan import (
    DistributedPlan,
    LaunchNode,
    LeafNode,
    PlanNode,
    SeqNode,
)
from repro.codegen.lower import lower_to_plan

__all__ = [
    "DistributedPlan",
    "LaunchNode",
    "LeafNode",
    "PlanNode",
    "SeqNode",
    "lower_to_plan",
]
