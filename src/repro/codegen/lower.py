"""Lowering scheduled concrete index notation to a distributed plan.

Follows Section 6.2 of the paper:

* foralls tagged ``distribute`` become index task launches; directly
  nested distributed loops flatten into one multi-dimensional launch;
* each tensor tagged ``communicate`` at a loop yields a partition/fetch
  point at that loop (tensors with no tag default to the innermost loop,
  the paper's naive completion);
* the remaining innermost dense loops fold into a single leaf block whose
  bounds are derived from the provenance graph.
"""

from __future__ import annotations

from typing import Dict, List

from repro.codegen.plan import (
    DistributedPlan,
    LaunchNode,
    LeafNode,
    PlanNode,
    SeqNode,
)
from repro.ir.concrete import Assign, Forall, Sequence as SeqStmt, Stmt
from repro.ir.expr import Access
from repro.ir.tensor import TensorVar
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule
from repro.util.errors import LoweringError


def lower_to_plan(schedule: Schedule, machine: Machine) -> DistributedPlan:
    """Compile a scheduled assignment into an executable plan."""
    assignment = schedule.assignment
    for tensor in assignment.tensors():
        tensor.format.check(tensor.ndim, machine)

    chain = schedule.stmt.foralls()
    leaf_stmt = chain[-1].body if chain else schedule.stmt
    leaf_count = _leaf_block_size(schedule, chain)
    leaf_foralls = chain[len(chain) - leaf_count :]
    outer_foralls = chain[: len(chain) - leaf_count]

    assigns = _leaf_assigns(leaf_stmt)
    output = assignment.lhs.tensor.name
    explicit = set(schedule.communicated_at())

    kernel = None
    parallel = False
    for forall in leaf_foralls:
        if forall.substituted:
            kernel = forall.substituted
        parallel = parallel or forall.parallelized

    leaf = LeafNode(
        loop_vars=[f.var for f in leaf_foralls],
        assigns=assigns,
        kernel=kernel,
        parallel=parallel,
    )
    for tensor in assignment.tensors():
        if tensor.name not in explicit:
            leaf.comm.append(tensor.name)
            if tensor.name == output:
                leaf.flush.append(tensor.name)

    root = _build_tree(outer_foralls, leaf, machine, output, schedule.graph)

    accesses: Dict[str, List[Access]] = {}
    tensors: Dict[str, TensorVar] = {}
    for assign in assigns:
        for access in [assign.lhs] + list(assign.rhs.accesses()):
            accesses.setdefault(access.tensor.name, []).append(access)
            tensors[access.tensor.name] = access.tensor

    return DistributedPlan(
        assignment=assignment,
        machine=machine,
        graph=schedule.graph,
        root=root,
        accesses=accesses,
        tensors=tensors,
        output=output,
    )


def _leaf_block_size(schedule: Schedule, chain: List[Forall]) -> int:
    """How many innermost loops fold into the leaf block.

    A loop folds if it is not distributed, is not a communication point,
    and is not a rotation result (rotation results need concrete values
    for exact slices). A ``substitute`` tag forces at least its nest to be
    a leaf; conflicts raise.
    """
    count = 0
    for forall in reversed(chain):
        if forall.distributed or forall.communicated:
            break
        if schedule.graph.is_rotate_result(forall.var):
            break
        count += 1
    # A substituted nest must be entirely inside the leaf block.
    for depth, forall in enumerate(chain):
        if forall.substituted and len(chain) - depth > count:
            raise LoweringError(
                f"substitute at {forall.var} spans loops that cannot fold "
                f"into a leaf (distributed, communicated, or rotated below)"
            )
    return count


def _leaf_assigns(leaf_stmt: Stmt) -> List[Assign]:
    if isinstance(leaf_stmt, Assign):
        return [leaf_stmt]
    if isinstance(leaf_stmt, SeqStmt):
        assigns = []
        for stmt in leaf_stmt.stmts:
            if not isinstance(stmt, Assign):
                raise LoweringError(
                    f"unsupported leaf statement {type(stmt).__name__}"
                )
            assigns.append(stmt)
        return assigns
    raise LoweringError(f"unsupported leaf statement {type(leaf_stmt).__name__}")


def _build_tree(
    outer: List[Forall],
    leaf: LeafNode,
    machine: Machine,
    output: str,
    graph,
) -> PlanNode:
    """Build launch/seq nodes top-down, flattening nested distribution."""
    level_offsets = []
    offset = 0
    for grid in machine.levels:
        level_offsets.append(offset)
        offset += grid.dim
    next_dim = {lvl: 0 for lvl in range(len(machine.levels))}

    def attach_comm(node: PlanNode, forall: Forall):
        for name in forall.communicated:
            node.comm.append(name)
            if name == output:
                node.flush.append(name)

    def build(idx: int) -> PlanNode:
        if idx == len(outer):
            return leaf
        forall = outer[idx]
        if forall.distributed:
            launch = LaunchNode(
                vars=[], extents=[], machine_dims=[], body=leaf
            )
            while idx < len(outer) and outer[idx].distributed:
                f = outer[idx]
                level = f.machine_level
                if level >= len(machine.levels):
                    raise LoweringError(
                        f"distribute level {level} exceeds machine hierarchy "
                        f"of depth {len(machine.levels)}"
                    )
                grid = machine.levels[level]
                local = next_dim[level]
                if local >= grid.dim:
                    raise LoweringError(
                        f"too many distributed loops for machine level "
                        f"{level} ({grid!r})"
                    )
                dim = level_offsets[level] + local
                next_dim[level] += 1
                extent = graph.extent(f.var)
                if extent != machine.shape[dim]:
                    raise LoweringError(
                        f"distributed loop {f.var} has extent {extent} but "
                        f"maps onto machine dimension {dim} of extent "
                        f"{machine.shape[dim]}; divide the loop to match"
                    )
                launch.vars.append(f.var)
                launch.extents.append(extent)
                launch.machine_dims.append(dim)
                attach_comm(launch, f)
                idx += 1
            launch.body = build(idx)
            return launch
        node = SeqNode(
            var=forall.var, extent=graph.extent(forall.var), body=leaf
        )
        attach_comm(node, forall)
        node.body = build(idx + 1)
        return node

    return build(0)
