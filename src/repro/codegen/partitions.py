"""Deriving Legion-style partitions from a compiled plan.

Section 6.2 of the paper: "Legion partitions are created for each tensor
denoted to communicate under a loop. The bounds of the hyper-rectangles
to use in the partitioning API are derived using a standard bounds
analysis procedure using the extents of index variables."

The runtime resolves rectangles lazily during execution; this module
exposes the same information eagerly, as explicit partition objects — a
coloring of each communicated tensor by launch point (and sequential
iteration, for chunked communication). Useful for inspecting what a
schedule communicates, validating disjointness/coverage, and for tests
that reason about partitions directly.
"""

from __future__ import annotations

from collections import ChainMap
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.codegen.plan import (
    DistributedPlan,
    LaunchNode,
    LeafNode,
    PlanNode,
    SeqNode,
)
from repro.ir.expr import IndexVar
from repro.util.geometry import Interval, Rect, bounding_rect


@dataclass
class Partition:
    """A coloring of one tensor at one communication point.

    ``colors`` maps a color — the values of the distributed loop
    variables plus any sequential loop the communication is nested
    under — to the hyper-rectangle of the tensor that color's task
    iteration touches.
    """

    tensor: str
    at_var: Optional[str]
    color_vars: List[str]
    colors: Dict[Tuple[int, ...], Rect] = field(default_factory=dict)

    @property
    def num_colors(self) -> int:
        return len(self.colors)

    def is_disjoint(self) -> bool:
        """Whether no two colors overlap (Legion's disjoint partitions).

        Output partitions are typically disjoint; input partitions of
        broadcast-style schedules are aliased (overlapping), which is
        exactly why Legion's multiple-partition support matters.
        """
        rects = [r for r in self.colors.values() if not r.is_empty]
        for idx, a in enumerate(rects):
            for b in rects[idx + 1 :]:
                if a.overlaps(b):
                    return False
        return True

    def covers(self, shape: Tuple[int, ...]) -> bool:
        """Whether the union of colors covers the whole tensor.

        Checked volumetrically for disjoint partitions; aliased
        partitions may cover with overlap.
        """
        total = sum(r.volume for r in self.colors.values())
        full = Rect.full(shape).volume
        if self.is_disjoint():
            return total == full
        return total >= full

    def __repr__(self) -> str:
        return (
            f"Partition({self.tensor} at {self.at_var}: "
            f"{self.num_colors} colors)"
        )


def derive_partitions(plan: DistributedPlan) -> List[Partition]:
    """Compute the partitions a plan's communication points induce."""
    partitions: List[Partition] = []
    full_env: Dict[IndexVar, Interval] = {}

    def collect(node: PlanNode):
        if isinstance(node, LaunchNode):
            for var, extent in zip(node.vars, node.extents):
                full_env[var] = Interval.extent(extent)
            collect(node.body)
        elif isinstance(node, SeqNode):
            full_env[node.var] = Interval.extent(node.extent)
            collect(node.body)
        elif isinstance(node, LeafNode):
            for var in node.loop_vars:
                full_env[var] = Interval.extent(plan.graph.extent(var))

    collect(plan.root)

    def rect_for(name: str, env: Dict[IndexVar, Interval]) -> Optional[Rect]:
        chained = ChainMap(env, full_env)
        rects = []
        for access in plan.accesses[name]:
            if access.tensor.ndim == 0:
                rects.append(Rect(()))
                continue
            rects.append(
                Rect(
                    tuple(
                        plan.graph.value_of(v, chained) for v in access.indices
                    )
                )
            )
        return bounding_rect(rects)

    def walk(node: PlanNode, launch_vars: List[Tuple[IndexVar, int]]):
        if isinstance(node, LaunchNode):
            vars_here = launch_vars + list(zip(node.vars, node.extents))
            for name in node.comm:
                partitions.append(
                    _partition(name, node.vars[-1], vars_here, rect_for)
                )
            walk(node.body, vars_here)
        elif isinstance(node, SeqNode):
            vars_here = launch_vars + [(node.var, node.extent)]
            for name in node.comm:
                partitions.append(
                    _partition(name, node.var, vars_here, rect_for)
                )
            walk(node.body, launch_vars + [(node.var, node.extent)])
        elif isinstance(node, LeafNode):
            for name in node.comm:
                partitions.append(
                    _partition(name, None, launch_vars, rect_for)
                )

    walk(plan.root, [])
    return partitions


def _partition(name, at_var, color_vars, rect_for) -> Partition:
    partition = Partition(
        tensor=name,
        at_var=at_var.name if at_var is not None else None,
        color_vars=[v.name for v, _ in color_vars],
    )
    extents = [extent for _, extent in color_vars]
    vars_ = [v for v, _ in color_vars]
    for point in product(*(range(e) for e in extents)):
        env = {v: Interval.point(p) for v, p in zip(vars_, point)}
        rect = rect_for(name, env)
        if rect is not None and not rect.is_empty:
            partition.colors[point] = rect
    return partition


def partition_report(plan: DistributedPlan) -> str:
    """Readable summary of every partition a plan creates."""
    lines = []
    for part in derive_partitions(plan):
        kind = "disjoint" if part.is_disjoint() else "aliased"
        at = f"at {part.at_var}" if part.at_var else "at leaf"
        lines.append(
            f"{part.tensor:<10s} {at:<10s} {part.num_colors:4d} colors "
            f"({kind}, over {', '.join(part.color_vars)})"
        )
    return "\n".join(lines)
