"""Lowering tensor distribution notation to placement statements.

Section 5.3 of the paper: placing a tensor into the distribution a
format describes is itself compiled — the notation ``T X -> Y M``
translates mechanically into a concrete index notation statement that
iterates the tensor in the distributed orientation:

1. one index variable per name in ``X ∪ Y``;
2. a loop nest accessing ``T``, with loops for fixed machine dimensions
   restricted to their value;
3. machine-dimension loops reordered outermost;
4. each partitioned tensor dimension ``divide``-d by its machine
   dimension, the outer variable ``distribute``-d;
5. ``T`` communicated beneath the distributed variables.

The paper's example: ``T xy -> x M`` lowers to
``∀xo ∀xi ∀y T(x, y) s.t. divide(x, xo, xi, gx), distribute(xo),
communicate(T, xo)``.

The runtime places home instances analytically (it does not need to run
these statements), but the placement statement is the *specification*
of that layout: executing it as a kernel materializes the tensor in its
distributed orientation, and it is what a transfer between formats
compiles into (see :mod:`repro.core.transfer`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.formats.distribution import DimName
from repro.ir.concrete import Stmt
from repro.ir.expr import IndexVar
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule
from repro.util.errors import DistributionError


def placement_schedule(
    tensor: TensorVar,
    machine: Machine,
    level: int = 0,
) -> Schedule:
    """Build the placement statement for ``tensor``'s distribution.

    Returns a :class:`Schedule` over the identity statement
    ``T'(...) = T(...)`` (where ``T'`` shares ``T``'s format) whose loop
    structure is the Section 5.3 translation. Compiling and executing it
    moves the tensor into its described layout.
    """
    fmt = tensor.format
    if not fmt.distributions:
        raise DistributionError(
            f"tensor {tensor.name} has no distribution to place into"
        )
    if level >= len(fmt.distributions):
        raise DistributionError(
            f"tensor {tensor.name} has no distribution level {level}"
        )
    dist = fmt.distributions[level]
    grid = machine.levels[level]
    dist.check_machine(grid.shape)

    # Step 1: a variable per name in X ∪ Y.
    tensor_vars = [IndexVar(f"p_{name}") for name in dist.tensor_dims]
    placed = TensorVar(f"{tensor.name}__placed", tensor.shape, tensor.format)
    stmt = Assignment(placed[tuple(tensor_vars)], tensor[tuple(tensor_vars)])
    sched = Schedule(stmt)

    # Steps 3-4: reorder partitioned dimensions outermost, divide each
    # by its machine dimension, distribute the outer halves.
    partitioned: List[Tuple[IndexVar, int]] = []
    for mdim_idx, mdim in enumerate(dist.machine_dims):
        if isinstance(mdim, DimName):
            tdim = dist.tensor_dims.index(mdim.name)
            partitioned.append((tensor_vars[tdim], grid.shape[mdim_idx]))
    if partitioned:
        order = [v for v, _ in partitioned] + [
            v for v in tensor_vars if v not in {p for p, _ in partitioned}
        ]
        sched.reorder(order)
        outers, locals_ = [], []
        for var, extent in partitioned:
            outer = IndexVar(f"{var.name}o")
            inner = IndexVar(f"{var.name}i")
            sched.divide(var, outer, inner, extent)
            outers.append(outer)
            locals_.append(inner)
        sched.reorder(outers + locals_)
        sched.distribute(outers, level=level)
        # Step 5: communicate the source beneath the distributed loops.
        sched.communicate(tensor, outers[-1])
    return sched


def placement_statement(tensor: TensorVar, machine: Machine) -> Stmt:
    """The concrete index notation of the placement (for inspection)."""
    return placement_schedule(tensor, machine).stmt


def describe_placement(tensor: TensorVar, machine: Machine) -> str:
    """Human-readable placement lowering, used in docs and tests.

    Renders the paper's Section 5.3 form for each distribution level.
    """
    fmt = tensor.format
    if not fmt.distributions:
        return f"{tensor.name}: undistributed (homed at the machine origin)"
    lines = []
    for level, dist in enumerate(fmt.distributions):
        sched = placement_schedule(tensor, machine, level=level)
        lines.append(
            f"level {level}: {tensor.name} {dist.notation()} -> "
        )
        lines.append(sched.pretty())
    return "\n".join(lines)
