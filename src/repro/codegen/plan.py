"""Distributed plan: the executable form of a compiled kernel.

A plan is a small tree of three node kinds:

* :class:`LaunchNode` — an index task launch over one or more distributed
  loop variables, mapped onto machine grid dimensions (Legion's index task
  launch; directly nested distributed loops are flattened into one
  multi-dimensional launch, Section 6.2).
* :class:`SeqNode` — a sequential loop inside a task (e.g. SUMMA's ``ko``),
  optionally a communication point for some tensors.
* :class:`LeafNode` — the innermost dense loop block, executed as one
  (possibly substituted) kernel over a hyper-rectangular slice.

Tensors communicated at a node are fetched when the node's iteration (or
task) begins; pending non-owned output writes are flushed (reduced to their
owners) when the iteration ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.concrete import Assign
from repro.ir.expr import Access, IndexVar
from repro.ir.provenance import VarGraph
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.machine import Machine


class PlanNode:
    """Base class of plan tree nodes."""

    comm: List[str]
    flush: List[str]

    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError


@dataclass
class LaunchNode(PlanNode):
    """An index task launch over distributed loop variables.

    ``machine_dims`` gives, per launched variable, the absolute machine
    grid dimension (index into ``machine.shape``) its iterations map onto.
    """

    vars: List[IndexVar]
    extents: List[int]
    machine_dims: List[int]
    body: PlanNode
    comm: List[str] = field(default_factory=list)
    flush: List[str] = field(default_factory=list)

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        dims = ", ".join(
            f"{v.name}:{e}->m{d}"
            for v, e, d in zip(self.vars, self.extents, self.machine_dims)
        )
        lines = [f"{pad}index_launch({dims})"]
        for t in self.comm:
            lines.append(f"{pad}  fetch {t} at task start")
        lines.append(self.body.pretty(indent + 2))
        for t in self.flush:
            lines.append(f"{pad}  flush {t} at task end")
        return "\n".join(lines)


@dataclass
class SeqNode(PlanNode):
    """A sequential loop, optionally a communication aggregation point."""

    var: IndexVar
    extent: int
    body: PlanNode
    comm: List[str] = field(default_factory=list)
    flush: List[str] = field(default_factory=list)

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        lines = [f"{pad}for {self.var.name} in 0..{self.extent}:"]
        for t in self.comm:
            lines.append(f"{pad}  fetch {t} chunk")
        lines.append(self.body.pretty(indent + 2))
        for t in self.flush:
            lines.append(f"{pad}  flush {t} chunk")
        return "\n".join(lines)


@dataclass
class LeafNode(PlanNode):
    """The innermost dense block: one kernel call over a slice.

    ``loop_vars`` are the loops folded into the block (they span their
    full, clipped ranges); ``assigns`` is usually a single statement but a
    leaf-level ``precompute`` produces a workspace producer followed by the
    consumer.
    """

    loop_vars: List[IndexVar]
    assigns: List[Assign]
    kernel: Optional[str] = None
    parallel: bool = False
    comm: List[str] = field(default_factory=list)
    flush: List[str] = field(default_factory=list)

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        lines = []
        for t in self.comm:
            lines.append(f"{pad}fetch {t} block")
        kernel = self.kernel or "loops"
        over = ", ".join(v.name for v in self.loop_vars) or "(point)"
        for a in self.assigns:
            op = "+=" if a.reduce else "="
            lines.append(
                f"{pad}leaf[{kernel}] over ({over}): {a.lhs!r} {op} {a.rhs!r}"
            )
        for t in self.flush:
            lines.append(f"{pad}flush {t} block")
        return "\n".join(lines)


@dataclass
class DistributedPlan:
    """A fully lowered kernel: plan tree plus the metadata the runtime
    needs to resolve rectangles and place tasks."""

    assignment: Assignment
    machine: Machine
    graph: VarGraph
    root: PlanNode
    # Tensor name -> the accesses that read/write it (rect resolution).
    accesses: Dict[str, List[Access]]
    tensors: Dict[str, TensorVar]
    output: str

    def pretty(self) -> str:
        """Readable pseudocode of the generated distributed program."""
        header = f"// {self.assignment!r} on {self.machine!r}"
        return header + "\n" + self.root.pretty()
