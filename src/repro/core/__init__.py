"""The public compiler API: compile schedules into executable kernels."""

from repro.core.kernel import Kernel, compile_kernel

__all__ = ["Kernel", "compile_kernel"]
