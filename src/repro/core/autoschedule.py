"""Automatic schedule and format selection (the paper's Section 9).

The paper names auto-scheduling as the natural next step: "With
automatic schedule and format selection, application developers could
independently achieve high performance." This module implements that
extension with a transparent heuristic in the spirit of the paper's own
manual schedules:

1. **Distribution choice.** Distribute the loops that index the
   *output* tensor (owner-computes: inputs are pulled toward a
   stationary output, Section 3.3). If the output has too few
   dimensions for the machine, reduction loops are also distributed
   (distributed reductions trade memory for parallelism).
2. **Format choice.** The output is tiled by the distributed loops;
   each input is tiled by the modes it shares with distributed loops
   and replicated over machine dimensions it does not touch — exactly
   the placement pattern of the paper's TTV/TTM/MTTKRP schedules.
3. **Communication.** Inputs indexed by every distributed loop are
   communicated at the innermost distributed variable (they are local);
   others at the same point, where the bounding analysis fetches their
   full per-task requirement once per task.
4. **Leaf.** Contractions with at least two dense loops substitute a
   GEMM leaf; element-wise kernels parallelize the innermost local
   loop.

The result is returned as a regular :class:`Schedule` plus per-tensor
formats, so a performance engineer can inspect and override it — the
paper's "productivity tool" split between application developers and
performance engineers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.formats.distribution import (
    Broadcast,
    DimName,
    Distribution,
)
from repro.formats.format import Format
from repro.ir.expr import IndexVar
from repro.ir.tensor import Assignment
from repro.machine.cluster import MemoryKind, ProcessorKind
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule

_NAMES = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class AutoScheduleResult:
    """An automatically derived schedule and the formats it assumes."""

    schedule: Schedule
    formats: Dict[str, Format]
    distributed_vars: List[IndexVar]

    def describe(self) -> str:
        lines = ["auto-schedule:"]
        for name, fmt in self.formats.items():
            lines.append(f"  format {name}: {fmt.notation()}")
        lines.append(
            "  distribute: "
            + ", ".join(v.name for v in self.distributed_vars)
        )
        return "\n".join(lines)


def choose_distributed_vars(
    assignment: Assignment, machine_dim: int
) -> List[IndexVar]:
    """Pick which loops to distribute (step 1 of the heuristic)."""
    candidates = list(assignment.free_vars)
    if len(candidates) < machine_dim:
        candidates += [
            v for v in assignment.reduction_vars if v not in candidates
        ]
    return candidates[:machine_dim]


def derive_formats(
    assignment: Assignment,
    distributed: List[IndexVar],
    machine: Machine,
    memory: MemoryKind,
) -> Dict[str, Format]:
    """Derive per-tensor distributions from the distribution choice.

    A tensor mode indexed by the d-th distributed loop is partitioned by
    machine dimension d; machine dimensions whose loop does not index
    the tensor broadcast it (replication), matching the paper's
    higher-order kernel formats.
    """
    formats: Dict[str, Format] = {}
    for access in [assignment.lhs] + list(assignment.rhs.accesses()):
        tensor = access.tensor
        if tensor.name in formats or tensor.ndim == 0:
            if tensor.ndim == 0:
                formats.setdefault(tensor.name, Format(memory=memory))
            continue
        mode_names = [_NAMES[d] for d in range(tensor.ndim)]
        machine_dims: List = []
        grid_dim = machine.levels[0].dim
        for mdim in range(grid_dim):
            if mdim < len(distributed) and distributed[mdim] in access.indices:
                mode = access.indices.index(distributed[mdim])
                machine_dims.append(DimName(mode_names[mode]))
            else:
                # Machine dimensions this tensor does not follow hold
                # replicas (including dims with no distributed loop).
                machine_dims.append(Broadcast())
        dist = Distribution(mode_names, machine_dims)
        formats[tensor.name] = Format(dist, memory=memory)
    return formats


def auto_schedule(
    assignment: Assignment,
    machine: Machine,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    apply_formats: bool = True,
) -> AutoScheduleResult:
    """Derive a distribution schedule and formats automatically.

    With ``apply_formats=True`` (default) the tensors' formats are
    replaced by the derived ones; pass False to keep existing formats
    and let the runtime redistribute.
    """
    grid = machine.levels[0]
    distributed = choose_distributed_vars(assignment, grid.dim)
    if apply_formats:
        formats = derive_formats(assignment, distributed, machine, memory)
        for tensor in assignment.tensors():
            if tensor.name in formats:
                tensor.format = formats[tensor.name]
    else:
        formats = {
            t.name: t.format for t in assignment.tensors()
        }

    sched = Schedule(assignment)
    # Move the distributed loops outermost (they may be reduction vars
    # interleaved with free vars).
    order = distributed + [
        v for v in assignment.all_vars if v not in distributed
    ]
    sched.reorder(order)
    outers, inners = [], []
    for var, extent in zip(distributed, grid.shape):
        outer = IndexVar(f"{var.name}_o")
        inner = IndexVar(f"{var.name}_i")
        sched.divide(var, outer, inner, extent)
        outers.append(outer)
        inners.append(inner)
    sched.reorder(outers + inners)
    sched.distribute(outers)
    for tensor in assignment.tensors():
        sched.communicate(tensor, outers[-1])

    # Leaf: GEMM for contractions, parallel loops for element-wise.
    local_loops = [v for v in sched.loop_vars() if v not in outers]
    if assignment.reduction_vars and len(local_loops) >= 2:
        kernel = (
            "cublas_gemm"
            if machine.cluster.processor_kind is ProcessorKind.GPU
            else "blas_gemm"
        )
        sched.substitute(local_loops, kernel)
    elif local_loops:
        sched.parallelize(local_loops[0])
    return AutoScheduleResult(
        schedule=sched, formats=formats, distributed_vars=outers
    )
