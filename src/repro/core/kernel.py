"""Compiled kernels: the user-facing result of the DISTAL pipeline.

``compile_kernel(schedule, machine)`` runs the full pipeline of Figure 3 —
scheduled concrete index notation, distributed lowering, partition/bounds
derivation — and returns a :class:`Kernel` that can

* ``execute(inputs)`` — run functionally on real numpy data over the
  simulated distributed machine (and optionally verify against the
  ``numpy.einsum`` oracle), and
* ``simulate(params)`` — run symbolically at paper scale, producing a
  :class:`~repro.sim.report.SimReport` with time, rates and traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.codegen.lower import lower_to_plan
from repro.codegen.plan import DistributedPlan
from repro.ir.tensor import Assignment, reference_einsum
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.machine import Machine
from repro.runtime.executor import ExecutionResult, Executor
from repro.scheduling.schedule import Schedule
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN, MachineParams
from repro.sim.report import SimReport


class Kernel:
    """A compiled distributed tensor algebra kernel."""

    def __init__(self, plan: DistributedPlan):
        self.plan = plan

    @property
    def assignment(self) -> Assignment:
        return self.plan.assignment

    @property
    def machine(self) -> Machine:
        return self.plan.machine

    def pretty(self) -> str:
        """Readable pseudocode of the generated distributed program."""
        return self.plan.pretty()

    # ------------------------------------------------------------------
    # Functional execution.
    # ------------------------------------------------------------------

    def execute(
        self,
        inputs: Dict[str, np.ndarray],
        verify: bool = False,
        check_capacity: bool = False,
    ) -> ExecutionResult:
        """Run the kernel on real data over the simulated machine.

        With ``verify=True`` the distributed result is checked against the
        ``numpy.einsum`` oracle; a mismatch raises ``AssertionError``.
        """
        executor = Executor(
            self.plan, materialize=True, check_capacity=check_capacity
        )
        result = executor.run(inputs)
        if verify:
            expected = reference_einsum(self.assignment, inputs)
            actual = result.outputs[self.plan.output]
            np.testing.assert_allclose(
                actual, expected, rtol=1e-10, atol=1e-10,
                err_msg=f"kernel output diverges from einsum oracle for "
                f"{self.assignment!r}",
            )
        return result

    # ------------------------------------------------------------------
    # Symbolic execution + performance simulation.
    # ------------------------------------------------------------------

    def trace(
        self,
        check_capacity: bool = True,
        mode: str = "batched",
        sanitize: bool = False,
        fault_plan=None,
    ) -> ExecutionResult:
        """Symbolic execution: the full phase trace, no data movement.

        ``mode`` selects the interpreter: ``"scalar"`` (the per-context
        reference), ``"batched"`` (vectorized, trace-identical to
        scalar) or ``"orbit"`` (orbit-compressed: class-representative
        copies with multiplicities; identical simulated times, but the
        per-copy record is compressed). Trace analyses default to the
        full ``"batched"`` record. ``sanitize=True`` replays the trace
        through the analyzer's independent consistency checks and
        raises :class:`~repro.util.errors.TraceSanityError` on any
        finding. ``fault_plan`` (a
        :class:`~repro.faults.events.FaultPlan`) arms fault injection:
        a planned node kill raises
        :class:`~repro.util.errors.NodeFailure` at the exact phase
        boundary, identically in every mode.
        """
        if mode == "orbit":
            from repro.runtime.orbit import OrbitExecutor

            executor = OrbitExecutor(
                self.plan, check_capacity=check_capacity,
                sanitize=sanitize, fault_plan=fault_plan,
            )
        elif mode in ("batched", "scalar"):
            executor = Executor(
                self.plan,
                materialize=False,
                check_capacity=check_capacity,
                batched=(mode == "batched"),
                sanitize=sanitize,
                fault_plan=fault_plan,
            )
        else:
            raise ValueError(
                f"unknown execution mode {mode!r} "
                f"(expected 'orbit', 'batched' or 'scalar')"
            )
        return executor.run()

    def simulate(
        self,
        params: MachineParams = LASSEN,
        check_capacity: bool = True,
        mode: str = "orbit",
        fault_plan=None,
        breakdown: bool = False,
    ) -> SimReport:
        """Symbolically execute and time the kernel on the cost model.

        Raises :class:`~repro.util.errors.OutOfMemoryError` when an
        instance exceeds its memory's capacity (the paper's 3-D algorithm
        OOMs), unless ``check_capacity=False``.

        Defaults to the orbit-compressed executor — simulation cost
        scales with the number of distinct per-context behaviours
        instead of the grid size, with byte-identical ``SimReport``
        numbers (``tests/runtime/test_orbit_executor.py``). Pass
        ``mode="batched"`` or ``mode="scalar"`` for the uncompressed
        interpreters. ``breakdown=True`` attaches the per-phase
        :class:`~repro.sim.report.PhaseBreakdown` without changing any
        report number.
        """
        result = self.trace(
            check_capacity=check_capacity, mode=mode, fault_plan=fault_plan
        )
        model = CostModel(self.machine.cluster, params)
        return model.time_trace(result.trace, breakdown=breakdown)

    def analyze(
        self,
        params: MachineParams = LASSEN,
        check_capacity: bool = False,
    ):
        """Run the static analyzer over this kernel.

        Executes one full (uncompressed) symbolic trace, replays it
        through the trace sanitizer, and certifies the simulated
        cross-node traffic against the schedule-independent
        communication lower bound. Returns a
        :class:`~repro.analysis.report.AnalysisReport`.
        """
        from repro.analysis.report import analyze_kernel

        return analyze_kernel(
            self, params=params, check_capacity=check_capacity
        )

    # ------------------------------------------------------------------
    # Automatic scheduling (Section 9): heuristic and search.
    # ------------------------------------------------------------------

    @staticmethod
    def autoschedule(
        assignment: Assignment,
        machine: Machine,
        memory: Optional[MemoryKind] = None,
    ) -> "Kernel":
        """Compile with the one-shot heuristic (Section 9's baseline).

        Derives a distribution schedule and per-tensor formats with
        :func:`repro.core.autoschedule.auto_schedule` (applying the
        formats to the assignment's tensors) and compiles the result.
        This is also the seed candidate of :meth:`tune`.
        """
        from repro.core.autoschedule import auto_schedule

        if memory is None:
            memory = (
                MemoryKind.GPU_FB
                if machine.cluster.processor_kind is ProcessorKind.GPU
                else MemoryKind.SYSTEM_MEM
            )
        result = auto_schedule(assignment, machine, memory=memory)
        return compile_kernel(result.schedule, machine)

    @staticmethod
    def tune(
        assignment: Assignment,
        machine: Union[Machine, Cluster],
        params: MachineParams = LASSEN,
        **options,
    ):
        """Search the schedule space with the simulator as cost oracle.

        ``machine`` may be a :class:`~repro.machine.machine.Machine`
        (its outer grid seeds the heuristic; its cluster bounds the
        search) or a bare :class:`~repro.machine.cluster.Cluster` (the
        tuner also picks the grid organization). Keyword options are
        forwarded to :func:`repro.tuner.search.tune` — notably
        ``jobs`` (parallel oracle workers), ``strategy`` (``"auto"`` /
        ``"exhaustive"`` / ``"beam"``), ``seed`` (deterministic
        search), and ``ledger_path`` (persistent incremental re-tunes).

        Returns a :class:`~repro.tuner.search.TuneResult`: an ordinary
        :class:`~repro.scheduling.schedule.Schedule` plus formats that
        replay byte-identically from the winning decision vector, the
        compiled kernel, and its :class:`~repro.sim.report.SimReport`.
        The heuristic seeds the search and is never eliminated, so the
        tuned schedule is never worse than :meth:`autoschedule`'s.

        This method is a shim over the unified scheduling API: it
        builds the canonical :class:`repro.api.ScheduleRequest` and
        answers it with :func:`repro.api.tune_request` — the same
        engine the serving daemon (:mod:`repro.serve`) dispatches to,
        so an in-process tune and a daemon answer for the same request
        agree byte-for-byte. The returned result additionally carries
        the canonical :class:`repro.api.ScheduleAnswer` in its
        ``answer`` field.
        """
        from repro import api

        if isinstance(machine, Machine):
            if len(machine.levels) > 1:
                raise ValueError(
                    "Kernel.tune searches single-level machine grids; "
                    "pass the cluster to let the tuner pick the grid"
                )
            options.setdefault("seed_grid", machine.levels[0].shape)
            cluster = machine.cluster
        else:
            cluster = machine
        try:
            request = api.ScheduleRequest.from_assignment(
                assignment,
                cluster,
                params=params,
                seed=options.get("seed", 0),
                objective=options.get("objective", "total"),
                failure_rate=options.get("failure_rate", 0.0),
            )
        except Exception:
            # Assignments outside the canonical wire grammar (exotic
            # expression nodes) still tune — they just don't get a
            # serving-layer answer attached.
            from repro.tuner.search import tune as tuner_tune

            return tuner_tune(assignment, cluster, params, **options)
        return api.tune_request(
            request,
            assignment=assignment,
            cluster=cluster,
            params=params,
            **options,
        )


def compile_kernel(schedule: Schedule, machine: Machine) -> Kernel:
    """Compile a scheduled assignment for a machine (Figure 3 pipeline)."""
    plan = lower_to_plan(schedule, machine)
    return Kernel(plan)
