"""Compiled kernels: the user-facing result of the DISTAL pipeline.

``compile_kernel(schedule, machine)`` runs the full pipeline of Figure 3 —
scheduled concrete index notation, distributed lowering, partition/bounds
derivation — and returns a :class:`Kernel` that can

* ``execute(inputs)`` — run functionally on real numpy data over the
  simulated distributed machine (and optionally verify against the
  ``numpy.einsum`` oracle), and
* ``simulate(params)`` — run symbolically at paper scale, producing a
  :class:`~repro.sim.report.SimReport` with time, rates and traffic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.codegen.lower import lower_to_plan
from repro.codegen.plan import DistributedPlan
from repro.ir.tensor import Assignment, reference_einsum
from repro.machine.machine import Machine
from repro.runtime.executor import ExecutionResult, Executor
from repro.scheduling.schedule import Schedule
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN, MachineParams
from repro.sim.report import SimReport


class Kernel:
    """A compiled distributed tensor algebra kernel."""

    def __init__(self, plan: DistributedPlan):
        self.plan = plan

    @property
    def assignment(self) -> Assignment:
        return self.plan.assignment

    @property
    def machine(self) -> Machine:
        return self.plan.machine

    def pretty(self) -> str:
        """Readable pseudocode of the generated distributed program."""
        return self.plan.pretty()

    # ------------------------------------------------------------------
    # Functional execution.
    # ------------------------------------------------------------------

    def execute(
        self,
        inputs: Dict[str, np.ndarray],
        verify: bool = False,
        check_capacity: bool = False,
    ) -> ExecutionResult:
        """Run the kernel on real data over the simulated machine.

        With ``verify=True`` the distributed result is checked against the
        ``numpy.einsum`` oracle; a mismatch raises ``AssertionError``.
        """
        executor = Executor(
            self.plan, materialize=True, check_capacity=check_capacity
        )
        result = executor.run(inputs)
        if verify:
            expected = reference_einsum(self.assignment, inputs)
            actual = result.outputs[self.plan.output]
            np.testing.assert_allclose(
                actual, expected, rtol=1e-10, atol=1e-10,
                err_msg=f"kernel output diverges from einsum oracle for "
                f"{self.assignment!r}",
            )
        return result

    # ------------------------------------------------------------------
    # Symbolic execution + performance simulation.
    # ------------------------------------------------------------------

    def trace(
        self, check_capacity: bool = True, mode: str = "batched"
    ) -> ExecutionResult:
        """Symbolic execution: the full phase trace, no data movement.

        ``mode`` selects the interpreter: ``"scalar"`` (the per-context
        reference), ``"batched"`` (vectorized, trace-identical to
        scalar) or ``"orbit"`` (orbit-compressed: class-representative
        copies with multiplicities; identical simulated times, but the
        per-copy record is compressed). Trace analyses default to the
        full ``"batched"`` record.
        """
        if mode == "orbit":
            from repro.runtime.orbit import OrbitExecutor

            executor = OrbitExecutor(
                self.plan, check_capacity=check_capacity
            )
        elif mode in ("batched", "scalar"):
            executor = Executor(
                self.plan,
                materialize=False,
                check_capacity=check_capacity,
                batched=(mode == "batched"),
            )
        else:
            raise ValueError(
                f"unknown execution mode {mode!r} "
                f"(expected 'orbit', 'batched' or 'scalar')"
            )
        return executor.run()

    def simulate(
        self,
        params: MachineParams = LASSEN,
        check_capacity: bool = True,
        mode: str = "orbit",
    ) -> SimReport:
        """Symbolically execute and time the kernel on the cost model.

        Raises :class:`~repro.util.errors.OutOfMemoryError` when an
        instance exceeds its memory's capacity (the paper's 3-D algorithm
        OOMs), unless ``check_capacity=False``.

        Defaults to the orbit-compressed executor — simulation cost
        scales with the number of distinct per-context behaviours
        instead of the grid size, with byte-identical ``SimReport``
        numbers (``tests/runtime/test_orbit_executor.py``). Pass
        ``mode="batched"`` or ``mode="scalar"`` for the uncompressed
        interpreters.
        """
        result = self.trace(check_capacity=check_capacity, mode=mode)
        model = CostModel(self.machine.cluster, params)
        return model.time_trace(result.trace)


def compile_kernel(schedule: Schedule, machine: Machine) -> Kernel:
    """Compile a scheduled assignment for a machine (Figure 3 pipeline)."""
    plan = lower_to_plan(schedule, machine)
    return Kernel(plan)
