"""Data redistribution between distributed layouts.

Section 1 of the paper: "DISTAL lets users specialize computation to the
way that data is already laid out, or easily transform data between
distributed layouts to match the computation." A transfer is compiled
like any kernel: the identity statement ``dst(i...) = src(i...)`` with
the *destination's* distribution driving the computation placement, so
the runtime's ownership analysis discovers exactly the copies the layout
change requires (including multi-owner splits).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.codegen.lower import lower_to_plan
from repro.core.kernel import Kernel
from repro.formats.format import Format
from repro.formats.distribution import DimName
from repro.ir.expr import IndexVar
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import Memory, MemoryKind, Processor
from repro.machine.machine import Machine
from repro.obs.metrics import METRICS
from repro.obs.spans import span
from repro.runtime.trace import Copy, Trace
from repro.scheduling.schedule import Schedule
from repro.util.geometry import Interval, Rect


def transfer_kernel(
    src: TensorVar,
    dst_format: Format,
    machine: Machine,
    dst_name: Optional[str] = None,
) -> Kernel:
    """Compile a kernel that rewrites ``src`` into ``dst_format``.

    The returned kernel's output tensor (named ``dst_name`` or
    ``<src>_re``) has the new format; executing it produces the array
    and a trace whose copies are precisely the redistribution traffic.
    """
    dst_format.check(src.ndim, machine)
    METRICS.inc("transfer.kernels_compiled")
    dst = TensorVar(
        dst_name or f"{src.name}_re", src.shape, dst_format, dtype=src.dtype
    )
    ivars = [IndexVar(f"t{d}") for d in range(src.ndim)]
    stmt = Assignment(dst[tuple(ivars)], src[tuple(ivars)])
    sched = Schedule(stmt)

    # Distribute the copy the way the destination is laid out, so every
    # task writes only data it owns and reads wherever it lives.
    if dst_format.distributions:
        dist = dst_format.distributions[0]
        grid = machine.levels[0]
        partitioned = []
        for mdim_idx, mdim in enumerate(dist.machine_dims):
            if isinstance(mdim, DimName):
                tdim = dist.tensor_dims.index(mdim.name)
                partitioned.append((ivars[tdim], grid.shape[mdim_idx]))
        if partitioned:
            order = [v for v, _ in partitioned] + [
                v for v in ivars if v not in {p for p, _ in partitioned}
            ]
            sched.reorder(order)
            outers, inners = [], []
            for var, extent in partitioned:
                outer = IndexVar(f"{var.name}o")
                inner = IndexVar(f"{var.name}i")
                sched.divide(var, outer, inner, extent)
                outers.append(outer)
                inners.append(inner)
            sched.reorder(outers + inners)
            sched.distribute(outers)
            sched.communicate(src, outers[-1])
            sched.communicate(dst, outers[-1])
    plan = lower_to_plan(sched, machine)
    return Kernel(plan)


def redistribution_bytes(
    src: TensorVar, dst_format: Format, machine: Machine
) -> int:
    """Bytes a layout change moves, without executing it functionally."""
    kernel = transfer_kernel(src, dst_format, machine)
    result = kernel.trace(check_capacity=False)
    return result.trace.total_copy_bytes


# ----------------------------------------------------------------------
# Direct redistribution planning (no kernel compilation).
# ----------------------------------------------------------------------


def formats_equivalent(
    src_format: Format,
    src_machine: Machine,
    dst_format: Format,
    dst_machine: Machine,
) -> bool:
    """Do two (format, machine) pairs describe the same physical layout?

    A :class:`~repro.formats.distribution.Distribution` is symbolic —
    the blocking adapts to the grid it is applied to — so equal notation
    only means equal placement when the grids agree too. The comparison
    is per machine *level*, not on the concatenated shape: a flat
    ``Grid(2, 4)`` and a hierarchical ``Grid(2) x Grid(4)`` have the
    same shape but place grid points on different processors. The
    memory kind is part of the layout: moving a tensor from system
    memory into framebuffers is a real transfer even when the blocking
    is unchanged.
    """
    return (
        src_format.notation() == dst_format.notation()
        and src_format.memory is dst_format.memory
        and tuple(g.shape for g in src_machine.levels)
        == tuple(g.shape for g in dst_machine.levels)
    )


def _instance_memory(
    machine: Machine, proc: Processor, wants: MemoryKind
) -> Memory:
    """Where an instance lives on a processor (mirrors the runtime's
    ``InstanceTable._memory_for`` placement rule)."""
    if wants is MemoryKind.GPU_FB and proc.memory.kind is MemoryKind.GPU_FB:
        return proc.memory
    if wants is MemoryKind.SYSTEM_MEM:
        node = machine.cluster.nodes[proc.node_id]
        if node.system_memory is not None:
            return node.system_memory
    return proc.memory


def _canonical_coords(machine: Machine, proc_id: int) -> Tuple[int, ...]:
    """A machine coordinate placed on ``proc_id`` (row-major inverse of
    the flat placement rule; used to resolve replicated source dims to
    a holder that is local to the destination whenever one exists)."""
    index = proc_id % machine.size
    coords = []
    for extent in reversed(machine.shape):
        coords.append(index % extent)
        index //= extent
    return tuple(reversed(coords))


def _redirect_coords(
    machine: Machine,
    coords: Tuple[int, ...],
    replica_dims: Tuple[int, ...],
    avoid_nodes: frozenset,
) -> Tuple[int, ...]:
    """Re-source a piece away from avoided nodes when a replica allows.

    ``replica_dims`` are the machine dimensions the source layout
    replicates over — any coordinate along them holds an identical copy.
    Returns the lexicographically first replica coordinate whose
    processor survives; when none does (or the piece is not
    replicated), the original coordinate is returned and the caller
    sees a dead-source copy (fault replanning turns those into
    checkpoint restores).
    """
    if machine.proc_at(coords).node_id not in avoid_nodes:
        return coords
    if not replica_dims:
        return coords
    shape = machine.shape
    for combo in itertools.product(
        *(range(shape[d]) for d in replica_dims)
    ):
        cand = list(coords)
        for d, v in zip(replica_dims, combo):
            cand[d] = v
        cand_t = tuple(cand)
        if machine.proc_at(cand_t).node_id not in avoid_nodes:
            return cand_t
    return coords


def redistribution_trace(
    tensor: TensorVar,
    src_format: Format,
    src_machine: Machine,
    dst_format: Format,
    dst_machine: Machine,
    avoid_src_nodes: Optional[Iterable[int]] = None,
) -> Trace:
    """Plan the copies that move ``tensor`` between two layouts.

    The direct planner behind pipeline handoffs: instead of compiling
    the identity kernel (:func:`transfer_kernel`, which requires both
    layouts to target one machine grid), it enumerates every
    destination home piece and resolves its source owner with the same
    vectorized distribution arithmetic the orbit executor uses
    (:meth:`~repro.formats.format.Format.owner_pattern_batch`), so the
    two machines may organize the cluster into different grids.

    Pieces that are already resident at their destination processor (in
    the right memory) cost nothing; a matched layout therefore plans an
    empty trace. Replicated source dimensions resolve to the
    destination's canonical coordinate — a local replica when the
    destination holds one, a deterministic holder otherwise. Requests
    spanning several source pieces fall back to the scalar
    :meth:`~repro.formats.format.Format.owner_pieces` decomposition.

    Replicated *destination* dimensions are materialized: every replica
    holder receives its piece (the cost model groups the equal-source
    copies into one multicast). This is the honest cost of handing a
    tensor to a pull-replicated consumer, and is deliberately more than
    the compiled identity kernel of :func:`transfer_kernel` moves — the
    latter writes one output copy and leaves replicas to materialize
    lazily on first use.

    ``avoid_src_nodes`` supports fault recovery: source pieces homed on
    those nodes are re-sourced from the lexicographically first replica
    holder on a surviving node (when the source layout replicates the
    piece). Non-replicated pieces keep their dead source — the fault
    replanner detects those copies by node id and converts them into
    checkpoint restores.

    The returned trace carries pure :class:`Copy` traffic (one step, no
    leaf work, no memory accounting): feed it to
    :class:`~repro.sim.costmodel.CostModel.time_trace` for a
    :class:`~repro.sim.report.SimReport` of the handoff.
    """
    with span("transfer.plan"):
        trace = _redistribution_trace(
            tensor, src_format, src_machine, dst_format, dst_machine,
            avoid_src_nodes,
        )
    METRICS.inc("transfer.plans")
    METRICS.inc(
        "transfer.planned_copies",
        sum(len(s.copies) for s in trace.steps),
    )
    return trace


def _redistribution_trace(
    tensor: TensorVar,
    src_format: Format,
    src_machine: Machine,
    dst_format: Format,
    dst_machine: Machine,
    avoid_src_nodes: Optional[Iterable[int]] = None,
) -> Trace:
    avoid = frozenset(
        int(n) for n in (avoid_src_nodes or ())
    )
    if src_machine.cluster is not dst_machine.cluster:
        raise ValueError(
            "redistribution endpoints must share one physical cluster"
        )
    src_format.check(tensor.ndim, src_machine)
    dst_format.check(tensor.ndim, dst_machine)
    trace = Trace()
    step = trace.new_step(f"redistribute {tensor.name}")

    # Destination home pieces, one per machine point that owns data —
    # derived for every point at once (the per-point `owned_rect` walk
    # dominated large-machine handoff planning).
    ndim = tensor.ndim
    all_coords = np.stack(
        np.unravel_index(
            np.arange(dst_machine.size), tuple(dst_machine.shape)
        ),
        axis=1,
    ).astype(np.int64)
    b_lo, b_hi, ok = dst_format.owned_rect_batch(
        dst_machine, all_coords, tensor.shape
    )
    live = ok.copy()
    for d in range(ndim):
        live &= b_hi[d] > b_lo[d]
    sel = np.flatnonzero(live)
    if sel.size == 0:
        return trace
    k = sel.size
    dst_coords = [tuple(int(c) for c in all_coords[i]) for i in sel]
    dst_procs = [dst_machine.proc_at(c) for c in dst_coords]
    dst_rects = [
        Rect(
            tuple(
                Interval(int(b_lo[d, i]), int(b_hi[d, i]))
                for d in range(ndim)
            )
        )
        for i in sel
    ]
    los = his = None
    if ndim:
        los = b_lo[:, sel]
        his = b_hi[:, sel]

    # Source owners, batched; replica dims (-1) concretize to the
    # destination's canonical source-machine coordinate.
    pattern, valid = src_format.owner_pattern_batch(
        src_machine, los, his, tensor.shape, count=k
    )
    canon = np.array(
        [_canonical_coords(src_machine, p.proc_id) for p in dst_procs],
        dtype=np.int64,
    ).T
    src_coords = np.where(pattern >= 0, pattern, canon)

    src_mem_kind = src_format.memory
    dst_mem_kind = dst_format.memory
    itemsize = tensor.itemsize
    for j in range(k):
        dst_proc = dst_procs[j]
        dst_mem = _instance_memory(dst_machine, dst_proc, dst_mem_kind)
        if valid[j]:
            rep = tuple(int(d) for d in np.flatnonzero(pattern[:, j] < 0))
            pieces = [
                (tuple(int(c) for c in src_coords[:, j]), dst_rects[j], rep)
            ]
        else:
            # Multi-piece request: scalar decomposition, replica dims
            # resolved exactly like the batched path.
            pieces = []
            for pat, piece in src_format.owner_pieces(
                src_machine, dst_rects[j], tensor.shape
            ):
                coords = tuple(
                    p if p is not None else int(canon[d, j])
                    for d, p in enumerate(pat)
                )
                rep = tuple(
                    d for d, p in enumerate(pat) if p is None
                )
                pieces.append((coords, piece, rep))
        for coords, piece, rep in pieces:
            if piece.is_empty:
                continue
            if avoid:
                coords = _redirect_coords(src_machine, coords, rep, avoid)
            src_proc = src_machine.proc_at(coords)
            src_mem = _instance_memory(src_machine, src_proc, src_mem_kind)
            if src_proc.proc_id == dst_proc.proc_id and src_mem is dst_mem:
                continue  # already resident: nothing to move
            step.copies.append(Copy(
                tensor=tensor.name,
                rect=piece,
                nbytes=piece.volume * itemsize,
                src_proc=src_proc,
                dst_proc=dst_proc,
                src_mem=src_mem,
                dst_mem=dst_mem,
                src_coords=coords,
                dst_coords=dst_coords[j],
            ))
    return trace
