"""Data redistribution between distributed layouts.

Section 1 of the paper: "DISTAL lets users specialize computation to the
way that data is already laid out, or easily transform data between
distributed layouts to match the computation." A transfer is compiled
like any kernel: the identity statement ``dst(i...) = src(i...)`` with
the *destination's* distribution driving the computation placement, so
the runtime's ownership analysis discovers exactly the copies the layout
change requires (including multi-owner splits).
"""

from __future__ import annotations

from typing import Optional

from repro.codegen.lower import lower_to_plan
from repro.core.kernel import Kernel
from repro.formats.format import Format
from repro.formats.distribution import DimName
from repro.ir.expr import IndexVar
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule


def transfer_kernel(
    src: TensorVar,
    dst_format: Format,
    machine: Machine,
    dst_name: Optional[str] = None,
) -> Kernel:
    """Compile a kernel that rewrites ``src`` into ``dst_format``.

    The returned kernel's output tensor (named ``dst_name`` or
    ``<src>_re``) has the new format; executing it produces the array
    and a trace whose copies are precisely the redistribution traffic.
    """
    dst_format.check(src.ndim, machine)
    dst = TensorVar(
        dst_name or f"{src.name}_re", src.shape, dst_format, dtype=src.dtype
    )
    ivars = [IndexVar(f"t{d}") for d in range(src.ndim)]
    stmt = Assignment(dst[tuple(ivars)], src[tuple(ivars)])
    sched = Schedule(stmt)

    # Distribute the copy the way the destination is laid out, so every
    # task writes only data it owns and reads wherever it lives.
    if dst_format.distributions:
        dist = dst_format.distributions[0]
        grid = machine.levels[0]
        partitioned = []
        for mdim_idx, mdim in enumerate(dist.machine_dims):
            if isinstance(mdim, DimName):
                tdim = dist.tensor_dims.index(mdim.name)
                partitioned.append((ivars[tdim], grid.shape[mdim_idx]))
        if partitioned:
            order = [v for v, _ in partitioned] + [
                v for v in ivars if v not in {p for p, _ in partitioned}
            ]
            sched.reorder(order)
            outers, inners = [], []
            for var, extent in partitioned:
                outer = IndexVar(f"{var.name}o")
                inner = IndexVar(f"{var.name}i")
                sched.divide(var, outer, inner, extent)
                outers.append(outer)
                inners.append(inner)
            sched.reorder(outers + inners)
            sched.distribute(outers)
            sched.communicate(src, outers[-1])
            sched.communicate(dst, outers[-1])
    plan = lower_to_plan(sched, machine)
    return Kernel(plan)


def redistribution_bytes(
    src: TensorVar, dst_format: Format, machine: Machine
) -> int:
    """Bytes a layout change moves, without executing it functionally."""
    kernel = transfer_kernel(src, dst_format, machine)
    result = kernel.trace(check_capacity=False)
    return result.trace.total_copy_bytes
