"""Fault injection and recovery replanning for simulated executions.

The package splits into three layers:

* :mod:`repro.faults.events` — the deterministic, seeded fault model
  (:class:`FaultPlan`, :class:`KillNode`, :class:`Resize`) and the
  trace hook that turns a planned kill into a structured
  :class:`~repro.util.errors.NodeFailure`;
* :mod:`repro.faults.replan` — the replanner: price the interrupted
  prefix, re-tune the remainder on the surviving machine warm-started
  from the pre-failure decision, charge migration exactly through
  :func:`~repro.core.transfer.redistribution_trace`
  (:class:`RecoveryReport`, :func:`replan_kernel`,
  :func:`replan_pipeline`);
* :mod:`repro.faults.objective` — the tuner's ``objective="expected"``
  mode: expected runtime under a per-phase failure rate, with
  checkpoint placement as a decision
  (:func:`expected_cost`, :func:`rerank_expected`);
* :mod:`repro.faults.chaos` — the same seeded discipline applied to
  the *serving layer*: :class:`ChaosPlan` schedules worker kills,
  poison requests, dropped connections, torn/oversized frames, and a
  daemon restart, replayed by ``python -m repro.serve --chaos`` and
  the chaos soak benchmark.

``python -m repro.faults --demo`` runs a deterministic end-to-end
recovery scenario (also the CI fault-smoke job).
"""

from repro.faults.chaos import (
    ChaosController,
    ChaosPlan,
    DropConnection,
    KillWorker,
    OversizedLine,
    PoisonRequest,
    RestartDaemon,
    TornLine,
)
from repro.faults.events import (
    FaultPlan,
    KillNode,
    Resize,
    install_fault_hook,
    lost_instances,
)
from repro.faults.objective import (
    checkpoint_choices,
    expected_cost,
    rerank_expected,
)
from repro.faults.replan import (
    PipelineRecoveryReport,
    RecoveryReport,
    StageRecovery,
    replan_kernel,
    replan_pipeline,
    sized_cluster,
)
from repro.util.errors import NodeFailure

__all__ = [
    "FaultPlan",
    "KillNode",
    "Resize",
    "ChaosPlan",
    "ChaosController",
    "KillWorker",
    "PoisonRequest",
    "DropConnection",
    "TornLine",
    "OversizedLine",
    "RestartDaemon",
    "NodeFailure",
    "install_fault_hook",
    "lost_instances",
    "checkpoint_choices",
    "expected_cost",
    "rerank_expected",
    "RecoveryReport",
    "PipelineRecoveryReport",
    "StageRecovery",
    "replan_kernel",
    "replan_pipeline",
    "sized_cluster",
]
