"""Command-line fault recovery: ``python -m repro.faults``.

Usage::

    python -m repro.faults --demo
    python -m repro.faults --workload matmul --nodes 8 [--size N]
        [--phase P] [--node K] [--fault-seed S] [--checkpoint] [--json]
    python -m repro.faults --pipeline chain-matmul --nodes 8
        [--fault-seed S]

Injects a node failure into a simulated execution and replans: the
completed prefix is priced from the partial trace, the remainder is
re-tuned on the surviving cluster (warm-started from the pre-failure
decision), and the migration of every input into the re-tuned layout
is charged through the redistribution planner with the dead node
excluded as a source.

``--demo`` (the CI fault-smoke job) runs a fixed kill scenario twice
and exits non-zero if the failure was not replanned (no re-tuned
decision, infinite recovery cost) or if the two equal-seed recoveries
are not byte-identical.

With ``--phase``/``--node`` unset, the kill is drawn deterministically
from ``--fault-seed`` via :meth:`FaultPlan.sample`; ``--pipeline``
mode always samples (kills and inter-stage regrids) from the seed.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro import cli
from repro.faults.events import FaultPlan, KillNode
from repro.faults.replan import replan_kernel, replan_pipeline
from repro.machine.cluster import Cluster
from repro.sim.params import LASSEN
from repro.tuner.space import Decision, from_heuristic
from repro.tuner.workloads import (
    PIPELINES,
    WORKLOADS,
    pipeline_stages,
    sized,
    weak_scaled,
    weak_scaled_pipeline,
)


def _seed_decision(assignment, cluster, max_dims: int) -> Decision:
    from repro.tuner.space import factorizations

    shapes = factorizations(
        cluster.num_processors,
        min(max_dims, len(assignment.lhs.indices)),
    )
    grid = shapes[0] if shapes else (cluster.num_processors,)
    return from_heuristic(assignment, grid)


def _run_kernel(args, cluster) -> int:
    import json

    say = (lambda *a, **k: None) if args.json else print
    if args.size is not None:
        assignment = sized(args.workload, args.size)
    else:
        assignment = weak_scaled(args.workload, args.nodes)

    if args.phase is not None or args.node is not None:
        kill = KillNode(
            phase=args.phase if args.phase is not None else 1,
            node=args.node if args.node is not None else 0,
        )
        plan = FaultPlan(events=(kill,), seed=args.fault_seed)
    else:
        plan = FaultPlan.sample(
            args.fault_seed, cluster.num_nodes, max_phase=2
        )
    decision = _seed_decision(assignment, cluster, args.max_dims)
    if args.checkpoint:
        from dataclasses import replace

        decision = replace(
            decision, checkpoint=(assignment.lhs.tensor.name,)
        )
    say(
        f"injecting {plan.encode()} into {args.workload} on {cluster!r}"
    )
    report = replan_kernel(
        assignment,
        cluster,
        LASSEN,
        decision=decision,
        fault_plan=plan,
        strategy=args.strategy,
        jobs=args.jobs,
        seed=args.seed,
        max_dims=args.max_dims,
        timeout_s=args.timeout,
        workload=args.workload,
    )
    say(report.describe())
    cli.emit(args, {
        "workload": args.workload,
        "fault_plan": plan.encode(),
        "report": json.loads(report.to_json()),
    })
    return _check_kernel_report(report)


def _check_kernel_report(report) -> int:
    import math

    if report.failed and not math.isfinite(report.total_time):
        print("failure was not replanned (infinite cost)", file=sys.stderr)
        return 1
    return 0


def _run_pipeline(args, cluster) -> int:
    import json

    from repro.pipeline import Pipeline

    say = (lambda *a, **k: None) if args.json else print
    if args.size is not None:
        stages = pipeline_stages(args.pipeline, args.size)
    else:
        stages = weak_scaled_pipeline(args.pipeline, args.nodes)
    pipeline = Pipeline(stages, cluster)
    decisions = {
        stage.name: _seed_decision(
            stage.assignment, cluster, args.max_dims
        )
        for stage in pipeline.stages
    }
    names = [s.name for s in pipeline.stages]
    plan = FaultPlan.sample(
        args.fault_seed,
        cluster.num_nodes,
        max_phase=2,
        stages=(names[0],),
        resize_choices=(max(1, cluster.num_nodes - 1),),
    )
    say(
        f"injecting {plan.encode()} into pipeline {args.pipeline} "
        f"on {cluster!r}"
    )
    report = replan_pipeline(
        pipeline,
        decisions,
        LASSEN,
        fault_plan=plan,
        strategy=args.strategy,
        jobs=args.jobs,
        seed=args.seed,
        max_dims=args.max_dims,
        timeout_s=args.timeout,
        workload=args.pipeline,
    )
    say(report.describe())
    cli.emit(args, {
        "pipeline": args.pipeline,
        "fault_plan": plan.encode(),
        "report": json.loads(report.to_json()),
    })
    import math

    if not math.isfinite(report.total_time):
        print("failure was not replanned (infinite cost)", file=sys.stderr)
        return 1
    return 0


def _run_demo(args) -> int:
    """The CI fault-smoke scenario: replanned, and bit-reproducible."""
    import json

    say = (lambda *a, **k: None) if args.json else print
    cluster = Cluster.cpu_cluster(4)
    assignment = sized("matmul", 2048)
    decision = _seed_decision(assignment, cluster, args.max_dims)
    plan = FaultPlan(events=(KillNode(phase=1, node=2),), seed=11)
    say(f"demo: injecting {plan.encode()} into matmul on {cluster!r}")

    reports = [
        replan_kernel(
            assignment,
            cluster,
            LASSEN,
            decision=decision,
            fault_plan=plan,
            strategy="exhaustive",
            seed=0,
            max_dims=args.max_dims,
            workload="matmul",
        )
        for _ in range(2)
    ]
    say(reports[0].describe())

    status = 0
    if not reports[0].failed:
        print("demo kill never triggered", file=sys.stderr)
        status = 1
    status |= _check_kernel_report(reports[0])
    if reports[0].retuned_decision == reports[0].pre_decision:
        # The re-tuned grid must fit the surviving 3-node machine; an
        # unchanged decision means the replanner never ran the tuner.
        print("demo failure was not re-tuned", file=sys.stderr)
        status = 1
    if reports[0].to_json() != reports[1].to_json():
        print(
            "nondeterministic recovery: equal-seed fault plans "
            "produced different reports",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        say("demo recovery OK: replanned and bit-reproducible")
    cli.emit(args, {
        "demo": True,
        "fault_plan": plan.encode(),
        "status": status,
        "report": json.loads(reports[0].to_json()),
    })
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Inject simulated node failures and replan.",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="matmul"
    )
    parser.add_argument(
        "--pipeline",
        choices=sorted(PIPELINES),
        default=None,
        help="replan a multi-kernel pipeline under a sampled fault "
        "plan (kills plus inter-stage regrids)",
    )
    cli.add_cluster_args(parser, nodes_default=8)
    parser.add_argument(
        "--phase", type=int, default=None, help="kill at this phase"
    )
    parser.add_argument(
        "--node", type=int, default=None, help="kill this node"
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the sampled fault plan (equal seeds give "
        "byte-identical recovery reports)",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="checkpoint the output tensor each phase (the completed "
        "prefix survives the failure)",
    )
    parser.add_argument(
        "--strategy", choices=["auto", "exhaustive", "beam"], default="auto"
    )
    parser.add_argument("--max-dims", type=int, default=3)
    cli.add_common_args(parser, ledger=False, timeout=True)
    parser.add_argument(
        "--demo",
        action="store_true",
        help="fixed kill scenario, run twice; non-zero exit on an "
        "unreplanned failure or nondeterministic recovery cost "
        "(the CI fault-smoke job)",
    )
    args = parser.parse_args(argv)

    try:
        if args.demo:
            status = _run_demo(args)
        else:
            cluster = cli.build_cluster(args)
            if args.pipeline is not None:
                status = _run_pipeline(args, cluster)
            else:
                status = _run_kernel(args, cluster)
    except Exception:
        traceback.print_exc()
        print("fault replanning failed", file=sys.stderr)
        return 1
    if not args.json:
        cli.print_metrics()
    return status


if __name__ == "__main__":
    sys.exit(main())
