"""Seeded chaos for the serving layer: deterministic injected failures.

:mod:`repro.faults.events` gave the *simulated* machine a disciplined
fault model — seeded, replayable, byte-identical per seed. This module
applies the same discipline to the schedule-serving daemon
(:mod:`repro.serve`): a :class:`ChaosPlan` is a small frozen schedule
of serving-layer failures with a stable :meth:`~ChaosPlan.encode` and a
deterministic :meth:`~ChaosPlan.sample`, mirroring
:class:`~repro.faults.events.FaultPlan`.

Event kinds and where they inject:

* :class:`KillWorker` — the ``n``-th tune-worker dispatch (a forked
  child of the daemon) dies with SIGKILL mid-tune. Injected by the
  supervised dispatcher (:mod:`repro.serve.supervise`): the child
  self-kills after opening the ledger, exactly where a real crash
  would lose the unpersisted answer.
* :class:`PoisonRequest` — *every* dispatch for one request
  fingerprint crashes, modelling a request that deterministically
  kills its worker; this is what drives the daemon's
  consecutive-crash quarantine.
* :class:`DropConnection` — the client drops its socket just before
  reading the ``n``-th response, exercising reconnect + idempotent
  re-send.
* :class:`TornLine` — the client writes half of the ``n``-th request
  frame and hangs up, leaving the daemon a torn NDJSON line.
* :class:`OversizedLine` — the client sends a single line larger than
  the daemon's stream limit before the ``n``-th request.
* :class:`RestartDaemon` — the harness restarts the daemon after the
  ``n``-th completed client operation (the daemon cannot restart
  itself; the scenario driver owns this event).

A :class:`ChaosController` wraps a plan with the mutable counters the
daemon and client consult at their injection points; everything the
controller decides is a pure function of (plan, event index), so equal
seeds replay the identical failure schedule.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "ChaosController",
    "ChaosPlan",
    "DropConnection",
    "KillWorker",
    "OversizedLine",
    "PoisonRequest",
    "RestartDaemon",
    "TornLine",
]


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL the ``dispatch``-th tune-worker fork (0-based, counted
    across every dispatch attempt the daemon makes, retries included)."""

    dispatch: int

    def encode(self) -> str:
        return f"kill-worker(dispatch={self.dispatch})"


@dataclass(frozen=True)
class PoisonRequest:
    """Every worker dispatched for ``fingerprint`` crashes."""

    fingerprint: str

    def encode(self) -> str:
        return f"poison(fingerprint={self.fingerprint})"


@dataclass(frozen=True)
class DropConnection:
    """The client drops its socket before reading reply ``reply``
    (0-based, counted across every response the client reads)."""

    reply: int

    def encode(self) -> str:
        return f"drop(reply={self.reply})"


@dataclass(frozen=True)
class TornLine:
    """The client tears request frame ``send`` in half and hangs up."""

    send: int

    def encode(self) -> str:
        return f"torn(send={self.send})"


@dataclass(frozen=True)
class OversizedLine:
    """The client sends one ``size``-byte line before request ``send``."""

    send: int
    size: int = 2 * 1024 * 1024

    def encode(self) -> str:
        return f"oversized(send={self.send},size={self.size})"


@dataclass(frozen=True)
class RestartDaemon:
    """The harness restarts the daemon after ``after`` completed
    client operations."""

    after: int

    def encode(self) -> str:
        return f"restart(after={self.after})"


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic schedule of serving-layer failures.

    Frozen and hashable like :class:`~repro.faults.events.FaultPlan`;
    ``seed`` records how the plan was drawn (``None`` for hand-built
    plans). Extend a sampled plan with hand-placed events (a poison
    request whose fingerprint is only known at scenario-build time)
    via :meth:`with_events`.
    """

    events: Tuple = ()
    seed: Optional[int] = None

    def encode(self) -> str:
        seed = "" if self.seed is None else f"seed={self.seed};"
        return seed + ";".join(e.encode() for e in self.events)

    def with_events(self, *events) -> "ChaosPlan":
        return ChaosPlan(events=self.events + tuple(events), seed=self.seed)

    def restart_after(self) -> Optional[int]:
        """The harness-driven restart point, if the plan has one."""
        for event in self.events:
            if isinstance(event, RestartDaemon):
                return event.after
        return None

    @staticmethod
    def sample(
        seed: int,
        operations: int,
        dispatches: int,
        kills: int = 2,
        drops: int = 2,
        torn: int = 1,
        oversized: int = 0,
        restart: bool = True,
    ) -> "ChaosPlan":
        """Draw a chaos schedule deterministically from ``seed``.

        ``operations`` bounds the client-side event positions (reply
        and send counters), ``dispatches`` the worker-kill positions.
        Equal seeds produce equal plans, byte for byte.
        """
        if operations < 1 or dispatches < 1:
            raise ValueError("chaos sampling needs positive event ranges")
        rng = random.Random(seed)
        events = []
        for index in sorted(
            rng.sample(range(dispatches), min(kills, dispatches))
        ):
            events.append(KillWorker(dispatch=index))
        for index in sorted(
            rng.sample(range(operations), min(drops, operations))
        ):
            events.append(DropConnection(reply=index))
        for index in sorted(
            rng.sample(range(operations), min(torn, operations))
        ):
            events.append(TornLine(send=index))
        for index in sorted(
            rng.sample(range(operations), min(oversized, operations))
        ):
            events.append(OversizedLine(send=index))
        if restart:
            # Land the restart inside the middle of the operation
            # stream so it genuinely interrupts a burst.
            lo = max(1, operations // 3)
            hi = max(lo + 1, (2 * operations) // 3)
            events.append(RestartDaemon(after=rng.randrange(lo, hi)))
        return ChaosPlan(events=tuple(events), seed=seed)


class ChaosController:
    """Mutable counters over a frozen plan: the injection-point API.

    One controller is shared by the daemon (worker kills) and the
    client (drops, torn and oversized frames); its counters advance on
    every consult, so the schedule plays out in arrival order. Thread
    safe — the daemon consults from dispatcher threads while the
    client consults from the caller's.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._kills = {
            e.dispatch for e in plan.events if isinstance(e, KillWorker)
        }
        self._poison = {
            e.fingerprint
            for e in plan.events
            if isinstance(e, PoisonRequest)
        }
        self._drops = {
            e.reply for e in plan.events if isinstance(e, DropConnection)
        }
        self._torn = {
            e.send for e in plan.events if isinstance(e, TornLine)
        }
        self._oversized = {
            e.send: e.size
            for e in plan.events
            if isinstance(e, OversizedLine)
        }
        #: Consult counters (dispatches, replies, sends seen so far).
        self.dispatches = 0
        self.replies = 0
        self.sends = 0
        #: Events actually fired, by kind.
        self.kills_fired = 0
        self.poison_fired = 0
        self.drops_fired = 0
        self.torn_fired = 0
        self.oversized_fired = 0

    # -- daemon side ---------------------------------------------------

    def kill_worker(self, fingerprint: str) -> bool:
        """Should the next worker dispatch for ``fingerprint`` die?"""
        with self._lock:
            index = self.dispatches
            self.dispatches += 1
            if fingerprint in self._poison:
                self.poison_fired += 1
                return True
            if index in self._kills:
                self.kills_fired += 1
                return True
            return False

    # -- client side ---------------------------------------------------

    def drop_before_reply(self) -> bool:
        """Should the client drop the socket before this read?"""
        with self._lock:
            index = self.replies
            self.replies += 1
            if index in self._drops:
                self.drops_fired += 1
                return True
            return False

    def torn_send(self) -> bool:
        """Should the client tear this request frame?"""
        with self._lock:
            index = self.sends
            self.sends += 1
            if index in self._torn:
                self.torn_fired += 1
                return True
            return False

    def oversized_send(self) -> Optional[int]:
        """Byte size of an oversized line to inject before this
        request, or ``None``. Shares the send counter with
        :meth:`torn_send` consults made by the same request."""
        with self._lock:
            index = self.sends  # peek: torn_send() advanced it already
            size = self._oversized.get(index - 1)
            if size is not None and index - 1 not in self._torn:
                self.oversized_fired += 1
                del self._oversized[index - 1]
                return size
            return None
