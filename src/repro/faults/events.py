"""The fault event model: deterministic, seeded failure schedules.

Production clusters lose nodes and change size mid-job; the paper's
schedules assume neither. A :class:`FaultPlan` is a small, hashable
schedule of such events:

* :class:`KillNode` — node ``node`` dies at phase boundary ``phase``
  (before step ``phase`` starts), optionally scoped to one pipeline
  ``stage``;
* :class:`Resize` — the machine shrinks or grows to ``nodes`` nodes at
  the pipeline boundary *before* stage ``boundary``.

Plans are injected into the executors (``Kernel.trace(fault_plan=...)``)
through the trace's step hook: both the batched and the
orbit-compressed interpreter create every bulk-synchronous phase through
``Trace.new_step``, so a kill interrupts either one at exactly the same
boundary, with the same completed partial trace.

Everything is deterministic: :meth:`FaultPlan.sample` draws from
``random.Random(seed)`` only, and :func:`lost_instances` enumerates the
dead node's home pieces in sorted tensor/coordinate order — equal seeds
therefore produce byte-identical downstream
:class:`~repro.faults.replan.RecoveryReport`\\ s.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import NodeFailure
from repro.util.geometry import Interval, Rect


@dataclass(frozen=True)
class KillNode:
    """Node ``node`` dies just before step ``phase`` of ``stage``."""

    phase: int
    node: int
    stage: Optional[str] = None

    def encode(self) -> str:
        scope = f"@{self.stage}" if self.stage is not None else ""
        return f"kill(node={self.node},phase={self.phase}{scope})"


@dataclass(frozen=True)
class Resize:
    """Regrid to ``nodes`` nodes at the boundary before ``boundary``."""

    boundary: str
    nodes: int

    def encode(self) -> str:
        return f"resize(before={self.boundary},nodes={self.nodes})"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of failure and resize events.

    ``events`` is a tuple of :class:`KillNode` / :class:`Resize`;
    ``seed`` records how the plan was drawn (``None`` for hand-built
    plans). Plans are frozen and hashable, so they can ride in ledger
    keys and test parametrizations.
    """

    events: Tuple = ()
    seed: Optional[int] = None

    def kill_for(self, stage: Optional[str] = None) -> Optional[KillNode]:
        """The kill event scoped to ``stage`` (first match wins).

        A single-kernel execution looks up ``stage=None``; events with
        ``stage=None`` also apply there. Pipeline stages match on name.
        """
        for event in self.events:
            if not isinstance(event, KillNode):
                continue
            if event.stage == stage or (stage is None and event.stage is None):
                return event
        return None

    def resize_before(self, stage: str) -> Optional[Resize]:
        """The resize event scheduled at the boundary before ``stage``."""
        for event in self.events:
            if isinstance(event, Resize) and event.boundary == stage:
                return event
        return None

    def encode(self) -> str:
        seed = "" if self.seed is None else f"seed={self.seed};"
        return seed + ";".join(e.encode() for e in self.events)

    @staticmethod
    def sample(
        seed: int,
        num_nodes: int,
        max_phase: int,
        stages: Sequence[Optional[str]] = (None,),
        resize_choices: Sequence[int] = (),
    ) -> "FaultPlan":
        """Draw one kill event (and optional resizes) deterministically.

        The kill lands on a uniformly random node and phase in
        ``[1, max_phase]`` of a uniformly random stage; each non-first
        stage independently gets a resize boundary drawn from
        ``resize_choices`` with probability 1/2. Equal seeds produce
        equal plans, byte for byte.
        """
        if num_nodes < 2:
            raise ValueError("fault sampling needs at least 2 nodes")
        rng = random.Random(seed)
        stage = stages[rng.randrange(len(stages))]
        events: List = [KillNode(
            phase=rng.randint(1, max(1, max_phase)),
            node=rng.randrange(num_nodes),
            stage=stage,
        )]
        for boundary in stages[1:]:
            if resize_choices and boundary is not None and rng.random() < 0.5:
                events.append(Resize(
                    boundary=boundary,
                    nodes=resize_choices[rng.randrange(len(resize_choices))],
                ))
        return FaultPlan(events=tuple(events), seed=seed)


# ----------------------------------------------------------------------
# Lost-instance enumeration.
# ----------------------------------------------------------------------


def lost_instances(plan, machine, node: int) -> Tuple:
    """Home instances a dead node held: ``(tensor, coords, rect)``.

    Executor-independent (derived from the plan's tensor formats with
    the same vectorized distribution arithmetic the orbit executor
    uses), so the batched and orbit interpreters raise identical
    :class:`~repro.util.errors.NodeFailure` payloads. Sorted by tensor
    name, then machine coordinates.
    """
    out = []
    all_coords = np.stack(
        np.unravel_index(np.arange(machine.size), tuple(machine.shape)),
        axis=1,
    ).astype(np.int64)
    for name in sorted(plan.tensors):
        tensor = plan.tensors[name]
        fmt = tensor.format
        if fmt is None or not fmt.distributions:
            continue
        b_lo, b_hi, ok = fmt.owned_rect_batch(
            machine, all_coords, tensor.shape
        )
        for j in range(machine.size):
            if not ok[j]:
                continue
            coords = tuple(int(c) for c in all_coords[j])
            if machine.proc_at(coords).node_id != node:
                continue
            rect = Rect(tuple(
                Interval(int(b_lo[d, j]), int(b_hi[d, j]))
                for d in range(tensor.ndim)
            ))
            if rect.is_empty:
                continue
            out.append((name, coords, rect))
    return tuple(sorted(out, key=lambda item: (item[0], item[1])))


def install_fault_hook(trace, fault_plan, executor, stage=None):
    """Arm ``trace`` so the planned kill interrupts the execution.

    The hook fires before each step is created; on the planned phase it
    raises :class:`~repro.util.errors.NodeFailure` carrying the exact
    phase, the surviving node count, the dead node's home instances,
    and the partial trace of completed steps.
    """
    kill = fault_plan.kill_for(stage)
    if kill is None:
        return
    machine = executor.machine
    num_nodes = machine.cluster.num_nodes
    if not 0 <= kill.node < num_nodes:
        raise ValueError(
            f"fault plan kills node {kill.node} of a "
            f"{num_nodes}-node cluster"
        )

    def hook(index: int, label: str):
        if index != kill.phase:
            return
        # Record the high water of the completed prefix when the
        # environment tracks it (both symbolic interpreters do).
        high_water = getattr(executor.env, "high_water", None)
        if high_water is not None:
            trace.memory_high_water = dict(high_water)
        raise NodeFailure(
            phase=index,
            node=kill.node,
            surviving_nodes=num_nodes - 1,
            lost=lost_instances(executor.plan, machine, kill.node),
            partial_trace=trace,
            step_label=label,
        )

    trace.step_hook = hook
