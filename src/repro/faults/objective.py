"""Expected-cost tuning: failure exposure and checkpoint placement.

The tuner's default objective is the simulated fault-free runtime. On
a machine that loses nodes, the schedule that minimizes that number is
not necessarily the one that minimizes the *expected* runtime: a long
run of many phases has more exposure to failure (and loses more work
per failure), while checkpointing every phase buys cheap recovery at a
per-phase write cost.

The model is deliberately small and closed-form, priced entirely from
quantities the oracle already records:

* ``S`` — the candidate's bulk-synchronous phase count
  (:attr:`~repro.tuner.oracle.EvalOutcome.num_steps`);
* ``p_fail = 1 - (1 - λ)**S`` — the probability of at least one node
  failure during the run, for a per-phase failure rate ``λ``;
* without checkpoints, a failure loses half the run in expectation and
  recovery re-loads the inputs;
* with per-phase checkpoints of a tensor set, every phase pays the
  aggregate-NIC write time of that set, a failure loses only half a
  *phase*'s work in expectation, and recovery re-loads the snapshot.

``rerank_expected`` expands a ranking's feasible outcomes across the
checkpoint choices (none, or the output tensor — the accumulating
state a phase boundary must preserve) and re-sorts by expected cost;
the winning :class:`~repro.tuner.space.Decision` carries its
``checkpoint`` field so downstream fault replanning knows which
instances survive a node loss.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Sequence, Tuple

from repro.ir.tensor import Assignment
from repro.sim.params import MachineParams
from repro.tuner.oracle import EvalOutcome


def tensor_bytes(assignment: Assignment, names: Sequence[str]) -> int:
    """Total bytes of the named tensors of ``assignment``."""
    wanted = set(names)
    total = 0
    for tensor in assignment.tensors():
        if tensor.name in wanted:
            total += tensor.nbytes
            wanted.discard(tensor.name)
    return total


def input_bytes(assignment: Assignment) -> int:
    """Total bytes of the assignment's input tensors."""
    output = assignment.lhs.tensor.name
    return tensor_bytes(
        assignment,
        [t.name for t in assignment.tensors() if t.name != output],
    )


def checkpoint_choices(assignment: Assignment) -> List[Tuple[str, ...]]:
    """The checkpoint sets the expected-cost re-ranking considers.

    Either nothing, or the output tensor — the accumulating state that
    cannot be recomputed from inputs without replaying the run. Inputs
    are immutable (re-loadable from their source), so snapshotting them
    buys nothing the no-checkpoint restore does not already price.
    """
    return [(), (assignment.lhs.tensor.name,)]


def expected_cost(
    base: float,
    num_steps: int,
    failure_rate: float,
    checkpoint_bytes: int,
    restore_bytes: int,
    num_nodes: int,
    params: MachineParams,
) -> float:
    """Expected runtime of one candidate under per-phase failures.

    ``checkpoint_bytes == 0`` prices the no-checkpoint policy: no
    per-phase overhead, half the run lost per failure. A positive
    ``checkpoint_bytes`` pays its aggregate-NIC write time every phase
    and loses only half a phase per failure. ``restore_bytes`` is what
    recovery re-loads (inputs or the snapshot respectively).
    """
    if not math.isfinite(base):
        return base
    rate = min(max(float(failure_rate), 0.0), 1.0)
    steps = max(1, int(num_steps))
    nodes = max(1, int(num_nodes))
    bw = params.nic_bw * nodes
    p_fail = 1.0 - (1.0 - rate) ** steps
    restore = restore_bytes / bw
    if checkpoint_bytes > 0:
        overhead = checkpoint_bytes / bw
        lost = 0.5 * base / steps
        return base + steps * overhead + p_fail * (lost + restore)
    return base + p_fail * (0.5 * base + restore)


def expected_for(
    outcome: EvalOutcome,
    assignment: Assignment,
    checkpoint: Tuple[str, ...],
    failure_rate: float,
    num_nodes: int,
    params: MachineParams,
) -> float:
    """Expected cost of one oracle outcome under one checkpoint set."""
    ckpt_bytes = tensor_bytes(assignment, checkpoint)
    restore = (
        ckpt_bytes if checkpoint else input_bytes(assignment)
    )
    return expected_cost(
        base=outcome.cost,
        num_steps=outcome.num_steps,
        failure_rate=failure_rate,
        checkpoint_bytes=ckpt_bytes,
        restore_bytes=restore,
        num_nodes=num_nodes,
        params=params,
    )


def rerank_expected(
    ranked: Sequence[EvalOutcome],
    assignment: Assignment,
    *,
    params: MachineParams,
    num_nodes: int,
    failure_rate: float,
) -> List[EvalOutcome]:
    """Re-score a ranking by expected cost, expanding checkpoint choices.

    Every feasible outcome appears once per checkpoint set (its
    decision's ``checkpoint`` field set accordingly, its ``cost``
    replaced by the expected cost); infeasible outcomes pass through
    unexpanded. Deterministic: sorted by ``(cost, decision key)``, like
    the oracle's own ranking.
    """
    expanded: List[EvalOutcome] = []
    for outcome in ranked:
        if not outcome.feasible:
            expanded.append(outcome)
            continue
        for ckpt in checkpoint_choices(assignment):
            decision = (
                outcome.decision
                if not ckpt
                else replace(outcome.decision, checkpoint=ckpt)
            )
            expanded.append(replace(
                outcome,
                decision=decision,
                cost=expected_for(
                    outcome, assignment, ckpt,
                    failure_rate, num_nodes, params,
                ),
            ))
    return sorted(expanded, key=lambda o: (o.cost, o.decision.key()))
