"""Fault replanning: from a structured failure to a recovered schedule.

When a :class:`~repro.util.errors.NodeFailure` interrupts a simulated
execution, three questions decide the cost of carrying on:

1. **What survives?** The failure carries the dead node's home
   instances; replicated pieces still exist on surviving nodes, and
   checkpointed tensors (``Decision.checkpoint``) are restorable. The
   rest of the completed work is lost.
2. **What does the remaining work cost?** The surviving machine has one
   node fewer, so the old grid no longer exists. The remainder is
   re-tuned with the ordinary tuner, *warm-started* from the
   pre-failure decision vector: its same-rank grid projections join
   the space and survive every beam cut, so the re-tuned schedule can
   only improve on naively replaying the old structure.
3. **What does it cost to get there?** Every input (and checkpointed
   state) must move from its pre-failure layout into the re-tuned one
   — charged exactly through
   :func:`~repro.core.transfer.redistribution_trace` between the old
   and new grids, with the dead node excluded as a source
   (``avoid_src_nodes``): replicated pieces re-source from surviving
   holders, and what only the dead node held is restored over the same
   links.

The node-identity convention: nodes are homogeneous and the cost model
is invariant under node-id bijections (inter- vs. intra-node character
and per-link aggregation only depend on the partition into nodes), so
the dead node is relabelled to the *last* node id. The surviving
machine's grid then occupies the processor prefix by the row-major
placement rule, and ``avoid_src_nodes={num_nodes - 1}`` excludes
exactly the failed hardware — with cost identical to avoiding the
actual dead id.

Everything here is deterministic: equal-seed :class:`FaultPlan`\\ s
produce byte-identical :meth:`RecoveryReport.to_json` payloads (the CI
fault-smoke job asserts this).
"""

from __future__ import annotations

import copy
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.kernel import compile_kernel
from repro.core.transfer import formats_equivalent, redistribution_trace
from repro.faults.events import FaultPlan, KillNode
from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN, MachineParams
from repro.tuner.space import Decision, realize
from repro.util.errors import NodeFailure


def sized_cluster(cluster: Cluster, nodes: int) -> Cluster:
    """A cluster of ``nodes`` nodes with ``cluster``'s node anatomy.

    Shrinks (node failure, regrid-down) and grows (regrid-up) alike;
    processor kind, per-processor memory and system memory carry over.
    """
    if nodes < 1:
        raise ValueError(f"cannot build a {nodes}-node cluster")
    proto = cluster.processors[0]
    system = cluster.nodes[0].system_memory
    return Cluster.build(
        num_nodes=nodes,
        procs_per_node=cluster.procs_per_node,
        proc_kind=proto.kind,
        proc_mem_kind=proto.memory.kind,
        proc_mem_capacity=proto.memory.capacity_bytes,
        system_mem_capacity=(
            system.capacity_bytes if system is not None else 0
        ),
    )


def _default_memory(cluster: Cluster) -> MemoryKind:
    return (
        MemoryKind.GPU_FB
        if cluster.processor_kind is ProcessorKind.GPU
        else MemoryKind.SYSTEM_MEM
    )


@dataclass(frozen=True)
class RecoveryReport:
    """The full accounting of one kernel-level failure recovery.

    ``phase == -1`` means the planned kill never triggered (the kill
    phase was at or past the end of the run, or the plan had no kill
    for this scope): the run completed fault-free and only
    ``baseline_time``/``total_time`` are meaningful.

    All times are simulated seconds; ``total_time`` is the wall clock
    of the recovered run: work completed before the failure (wasted or
    not), plus migration/restore traffic, plus the re-tuned remainder.
    Serialization (:meth:`to_json`) is key-sorted and free of any
    environment-dependent value, so equal-seed fault plans produce
    byte-identical reports.
    """

    workload: str
    num_nodes: int
    surviving_nodes: int
    phase: int
    dead_node: int
    num_steps: int
    checkpointed: Tuple[str, ...]
    lost_instances: int
    baseline_time: float
    completed_time: float
    lost_time: float
    migration_bytes: int
    migration_time: float
    retuned_time: float
    total_time: float
    pre_decision: str
    retuned_decision: str

    @property
    def failed(self) -> bool:
        return self.phase >= 0

    @property
    def overhead_factor(self) -> float:
        """Recovered wall clock relative to the fault-free baseline."""
        if self.baseline_time <= 0:
            return 1.0
        return self.total_time / self.baseline_time

    def to_json(self) -> str:
        record = asdict(self)
        record["checkpointed"] = list(self.checkpointed)
        return json.dumps(record, sort_keys=True)

    def describe(self) -> str:
        if not self.failed:
            return (
                f"{self.workload}: no failure triggered; "
                f"{self.baseline_time:.4f}s fault-free"
            )
        ckpt = (
            ",".join(self.checkpointed) if self.checkpointed else "none"
        )
        return "\n".join([
            f"{self.workload}: node {self.dead_node} died at phase "
            f"{self.phase}/{self.num_steps} "
            f"({self.num_nodes} -> {self.surviving_nodes} nodes, "
            f"{self.lost_instances} home instances lost, "
            f"checkpoint {ckpt})",
            f"  completed before failure: {self.completed_time:.4f}s"
            + ("  (lost)" if self.lost_time else "  (preserved)"),
            f"  migration/restore: {self.migration_bytes / 2 ** 20:.1f} "
            f"MiB, {self.migration_time:.4f}s",
            f"  re-tuned remainder: {self.retuned_time:.4f}s "
            f"({self.retuned_decision})",
            f"  total {self.total_time:.4f}s vs fault-free "
            f"{self.baseline_time:.4f}s "
            f"({self.overhead_factor:.2f}x)",
        ])


def replan_kernel(
    assignment: Assignment,
    cluster: Cluster,
    params: MachineParams = LASSEN,
    *,
    decision: Decision,
    fault_plan: FaultPlan,
    memory: Optional[MemoryKind] = None,
    mode: str = "orbit",
    check_capacity: bool = True,
    strategy: str = "auto",
    jobs: int = 1,
    seed: int = 0,
    max_dims: int = 3,
    ledger=None,
    timeout_s: Optional[float] = None,
    workload: str = "kernel",
) -> RecoveryReport:
    """Inject the planned failure, replan, and account the recovery.

    Executes ``decision`` on ``cluster`` with ``fault_plan`` armed;
    when the kill fires, prices the completed prefix, re-tunes the
    assignment on the surviving (one-node-smaller) cluster warm-started
    from ``decision``, and charges the migration of every input — plus
    checkpointed state — into the re-tuned layout through
    :func:`redistribution_trace` with the dead node excluded as a
    source. Deterministic for a fixed ``(fault_plan, seed)``.
    """
    from repro.tuner.search import tune  # local: import cycle

    memory = memory if memory is not None else _default_memory(cluster)
    work = copy.deepcopy(assignment)
    machine = Machine(cluster, Grid(*decision.grid))
    schedule, formats = realize(work, machine, decision, memory=memory)
    kernel = compile_kernel(schedule, machine)
    model = CostModel(cluster, params)
    baseline = kernel.simulate(
        params, check_capacity=check_capacity, mode=mode
    )
    steps = max(1, baseline.num_steps)

    failure: Optional[NodeFailure] = None
    try:
        kernel.trace(
            check_capacity=check_capacity, mode=mode, fault_plan=fault_plan
        )
    except NodeFailure as err:
        failure = err
    if failure is None:
        return RecoveryReport(
            workload=workload,
            num_nodes=cluster.num_nodes,
            surviving_nodes=cluster.num_nodes,
            phase=-1,
            dead_node=-1,
            num_steps=steps,
            checkpointed=tuple(decision.checkpoint),
            lost_instances=0,
            baseline_time=baseline.total_time,
            completed_time=baseline.total_time,
            lost_time=0.0,
            migration_bytes=0,
            migration_time=0.0,
            retuned_time=0.0,
            total_time=baseline.total_time,
            pre_decision=decision.encode(),
            retuned_decision=decision.encode(),
        )

    completed = model.time_trace(failure.partial_trace).total_time
    surviving = sized_cluster(cluster, cluster.num_nodes - 1)
    retune = tune(
        copy.deepcopy(assignment),
        surviving,
        params,
        memory=memory,
        mode=mode,
        check_capacity=check_capacity,
        strategy=strategy,
        jobs=jobs,
        seed=seed,
        max_dims=max_dims,
        ledger=ledger,
        timeout_s=timeout_s,
        warm_start=decision,
    )
    retuned_total = (
        retune.report.total_time if retune.report is not None
        else float("inf")
    )
    checkpointed = tuple(decision.checkpoint)
    if checkpointed:
        # Per-phase checkpoints preserve the completed prefix: only the
        # remaining phases re-run (under the re-tuned schedule).
        fraction = (steps - min(failure.phase, steps)) / steps
        lost = 0.0
    else:
        fraction = 1.0
        lost = completed

    # Migration: inputs always move into the re-tuned layout (the dead
    # node excluded as a source — replicas re-source from survivors,
    # unreplicated pieces restore over the same links); checkpointed
    # tensors move as well, since their snapshot is what makes the
    # completed prefix worth keeping. The new grid occupies the
    # processor prefix of the old cluster (row-major placement), which
    # avoids the relabelled-dead last node by construction.
    dst_machine = Machine(cluster, Grid(*retune.decision.grid))
    avoid = {cluster.num_nodes - 1}
    output = work.lhs.tensor.name
    migrate = [
        t for t in work.tensors()
        if t.name != output or t.name in checkpointed
    ]
    migration_bytes = 0
    migration_time = 0.0
    for tensor in migrate:
        src_fmt = formats[tensor.name]
        dst_fmt = retune.formats[tensor.name]
        trace = redistribution_trace(
            tensor, src_fmt, machine, dst_fmt, dst_machine,
            avoid_src_nodes=avoid,
        )
        migration_bytes += trace.total_copy_bytes
        migration_time += model.time_trace(trace).total_time
    retuned_time = retuned_total * fraction
    total = completed + migration_time + retuned_time
    return RecoveryReport(
        workload=workload,
        num_nodes=cluster.num_nodes,
        surviving_nodes=failure.surviving_nodes,
        phase=failure.phase,
        dead_node=failure.node,
        num_steps=steps,
        checkpointed=checkpointed,
        lost_instances=len(failure.lost),
        baseline_time=baseline.total_time,
        completed_time=completed,
        lost_time=lost,
        migration_bytes=int(migration_bytes),
        migration_time=migration_time,
        retuned_time=retuned_time,
        total_time=total,
        pre_decision=decision.encode(),
        retuned_decision=retune.decision.encode(),
    )


# ----------------------------------------------------------------------
# Pipeline replanning: kills mid-stage, regrids between stages.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StageRecovery:
    """One pipeline stage's contribution to a recovered run."""

    stage: str
    nodes: int
    decision: str
    retuned: bool
    stage_time: float
    handoff_bytes: int
    handoff_time: float
    recovery: Optional[RecoveryReport] = None


@dataclass(frozen=True)
class PipelineRecoveryReport:
    """The recovered cost of a pipeline under a fault plan."""

    workload: str
    plan: str
    baseline_time: float
    stages: Tuple[StageRecovery, ...] = field(default_factory=tuple)
    total_time: float = 0.0

    @property
    def migration_bytes(self) -> int:
        return sum(s.handoff_bytes for s in self.stages) + sum(
            s.recovery.migration_bytes
            for s in self.stages
            if s.recovery is not None
        )

    @property
    def overhead_factor(self) -> float:
        if self.baseline_time <= 0:
            return 1.0
        return self.total_time / self.baseline_time

    def to_json(self) -> str:
        record = asdict(self)
        return json.dumps(record, sort_keys=True)

    def describe(self) -> str:
        lines = [
            f"pipeline {self.workload} under [{self.plan}]: "
            f"{self.total_time:.4f}s vs fault-free "
            f"{self.baseline_time:.4f}s ({self.overhead_factor:.2f}x)"
        ]
        for s in self.stages:
            marker = " (re-tuned)" if s.retuned else ""
            lines.append(
                f"  stage {s.stage:<12s} @{s.nodes} nodes "
                f"{s.stage_time:8.4f}s, handoff {s.handoff_time:.4f}s"
                + marker
            )
            if s.recovery is not None and s.recovery.failed:
                for line in s.recovery.describe().splitlines():
                    lines.append("    " + line)
        return "\n".join(lines)


def replan_pipeline(
    pipeline,
    decisions: Dict[str, Decision],
    params: MachineParams = LASSEN,
    *,
    fault_plan: FaultPlan,
    memory: Optional[MemoryKind] = None,
    mode: str = "orbit",
    check_capacity: bool = True,
    strategy: str = "auto",
    jobs: int = 1,
    seed: int = 0,
    max_dims: int = 3,
    timeout_s: Optional[float] = None,
    workload: str = "pipeline",
) -> PipelineRecoveryReport:
    """Walk a pipeline through its fault plan, replanning as events hit.

    Stages execute in topological order on a *current* cluster that
    changes along the way: a :class:`~repro.faults.events.Resize`
    before a stage regrids to the requested node count, and a
    :class:`~repro.faults.events.KillNode` scoped to a stage shrinks it
    by one node mid-stage (handled by :func:`replan_kernel`). After
    either event, downstream stages whose decision no longer matches
    the machine are re-tuned warm-started from their pre-event
    decisions, and intermediates are migrated between grids through
    :func:`redistribution_trace` priced on the union cluster.
    """
    from repro.tuner.search import tune  # local: import cycle

    memory = memory if memory is not None else pipeline.default_memory()
    baseline = (
        pipeline.schedule_with(decisions, memory=memory)
        .simulate(params, check_capacity=check_capacity, mode=mode)
        .total_time
    )

    current = pipeline.cluster
    #: tensor -> (format, grid shape, cluster it lives on)
    layouts: Dict[str, Tuple[object, Tuple[int, ...], Cluster]] = {}
    outcomes: List[StageRecovery] = []
    total = 0.0
    for stage in pipeline.stages:
        resize = fault_plan.resize_before(stage.name)
        if resize is not None and resize.nodes != current.num_nodes:
            current = sized_cluster(current, resize.nodes)
        decision = decisions[stage.name]
        retuned = False
        if math.prod(decision.grid) != current.num_processors:
            result = tune(
                copy.deepcopy(stage.assignment),
                current,
                params,
                memory=memory,
                mode=mode,
                check_capacity=check_capacity,
                strategy=strategy,
                jobs=jobs,
                seed=seed,
                max_dims=max_dims,
                timeout_s=timeout_s,
                warm_start=decision,
            )
            decision = result.decision
            retuned = True
        machine = Machine(current, Grid(*decision.grid))
        work = copy.deepcopy(stage.assignment)
        schedule, formats = realize(work, machine, decision, memory=memory)
        kernel = compile_kernel(schedule, machine)

        # Handoffs: every upstream intermediate this stage reads moves
        # from the layout its producer left into this stage's expected
        # layout. When the grids live on different-sized clusters
        # (regrid or post-failure), both endpoints are replayed on the
        # union cluster — row-major prefix placement puts each grid on
        # the nodes it actually uses.
        handoff_bytes = 0
        handoff_time = 0.0
        for name in stage.inputs:
            if name not in layouts:
                continue
            src_fmt, src_grid, src_cluster = layouts[name]
            dst_fmt = formats[name]
            union = (
                src_cluster
                if src_cluster.num_nodes >= current.num_nodes
                else current
            )
            src_m = Machine(union, Grid(*src_grid))
            dst_m = Machine(union, Grid(*decision.grid))
            if src_cluster is current and formats_equivalent(
                src_fmt, src_m, dst_fmt, dst_m
            ):
                continue
            tensor = next(
                t for t in work.tensors() if t.name == name
            )
            trace = redistribution_trace(
                tensor, src_fmt, src_m, dst_fmt, dst_m
            )
            handoff_bytes += trace.total_copy_bytes
            handoff_time += CostModel(union, params).time_trace(
                trace
            ).total_time

        kill = fault_plan.kill_for(stage.name)
        recovery = None
        if kill is not None:
            # Re-scope the kill as a single-kernel plan (stage=None) so
            # the executor's unscoped lookup finds it.
            stage_plan = FaultPlan(
                events=(KillNode(phase=kill.phase, node=kill.node),),
                seed=fault_plan.seed,
            )
            recovery = replan_kernel(
                stage.assignment,
                current,
                params,
                decision=decision,
                fault_plan=stage_plan,
                memory=memory,
                mode=mode,
                check_capacity=check_capacity,
                strategy=strategy,
                jobs=jobs,
                seed=seed,
                max_dims=max_dims,
                timeout_s=timeout_s,
                workload=stage.name,
            )
            stage_time = recovery.total_time
            if recovery.failed:
                current = sized_cluster(current, current.num_nodes - 1)
                decision = Decision.decode(recovery.retuned_decision)
                retuned = True
                # The stage's output materializes in the re-tuned
                # layout on the surviving cluster.
                re_work = copy.deepcopy(stage.assignment)
                re_machine = Machine(current, Grid(*decision.grid))
                _sched, formats = realize(
                    re_work, re_machine, decision, memory=memory
                )
        else:
            stage_time = kernel.simulate(
                params, check_capacity=check_capacity, mode=mode
            ).total_time

        layouts[stage.output] = (
            formats[stage.output], tuple(decision.grid), current
        )
        total += stage_time + handoff_time
        outcomes.append(StageRecovery(
            stage=stage.name,
            nodes=current.num_nodes,
            decision=decision.encode(),
            retuned=retuned,
            stage_time=stage_time,
            handoff_bytes=int(handoff_bytes),
            handoff_time=handoff_time,
            recovery=recovery,
        ))
    return PipelineRecoveryReport(
        workload=workload,
        plan=fault_plan.encode(),
        baseline_time=baseline,
        stages=tuple(outcomes),
        total_time=total,
    )
