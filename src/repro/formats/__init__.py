"""The format language (Section 3.2): tensor distribution notation.

A tensor's format describes how it is stored *and where it lives on the
machine*. The distribution half is the paper's tensor distribution notation
``T X -> Y M``: tensor dimensions named on the left are partitioned across
same-named machine dimensions on the right; remaining machine dimensions
either fix the partition to a coordinate (a digit) or broadcast it (``*``).
"""

from repro.formats.distribution import Distribution, DimName, Broadcast, Fixed
from repro.formats.format import Format

__all__ = ["Broadcast", "DimName", "Distribution", "Fixed", "Format"]
