"""Tensor distribution notation (paper Section 3.2, Figures 4 and 5).

A statement ``T X -> Y M`` maps every coordinate of tensor ``T`` to a
non-empty set of processor coordinates of machine ``M``. It is the
composition of two functions:

* ``P`` (the *coloring*): coordinates of ``T`` are grouped into equivalence
  classes, one per point of the partitioned machine dimensions. We use the
  paper's blocked partitioning function: contiguous equal blocks.
* ``F``: each color is expanded to full machine coordinates by fixing or
  broadcasting the remaining machine dimensions.

This module implements the notation with both a structured API and the
string mini-language used throughout the paper, e.g.::

    Distribution.parse("xy -> xy", machine_dims=2)    # 2-D tiling (Fig 5c)
    Distribution.parse("xy -> x", machine_dims=1)     # row blocks (Fig 5b)
    Distribution.parse("xy -> xy0", machine_dims=3)   # fix to a face (Fig 5d)
    Distribution.parse("xy -> xy*", machine_dims=3)   # replicate (Fig 5e)
    Distribution.parse("xyz -> xy", machine_dims=2)   # 3-tensor (Fig 5f)
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.util.errors import DistributionError
from repro.util.geometry import Interval, Rect, split_evenly


@dataclass(frozen=True)
class DimName:
    """A named machine dimension: partitions the same-named tensor dim."""

    name: str


@dataclass(frozen=True)
class Fixed:
    """A machine dimension fixed to one coordinate (e.g. the ``0`` in
    ``xy0``): the tensor lives only on that face of the machine."""

    value: int


@dataclass(frozen=True)
class Broadcast:
    """A machine dimension marked ``*``: the partition is replicated
    across every coordinate of the dimension."""


MachineDim = Union[DimName, Fixed, Broadcast]


class Distribution:
    """One level of tensor distribution notation.

    Parameters
    ----------
    tensor_dims:
        One single-character name per tensor dimension (the ``X`` sequence).
    machine_dims:
        One :data:`MachineDim` per machine grid dimension (the ``Y``
        sequence).
    """

    def __init__(
        self,
        tensor_dims: Sequence[str],
        machine_dims: Sequence[MachineDim],
    ):
        self.tensor_dims: Tuple[str, ...] = tuple(tensor_dims)
        self.machine_dims: Tuple[MachineDim, ...] = tuple(machine_dims)
        self._validate()
        # For each machine dim: the index of the tensor dim it partitions,
        # or None for Fixed/Broadcast dims.
        self.partitioned: List[Optional[int]] = []
        for mdim in self.machine_dims:
            if isinstance(mdim, DimName):
                self.partitioned.append(self.tensor_dims.index(mdim.name))
            else:
                self.partitioned.append(None)

    def _validate(self):
        if len(set(self.tensor_dims)) != len(self.tensor_dims):
            raise DistributionError(
                f"duplicate tensor dimension names in {self.tensor_dims}"
            )
        names = [m.name for m in self.machine_dims if isinstance(m, DimName)]
        if len(set(names)) != len(names):
            raise DistributionError(
                f"duplicate machine dimension names in {self.machine_dims}"
            )
        missing = [n for n in names if n not in self.tensor_dims]
        if missing:
            raise DistributionError(
                f"machine dimension names {missing} do not name tensor "
                f"dimensions (tensor dims are {list(self.tensor_dims)})"
            )

    @property
    def tensor_ndim(self) -> int:
        return len(self.tensor_dims)

    @property
    def machine_ndim(self) -> int:
        return len(self.machine_dims)

    @staticmethod
    def parse(notation: str, machine_dims: Optional[int] = None) -> "Distribution":
        """Parse the paper's string form, e.g. ``"xy -> xy0*"``.

        Left of ``->``: one letter per tensor dimension. Right: letters
        (partition), digits (fix), or ``*`` (broadcast). Whitespace is
        ignored. ``machine_dims``, when given, is checked against the
        right-hand side length.
        """
        if "->" not in notation:
            raise DistributionError(
                f"distribution {notation!r} must contain '->'"
            )
        lhs, rhs = notation.split("->", 1)
        tensor_names = [c for c in lhs if not c.isspace()]
        mdims: List[MachineDim] = []
        for c in rhs:
            if c.isspace():
                continue
            if c == "*":
                mdims.append(Broadcast())
            elif c.isdigit():
                mdims.append(Fixed(int(c)))
            elif c.isalpha():
                mdims.append(DimName(c))
            else:
                raise DistributionError(
                    f"unexpected character {c!r} in distribution {notation!r}"
                )
        dist = Distribution(tensor_names, mdims)
        if machine_dims is not None and dist.machine_ndim != machine_dims:
            raise DistributionError(
                f"distribution {notation!r} names {dist.machine_ndim} machine "
                f"dimensions but the machine has {machine_dims}"
            )
        return dist

    @staticmethod
    def tiled(ndim: int) -> "Distribution":
        """The n-D tiling ``T x..z -> x..z M`` (paper Figure 5c)."""
        names = [chr(ord("a") + i) for i in range(ndim)]
        return Distribution(names, [DimName(n) for n in names])

    def check_machine(self, machine_shape: Sequence[int]):
        """Validate against a concrete machine level shape."""
        if len(machine_shape) != self.machine_ndim:
            raise DistributionError(
                f"distribution has {self.machine_ndim} machine dims, machine "
                f"level has {len(machine_shape)}"
            )
        for mdim, extent in zip(self.machine_dims, machine_shape):
            if isinstance(mdim, Fixed) and not 0 <= mdim.value < extent:
                raise DistributionError(
                    f"fixed coordinate {mdim.value} outside machine dim of "
                    f"extent {extent}"
                )

    # ------------------------------------------------------------------
    # Semantics: P (coloring) and F (color -> processors).
    # ------------------------------------------------------------------

    def color_of(
        self, coords: Sequence[int], tensor_shape: Sequence[int],
        machine_shape: Sequence[int],
    ) -> Tuple[int, ...]:
        """``P``: the color (point in the partitioned machine dims) of a
        tensor coordinate."""
        color = []
        for mdim_idx, _extent in zip_partitioned(self, machine_shape):
            tdim = self.partitioned[mdim_idx]
            color.append(
                block_index(
                    coords[tdim], tensor_shape[tdim], machine_shape[mdim_idx]
                )
            )
        return tuple(color)

    def processors_of_color(
        self, color: Sequence[int], machine_shape: Sequence[int]
    ) -> Iterator[Tuple[int, ...]]:
        """``F``: expand a color to full machine coordinates.

        Fixed dimensions take their target value; broadcast dimensions
        expand to every coordinate (paper's running 2x2x2 example).
        """
        choices: List[Sequence[int]] = []
        color_iter = iter(color)
        for mdim, extent in zip(self.machine_dims, machine_shape):
            if isinstance(mdim, DimName):
                choices.append([next(color_iter)])
            elif isinstance(mdim, Fixed):
                choices.append([mdim.value])
            else:
                choices.append(range(extent))
        return product(*choices)

    # ------------------------------------------------------------------
    # Owner queries used by the runtime.
    # ------------------------------------------------------------------

    def owned_rect(
        self,
        machine_coords: Sequence[int],
        tensor_rect: Rect,
        machine_shape: Sequence[int],
    ) -> Optional[Rect]:
        """The sub-rectangle of ``tensor_rect`` homed at a machine point.

        Returns ``None`` when the machine point holds no piece (it is off
        the fixed face). Tensor dimensions that are not partitioned span
        their full extent in each piece (Figures 5b, 5f).
        """
        if len(machine_coords) != self.machine_ndim:
            raise DistributionError(
                f"expected {self.machine_ndim} machine coords, got "
                f"{tuple(machine_coords)}"
            )
        intervals = list(tensor_rect.intervals)
        for mdim_idx, mdim in enumerate(self.machine_dims):
            coord = machine_coords[mdim_idx]
            if isinstance(mdim, Fixed):
                if coord != mdim.value:
                    return None
            elif isinstance(mdim, DimName):
                tdim = self.partitioned[mdim_idx]
                base = tensor_rect.intervals[tdim]
                piece = split_evenly(
                    base.size, machine_shape[mdim_idx], coord
                ).shift(base.lo)
                intervals[tdim] = piece
        return Rect(tuple(intervals))

    def owners_covering(
        self,
        needed: Rect,
        tensor_rect: Rect,
        machine_shape: Sequence[int],
    ) -> List[Tuple[Optional[int], ...]]:
        """Machine coordinate *patterns* whose home piece covers ``needed``.

        Each pattern has a concrete coordinate for partitioned and fixed
        machine dimensions and ``None`` for broadcast dimensions (any
        coordinate there holds a replica; the runtime picks the nearest).
        Returns ``[]`` if no single home piece covers the request (the
        caller must then split the request; see :meth:`cover_pieces`).
        """
        pattern: List[Optional[int]] = []
        for mdim_idx, mdim in enumerate(self.machine_dims):
            if isinstance(mdim, Fixed):
                pattern.append(mdim.value)
            elif isinstance(mdim, Broadcast):
                pattern.append(None)
            else:
                tdim = self.partitioned[mdim_idx]
                base = tensor_rect.intervals[tdim]
                need = needed.intervals[tdim]
                pieces = machine_shape[mdim_idx]
                block = block_index(need.lo - base.lo, base.size, pieces)
                piece = split_evenly(base.size, pieces, block).shift(base.lo)
                if not piece.contains(need):
                    return []
                pattern.append(block)
        return [tuple(pattern)]

    def cover_pieces(
        self,
        needed: Rect,
        tensor_rect: Rect,
        machine_shape: Sequence[int],
    ) -> List[Tuple[Tuple[Optional[int], ...], Rect]]:
        """Decompose ``needed`` into per-owner pieces.

        Used when a request spans multiple home blocks (e.g. data
        redistribution between formats). Each element is ``(pattern,
        piece)`` where ``pattern`` is as in :meth:`owners_covering`.
        """
        # Per machine dim, the list of (block index, interval piece).
        per_dim_choices: List[List[Tuple[Optional[int], Optional[Interval]]]] = []
        for mdim_idx, mdim in enumerate(self.machine_dims):
            if isinstance(mdim, Fixed):
                per_dim_choices.append([(mdim.value, None)])
            elif isinstance(mdim, Broadcast):
                per_dim_choices.append([(None, None)])
            else:
                tdim = self.partitioned[mdim_idx]
                base = tensor_rect.intervals[tdim]
                need = needed.intervals[tdim]
                pieces = machine_shape[mdim_idx]
                options: List[Tuple[Optional[int], Optional[Interval]]] = []
                for block in range(pieces):
                    piece = split_evenly(base.size, pieces, block).shift(base.lo)
                    overlap = piece.intersect(need)
                    if not overlap.is_empty:
                        options.append((block, overlap))
                per_dim_choices.append(options)
        results = []
        for combo in product(*per_dim_choices):
            pattern = tuple(block for block, _ in combo)
            intervals = list(needed.intervals)
            for mdim_idx, (block, overlap) in enumerate(combo):
                if overlap is not None:
                    tdim = self.partitioned[mdim_idx]
                    intervals[tdim] = overlap
            piece_rect = Rect(tuple(intervals))
            if not piece_rect.is_empty:
                results.append((pattern, piece_rect))
        return results

    def replication_factor(self, machine_shape: Sequence[int]) -> int:
        """How many machine points hold each piece (product of broadcast
        dimension extents). Drives replicated-memory accounting."""
        factor = 1
        for mdim, extent in zip(self.machine_dims, machine_shape):
            if isinstance(mdim, Broadcast):
                factor *= extent
        return factor

    def home_points(
        self, machine_shape: Sequence[int]
    ) -> Iterator[Tuple[int, ...]]:
        """All machine points that hold a home piece of the tensor."""
        choices: List[Sequence[int]] = []
        for mdim, extent in zip(self.machine_dims, machine_shape):
            if isinstance(mdim, Fixed):
                choices.append([mdim.value])
            else:
                choices.append(range(extent))
        return product(*choices)

    def notation(self) -> str:
        """Round-trip back to the paper's string form."""
        rhs = []
        for mdim in self.machine_dims:
            if isinstance(mdim, DimName):
                rhs.append(mdim.name)
            elif isinstance(mdim, Fixed):
                rhs.append(str(mdim.value))
            else:
                rhs.append("*")
        return f"{''.join(self.tensor_dims)} -> {''.join(rhs)}"

    def __repr__(self) -> str:
        return f"Distribution({self.notation()!r})"


def block_index(offset: int, extent: int, pieces: int) -> int:
    """Which blocked-partition piece a coordinate offset falls into."""
    from repro.util.geometry import ceil_div

    if extent == 0:
        return 0
    tile = ceil_div(extent, pieces)
    return min(offset // tile, pieces - 1)


def zip_partitioned(dist: Distribution, machine_shape: Sequence[int]):
    """Indices and extents of the machine dims that partition tensor dims."""
    for idx, (mdim, extent) in enumerate(zip(dist.machine_dims, machine_shape)):
        if isinstance(mdim, DimName):
            yield idx, extent
