"""Tensor formats: mode storage plus a distribution chain and memory kind.

This work considers dense computations only (as the paper does), so every
mode is ``Dense``; the interesting half of the format is the distribution —
one :class:`~repro.formats.distribution.Distribution` per machine hierarchy
level — and the memory kind the tensor should reside in (Figure 2 pins
matrices into ``Memory::GPU_MEM``).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.machine.cluster import MemoryKind
from repro.machine.machine import Machine
from repro.util.errors import DistributionError
from repro.util.geometry import Rect
from repro.formats.distribution import (
    Broadcast,
    DimName,
    Distribution,
    Fixed,
)


class Mode(enum.Enum):
    """Per-dimension storage format. Dense is the only kind in this paper;
    the enum exists because the format language is designed to extend to
    sparse modes (the paper's future work, SpDISTAL)."""

    DENSE = "dense"


class Format:
    """A tensor format: per-mode storage, distribution chain, memory kind.

    Parameters
    ----------
    distributions:
        One distribution per machine grid level (hierarchical placement,
        Section 3.2 "Hierarchy"), a single distribution, or a notation
        string such as ``"xy -> xy0"``.
    memory:
        Which memory kind home instances live in. Defaults to system
        memory; GPU schedules typically pin tensors in ``GPU_FB``.
    """

    def __init__(
        self,
        distributions: Union[str, Distribution, Sequence[Union[str, Distribution]], None] = None,
        memory: MemoryKind = MemoryKind.SYSTEM_MEM,
        modes: Optional[Sequence[Mode]] = None,
    ):
        if distributions is None:
            levels: List[Distribution] = []
        elif isinstance(distributions, (str, Distribution)):
            levels = [_as_distribution(distributions)]
        else:
            levels = [_as_distribution(d) for d in distributions]
        self.distributions: Tuple[Distribution, ...] = tuple(levels)
        self.memory = memory
        self.modes = tuple(modes) if modes is not None else None

    @property
    def is_distributed(self) -> bool:
        return bool(self.distributions)

    def check(self, tensor_ndim: int, machine: Machine):
        """Validate the distribution chain against a tensor and machine."""
        if not self.distributions:
            return
        if len(self.distributions) > len(machine.levels):
            raise DistributionError(
                f"format has {len(self.distributions)} distribution levels "
                f"but the machine has {len(machine.levels)} grid levels"
            )
        for dist, grid in zip(self.distributions, machine.levels):
            if dist.tensor_ndim != tensor_ndim:
                raise DistributionError(
                    f"distribution {dist.notation()!r} names "
                    f"{dist.tensor_ndim} tensor dims; tensor has {tensor_ndim}"
                )
            dist.check_machine(grid.shape)

    def owned_rect(
        self,
        machine: Machine,
        machine_coords: Sequence[int],
        tensor_shape: Sequence[int],
    ) -> Optional[Rect]:
        """Home sub-rectangle at a full machine coordinate, or ``None``.

        Hierarchical chains compose: level 0 carves the tensor by the node
        grid, level 1 carves each node piece by the local grid, and so on.
        Machine levels beyond the chain replicate (every local processor of
        a node views the node's piece).
        """
        rect = Rect.full(tensor_shape)
        if not self.distributions:
            # Undistributed tensors are homed at the machine origin.
            if any(c != 0 for c in machine_coords):
                return None
            return rect
        per_level = machine.level_coords(machine_coords)
        for dist, grid, coords in zip(
            self.distributions, machine.levels, per_level
        ):
            nxt = dist.owned_rect(coords, rect, grid.shape)
            if nxt is None:
                return None
            rect = nxt
        return rect

    def owner_pattern(
        self,
        machine: Machine,
        needed: Rect,
        tensor_shape: Sequence[int],
    ) -> Optional[List[Optional[int]]]:
        """Machine-coordinate pattern of a home piece covering ``needed``.

        Concrete coordinates for partitioned/fixed machine dimensions,
        ``None`` where any coordinate holds a replica (broadcast dims and
        levels beyond the distribution chain). Returns ``None`` when no
        single home piece covers the request (use :meth:`owner_pieces`).
        """
        if not self.distributions:
            return [0] * machine.dim
        pattern: List[Optional[int]] = []
        rect = Rect.full(tensor_shape)
        for dist, grid in zip(self.distributions, machine.levels):
            pats = dist.owners_covering(needed, rect, grid.shape)
            if not pats:
                return None
            pat = pats[0]
            pattern.extend(pat)
            concrete = [p if p is not None else 0 for p in pat]
            rect = dist.owned_rect(concrete, rect, grid.shape)
            if rect is None:
                return None
        pattern.extend([None] * (machine.dim - len(pattern)))
        return pattern

    def owner_pattern_batch(
        self,
        machine: Machine,
        los: Optional[np.ndarray],
        his: Optional[np.ndarray],
        tensor_shape: Sequence[int],
        count: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`owner_pattern` over request endpoint columns.

        ``los``/``his`` are ``(ndim, k)`` endpoint matrices of ``k``
        non-empty request rectangles (``None`` with ``count=k`` for
        0-dim tensors). Returns ``(pattern, valid)``:

        * ``pattern`` — ``(machine.dim, k)`` int64 matrix; concrete
          coordinates for partitioned/fixed machine dimensions, ``-1``
          where any coordinate holds a replica;
        * ``valid[j]`` — True when a single home piece covers request
          ``j`` (exactly when the scalar method returns a pattern).

        The arithmetic mirrors ``Distribution.owners_covering`` /
        ``owned_rect`` element-wise, including the hierarchical level
        composition; requests a block index would throw on (negative
        offsets) are reported invalid instead, so callers fall back to
        the scalar path member by member.
        """
        k = count if count is not None else los.shape[1]
        pattern = np.full((machine.dim, k), -1, dtype=np.int64)
        valid = np.ones(k, dtype=bool)
        if not self.distributions:
            pattern[:, :] = 0
            return pattern, valid
        ndim = len(tensor_shape)
        cur_lo = np.zeros((ndim, k), dtype=np.int64)
        cur_hi = np.empty((ndim, k), dtype=np.int64)
        for d in range(ndim):
            cur_hi[d, :] = tensor_shape[d]
        offset = 0
        for dist, grid in zip(self.distributions, machine.levels):
            for j, mdim in enumerate(dist.machine_dims):
                if isinstance(mdim, Fixed):
                    pattern[offset + j, :] = mdim.value
                    continue
                if isinstance(mdim, Broadcast):
                    continue
                tdim = dist.partitioned[j]
                pieces = grid.shape[j]
                base_lo = cur_lo[tdim]
                size = cur_hi[tdim] - base_lo
                # block_index: ceil tiles, clamped to the last piece;
                # zero-extent dims map to block 0 (whose piece is empty
                # and therefore covers nothing non-empty).
                tile = -(-size // pieces)
                block = np.where(
                    size > 0,
                    (los[tdim] - base_lo) // np.maximum(tile, 1),
                    0,
                )
                in_range = block >= 0
                block = np.minimum(np.maximum(block, 0), pieces - 1)
                # split_evenly(size, pieces, block).shift(base_lo)
                piece_lo = base_lo + np.minimum(block * tile, size)
                piece_hi = np.minimum(piece_lo + tile, base_lo + size)
                covers = (piece_lo <= los[tdim]) & (his[tdim] <= piece_hi)
                valid &= in_range & covers
                pattern[offset + j, :] = block
                cur_lo[tdim] = piece_lo
                cur_hi[tdim] = piece_hi
            offset += grid.dim
        return pattern, valid

    def owned_rect_batch(
        self,
        machine: Machine,
        coords: np.ndarray,
        tensor_shape: Sequence[int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`owned_rect` over machine-coordinate rows.

        ``coords`` is a ``(k, machine.dim)`` int64 matrix of machine
        points. Returns ``(lo, hi, ok)``:

        * ``lo``/``hi`` — ``(ndim, k)`` endpoint columns of each point's
          home sub-rectangle;
        * ``ok[j]`` — True when the point holds a piece at all (exactly
          when the scalar method returns a rectangle; the rectangle may
          still be empty for trailing blocks of non-divisible extents —
          callers test ``hi > lo`` where emptiness matters).

        The arithmetic mirrors ``Distribution.owned_rect`` element-wise
        (``split_evenly`` blocked partitioning), composing hierarchical
        levels exactly as the scalar chain does.
        """
        k = coords.shape[0]
        ndim = len(tensor_shape)
        lo = np.zeros((ndim, k), dtype=np.int64)
        hi = np.empty((ndim, k), dtype=np.int64)
        for d in range(ndim):
            hi[d, :] = tensor_shape[d]
        if not self.distributions:
            # Undistributed tensors are homed at the machine origin.
            ok = ~np.any(coords != 0, axis=1)
            return lo, hi, ok
        ok = np.ones(k, dtype=bool)
        offset = 0
        for dist, grid in zip(self.distributions, machine.levels):
            for j, mdim in enumerate(dist.machine_dims):
                c = coords[:, offset + j]
                if isinstance(mdim, Fixed):
                    ok &= c == mdim.value
                elif isinstance(mdim, DimName):
                    tdim = dist.partitioned[j]
                    base_lo = lo[tdim]
                    size = hi[tdim] - base_lo
                    pieces = grid.shape[j]
                    # split_evenly(size, pieces, c).shift(base_lo)
                    tile = -(-size // pieces)
                    piece_lo = base_lo + np.minimum(c * tile, size)
                    piece_hi = np.minimum(piece_lo + tile, base_lo + size)
                    lo[tdim] = piece_lo
                    hi[tdim] = piece_hi
            offset += grid.dim
        return lo, hi, ok

    def owner_pieces(
        self,
        machine: Machine,
        needed: Rect,
        tensor_shape: Sequence[int],
    ) -> List[Tuple[Tuple[Optional[int], ...], Rect]]:
        """Decompose a request spanning several home pieces.

        Works level by level for hierarchical chains: the request is
        split by the node-level partitioning, then each piece is split
        again by the within-node partitioning, and so on.
        """
        if not self.distributions:
            return [(tuple([0] * machine.dim), needed)]
        # (pattern prefix, request piece, rect owned so far)
        state = [((), needed, Rect.full(tensor_shape))]
        used_dims = 0
        for dist, grid in zip(self.distributions, machine.levels):
            used_dims += grid.dim
            next_state = []
            for prefix, request, rect in state:
                for pattern, piece in dist.cover_pieces(
                    request, rect, grid.shape
                ):
                    concrete = [p if p is not None else 0 for p in pattern]
                    sub_rect = dist.owned_rect(concrete, rect, grid.shape)
                    if sub_rect is None:
                        continue
                    next_state.append(
                        (prefix + tuple(pattern), piece, sub_rect)
                    )
            state = next_state
        pad = machine.dim - used_dims
        return [
            (tuple(list(prefix) + [None] * pad), piece)
            for prefix, piece, _rect in state
        ]

    def notation(self) -> str:
        """Human-readable distribution chain."""
        if not self.distributions:
            return "(undistributed)"
        return "; ".join(d.notation() for d in self.distributions)

    def __repr__(self) -> str:
        return f"Format({self.notation()!r}, memory={self.memory.value})"


def _as_distribution(value: Union[str, Distribution]) -> Distribution:
    if isinstance(value, Distribution):
        return value
    return Distribution.parse(value)
