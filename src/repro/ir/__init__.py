"""Compiler IRs: tensor index notation and concrete index notation.

The computation language (Section 2) is *tensor index notation*: assignments
whose right-hand sides add and multiply tensor accesses, with reductions
implied by variables that appear only on the right. It lowers to *concrete
index notation* (Section 5.1): an explicit loop tree whose ``s.t.`` clauses
record applied scheduling relations. The provenance graph ties the two
together: every derived index variable knows how to reconstruct the value
(or interval of values) of the variables it was derived from, which is the
bounds analysis that drives partitioning, communication and leaf slicing.
"""

from repro.ir.expr import Access, Add, Expr, IndexVar, Literal, Mul, index_vars
from repro.ir.tensor import Assignment, TensorVar, reference_einsum
from repro.ir.concrete import Assign, Forall, Sequence, Stmt
from repro.ir.provenance import (
    FuseRel,
    RotateRel,
    SplitRel,
    VarGraph,
)
from repro.ir.lower_tin import lower_to_concrete

__all__ = [
    "Access",
    "Add",
    "Assign",
    "Assignment",
    "Expr",
    "Forall",
    "FuseRel",
    "IndexVar",
    "Literal",
    "Mul",
    "RotateRel",
    "Sequence",
    "SplitRel",
    "Stmt",
    "TensorVar",
    "VarGraph",
    "index_vars",
    "lower_to_concrete",
    "reference_einsum",
]
