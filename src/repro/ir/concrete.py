"""Concrete index notation (paper Section 5.1, Figure 14).

A lower-level IR than tensor index notation: an explicit tree of ``forall``
loops around assignments, with ``s.t.`` clauses recording scheduling
relations. Scheduling commands are rewrite rules over this tree (Section
5.2); backends lower it further — here, into a distributed runtime plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.expr import Access, Expr, IndexVar


class Stmt:
    """Base class of concrete index notation statements."""

    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError

    def foralls(self) -> List["Forall"]:
        """All foralls in the tree, outermost first (pre-order)."""
        out: List[Forall] = []
        _collect_foralls(self, out)
        return out

    def __repr__(self) -> str:
        return self.pretty()


@dataclass
class Assign(Stmt):
    """``lhs op= rhs`` at the bottom of a loop nest.

    ``reduce`` marks accumulation (``+=``); all kernels with reduction
    variables accumulate into a zero-initialized output.
    """

    lhs: Access
    rhs: Expr
    reduce: bool

    def pretty(self, indent: int = 0) -> str:
        op = "+=" if self.reduce else "="
        return " " * indent + f"{self.lhs!r} {op} {self.rhs!r}"


@dataclass
class Forall(Stmt):
    """A loop over an index variable, with scheduling tags.

    Tags (the ``s.t.`` clause contents relevant to distribution):

    * ``distributed`` — this loop's iterations run on different processors
      at the same time (Section 3.3 "Distribute"). ``machine_level`` picks
      the grid level of a hierarchical machine.
    * ``communicated`` — tensors whose data movement is aggregated at this
      loop: one entry per ``communicate(T, i)`` (Section 3.3).
    * ``substituted`` — a leaf-kernel name when the subtree below was
      substituted by an optimized kernel (Figure 2's CuBLAS GeMM leaf).
    """

    var: IndexVar
    body: Stmt
    distributed: bool = False
    machine_level: int = 0
    communicated: List[str] = field(default_factory=list)
    substituted: Optional[str] = None
    parallelized: bool = False
    relations: List[str] = field(default_factory=list)

    def pretty(self, indent: int = 0) -> str:
        tags = []
        if self.distributed:
            level = f"@L{self.machine_level}" if self.machine_level else ""
            tags.append(f"distribute{level}")
        for name in self.communicated:
            tags.append(f"communicate({name})")
        if self.substituted:
            tags.append(f"substitute({self.substituted})")
        tags.extend(self.relations)
        suffix = f"  s.t. {', '.join(tags)}" if tags else ""
        head = " " * indent + f"forall {self.var.name}{suffix}"
        return head + "\n" + self.body.pretty(indent + 2)


@dataclass
class Sequence(Stmt):
    """Sequential composition ``S ; S`` (used by precompute workspaces)."""

    stmts: List[Stmt]

    def pretty(self, indent: int = 0) -> str:
        return "\n".join(s.pretty(indent) for s in self.stmts)


def _collect_foralls(stmt: Stmt, out: List[Forall]):
    if isinstance(stmt, Forall):
        out.append(stmt)
        _collect_foralls(stmt.body, out)
    elif isinstance(stmt, Sequence):
        for child in stmt.stmts:
            _collect_foralls(child, out)


def loop_order(stmt: Stmt) -> List[IndexVar]:
    """The loop variables of a (straight-line) nest, outermost first."""
    return [f.var for f in stmt.foralls()]


def find_forall(stmt: Stmt, var: IndexVar) -> Optional[Forall]:
    """The forall binding ``var``, or None."""
    for forall in stmt.foralls():
        if forall.var == var:
            return forall
    return None


def replace_body(stmt: Stmt, var: IndexVar, new_body: Stmt) -> bool:
    """Replace the body of the forall binding ``var``; True on success."""
    forall = find_forall(stmt, var)
    if forall is None:
        return False
    forall.body = new_body
    return True
