"""Tensor index notation expressions.

An expression is built from *accesses* — a tensor indexed by a list of
index variables, like ``B(i, k)`` — combined with ``+`` and ``*``. Python
operator overloading gives the paper's surface syntax:

    A[i, j] is an Access; B[i, k] * C[k, j] is a Mul of two Accesses.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, Union


class IndexVar:
    """An index variable (paper's ``IndexVar``).

    Identity is by name: two ``IndexVar("i")`` are the same variable. Index
    variables correspond to loops in concrete index notation; scheduling
    commands derive new variables (``io``, ``ii``, ...) from them.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("index variable name must be non-empty")
        self.name = name

    def __hash__(self):
        return hash(self.name)

    def __eq__(self, other):
        return isinstance(other, IndexVar) and self.name == other.name

    def __repr__(self) -> str:
        return self.name


def index_vars(names: str) -> List[IndexVar]:
    """Create several index variables at once: ``i, j, k = index_vars("i j k")``."""
    return [IndexVar(n) for n in names.replace(",", " ").split()]


class Expr:
    """Base class of index expressions."""

    def __add__(self, other: "ExprLike") -> "Add":
        return Add(self, _as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Add":
        return Add(_as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Mul":
        return Mul(self, _as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Mul":
        return Mul(_as_expr(other), self)

    def accesses(self) -> Iterator["Access"]:
        """All tensor accesses in the expression, left to right."""
        raise NotImplementedError

    def index_variables(self) -> List[IndexVar]:
        """All distinct index variables, in first-appearance order."""
        seen: List[IndexVar] = []
        for access in self.accesses():
            for var in access.indices:
                if var not in seen:
                    seen.append(var)
        return seen


class Access(Expr):
    """A tensor access ``T(i, j, ...)``.

    Scalars (0-dimensional tensors) are accesses with no indices.
    """

    def __init__(self, tensor, indices: Sequence[IndexVar]):
        from repro.ir.tensor import TensorVar

        if not isinstance(tensor, TensorVar):
            raise TypeError(f"Access expects a TensorVar, got {tensor!r}")
        if len(indices) != tensor.ndim:
            raise ValueError(
                f"tensor {tensor.name} has {tensor.ndim} dimensions but was "
                f"accessed with {len(indices)} indices"
            )
        if len(set(indices)) != len(indices):
            raise ValueError(
                f"repeated index variable in access to {tensor.name}: "
                f"{indices} (diagonal accesses are not supported)"
            )
        self.tensor = tensor
        self.indices: Tuple[IndexVar, ...] = tuple(indices)

    def accesses(self) -> Iterator["Access"]:
        yield self

    def __repr__(self) -> str:
        inner = ", ".join(v.name for v in self.indices)
        return f"{self.tensor.name}({inner})"


class Literal(Expr):
    """A numeric constant."""

    def __init__(self, value: float):
        self.value = float(value)

    def accesses(self) -> Iterator[Access]:
        return iter(())

    def __repr__(self) -> str:
        return repr(self.value)


class _Binary(Expr):
    op = "?"

    def __init__(self, lhs: Expr, rhs: Expr):
        self.lhs = lhs
        self.rhs = rhs

    def accesses(self) -> Iterator[Access]:
        yield from self.lhs.accesses()
        yield from self.rhs.accesses()

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class Add(_Binary):
    """Pointwise addition of two index expressions."""

    op = "+"


class Mul(_Binary):
    """Pointwise multiplication (contraction when combined with reduction)."""

    op = "*"


ExprLike = Union[Expr, int, float]


def _as_expr(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Literal(value)
    raise TypeError(f"cannot use {value!r} in an index expression")
