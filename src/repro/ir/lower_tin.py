"""Lowering tensor index notation to concrete index notation.

Statements lower into a loop nest "based on a left-to-right traversal of
the variables" (Section 5.1): free variables in left-hand-side order, then
reduction variables in first-appearance order, around a single assignment.
"""

from __future__ import annotations

from typing import Tuple

from repro.ir.concrete import Assign, Forall, Stmt
from repro.ir.provenance import VarGraph
from repro.ir.tensor import Assignment


def lower_to_concrete(assignment: Assignment) -> Tuple[Stmt, VarGraph]:
    """Build the default concrete-index-notation loop nest and its
    provenance graph (pre-scheduling, every variable is a root)."""
    body: Stmt = Assign(
        lhs=assignment.lhs,
        rhs=assignment.rhs,
        reduce=bool(assignment.reduction_vars) or assignment.accumulate,
    )
    for var in reversed(assignment.all_vars):
        body = Forall(var=var, body=body)
    graph = VarGraph(dict(assignment.domains()))
    return body, graph
