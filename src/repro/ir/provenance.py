"""The variable-derivation (provenance) graph and interval reconstruction.

Scheduling commands derive new index variables from old ones: ``split``
and ``divide`` decompose a variable into an outer/inner pair, ``collapse``
fuses two variables, and ``rotate`` re-times a variable by its distributed
peers. The provenance graph records these relations so that, given concrete
values (or whole ranges) for the *loop* variables actually present in the
scheduled loop nest, the compiler can reconstruct the interval of values
taken by any original tensor-indexing variable.

This single routine (:meth:`VarGraph.value_of`) is the paper's "standard
bounds analysis procedure using the extents of index variables" (Section
6.2): partitions, communication rectangles, and leaf slices all call it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.expr import IndexVar
from repro.util.errors import LoweringError, ScheduleError
from repro.util.geometry import Interval, ceil_div


@dataclass(frozen=True)
class SplitRel:
    """``parent = outer * tile + inner`` with ``inner`` of extent ``tile``.

    Covers both of the paper's commands: ``split(i, io, ii, chunk)`` fixes
    the inner extent (``tile = chunk``) and ``divide(i, io, ii, parts)``
    fixes the outer extent (``tile = ceil(extent/parts)``).
    """

    parent: IndexVar
    outer: IndexVar
    inner: IndexVar
    tile: int
    outer_extent: int
    kind: str  # "split" or "divide", for printing s.t. clauses


@dataclass(frozen=True)
class FuseRel:
    """``fused = first * extent(second) + second`` (the collapse command)."""

    first: IndexVar
    second: IndexVar
    fused: IndexVar
    second_extent: int


@dataclass(frozen=True)
class RotateRel:
    """``target = (result + sum(sources)) mod extent(target)``.

    The paper's symmetry-breaking ``rotate(t, I, r)`` (Section 3.3): for any
    fixed iteration of the other source variables, the same iteration of
    ``r`` touches a *different* value of ``t`` on every processor, producing
    systolic communication.
    """

    target: IndexVar
    sources: Tuple[IndexVar, ...]
    result: IndexVar


class VarGraph:
    """Derivation graph over index variables plus their extents."""

    def __init__(self, root_extents: Dict[IndexVar, int]):
        self._extents: Dict[IndexVar, int] = dict(root_extents)
        # Relation that *decomposed* a parent (split/divide).
        self._split_of: Dict[IndexVar, SplitRel] = {}
        # Relation that *fused* two vars; keyed by each component.
        self._fuse_of: Dict[IndexVar, FuseRel] = {}
        # Relation that rotated a target; keyed by the target.
        self._rotate_of: Dict[IndexVar, RotateRel] = {}
        self._derived: set = set()

    # ------------------------------------------------------------------
    # Construction (called by scheduling commands).
    # ------------------------------------------------------------------

    def knows(self, var: IndexVar) -> bool:
        return var in self._extents

    def extent(self, var: IndexVar) -> int:
        if var not in self._extents:
            raise ScheduleError(f"unknown index variable {var}")
        return self._extents[var]

    def _add_var(self, var: IndexVar, extent: int):
        if var in self._extents:
            raise ScheduleError(f"index variable {var} already exists")
        self._extents[var] = extent

    def _mark_decomposed(self, var: IndexVar):
        if var in self._derived:
            raise ScheduleError(f"index variable {var} was already scheduled away")
        self._derived.add(var)

    def add_split(
        self, parent: IndexVar, outer: IndexVar, inner: IndexVar, chunk: int
    ) -> SplitRel:
        """Record ``split(parent, outer, inner, chunk)``."""
        if chunk <= 0:
            raise ScheduleError(f"split chunk must be positive, got {chunk}")
        extent = self.extent(parent)
        rel = SplitRel(
            parent=parent,
            outer=outer,
            inner=inner,
            tile=chunk,
            outer_extent=ceil_div(extent, chunk),
            kind="split",
        )
        self._install_split(rel, extent)
        return rel

    def add_divide(
        self, parent: IndexVar, outer: IndexVar, inner: IndexVar, parts: int
    ) -> SplitRel:
        """Record ``divide(parent, outer, inner, parts)``."""
        if parts <= 0:
            raise ScheduleError(f"divide parts must be positive, got {parts}")
        extent = self.extent(parent)
        tile = ceil_div(extent, parts)
        rel = SplitRel(
            parent=parent,
            outer=outer,
            inner=inner,
            tile=tile,
            outer_extent=parts,
            kind="divide",
        )
        self._install_split(rel, extent)
        return rel

    def _install_split(self, rel: SplitRel, parent_extent: int):
        self._mark_decomposed(rel.parent)
        self._add_var(rel.outer, rel.outer_extent)
        self._add_var(rel.inner, rel.tile)
        self._split_of[rel.parent] = rel

    def add_fuse(
        self, first: IndexVar, second: IndexVar, fused: IndexVar
    ) -> FuseRel:
        """Record ``collapse(first, second, fused)``."""
        e1, e2 = self.extent(first), self.extent(second)
        rel = FuseRel(first=first, second=second, fused=fused, second_extent=e2)
        self._mark_decomposed(first)
        self._mark_decomposed(second)
        self._add_var(fused, e1 * e2)
        self._fuse_of[first] = rel
        self._fuse_of[second] = rel
        return rel

    def add_rotate(
        self, target: IndexVar, sources: Sequence[IndexVar], result: IndexVar
    ) -> RotateRel:
        """Record ``rotate(target, sources, result)``."""
        for src in sources:
            self.extent(src)  # must exist
        rel = RotateRel(
            target=target, sources=tuple(sources), result=result
        )
        self._mark_decomposed(target)
        self._add_var(result, self.extent(target))
        self._rotate_of[target] = rel
        return rel

    # ------------------------------------------------------------------
    # Reconstruction (bounds analysis).
    # ------------------------------------------------------------------

    def value_of(
        self,
        var: IndexVar,
        env: Dict[IndexVar, Interval],
        exact: bool = False,
    ) -> Interval:
        """Interval of values ``var`` takes under an environment.

        ``env`` maps the loop variables of the scheduled nest to intervals:
        points for loops already bound (outer/sequential iterations) and
        full extents for loops not yet entered. Reconstruction walks the
        derivation relations.

        With ``exact=True``, any step that would over-approximate (a
        rotation or fusion applied to a partial range) raises instead, so
        leaf slices are guaranteed exact; communication rectangles may
        over-approximate safely.
        """
        if var in env:
            return env[var].clip(Interval.extent(self.extent(var)))
        if var in self._split_of:
            rel = self._split_of[var]
            outer = self.value_of(rel.outer, env, exact)
            inner = self.value_of(rel.inner, env, exact)
            combined = outer.scale(rel.tile) + inner
            return combined.clip(Interval.extent(self.extent(var)))
        if var in self._rotate_of:
            rel = self._rotate_of[var]
            extent = self.extent(var)
            parts = [self.value_of(rel.result, env, exact)]
            parts += [self.value_of(s, env, exact) for s in rel.sources]
            if all(p.is_point for p in parts):
                total = sum(p.value for p in parts)
                return Interval.point(total % extent)
            if exact:
                raise LoweringError(
                    f"rotated variable {var} needs concrete rotation inputs "
                    f"for an exact leaf slice"
                )
            return Interval.extent(extent)
        if var in self._fuse_of:
            rel = self._fuse_of[var]
            fused = self.value_of(rel.fused, env, exact)
            extent = self.extent(var)
            if fused.is_point:
                if var == rel.first:
                    return Interval.point(fused.value // rel.second_extent)
                return Interval.point(fused.value % rel.second_extent)
            full = Interval.extent(self.extent(rel.fused))
            if fused == full:
                return Interval.extent(extent)
            if exact:
                raise LoweringError(
                    f"fused variable {rel.fused} spans a partial range; the "
                    f"resulting iteration block is not rectangular in {var}"
                )
            return Interval.extent(extent)
        raise ScheduleError(
            f"cannot reconstruct {var}: not a loop variable and not derived"
        )

    def split_rel(self, var: IndexVar) -> Optional[SplitRel]:
        """The relation that decomposed ``var``, if any (batch evaluator)."""
        return self._split_of.get(var)

    def rotate_rel(self, var: IndexVar) -> Optional[RotateRel]:
        """The relation that rotated ``var``, if any (batch evaluator)."""
        return self._rotate_of.get(var)

    def fuse_rel(self, var: IndexVar) -> Optional[FuseRel]:
        """The relation that fused ``var`` away, if any (batch evaluator)."""
        return self._fuse_of.get(var)

    def is_rotate_result(self, var: IndexVar) -> bool:
        """Whether ``var`` is the result variable of a rotation.

        Rotation results must be bound to concrete iterations before leaf
        slices can be exact, so the plan lowering keeps them sequential.
        """
        return any(rel.result == var for rel in self._rotate_of.values())

    def leaf_descendants(self, var: IndexVar) -> List[IndexVar]:
        """The loop variables a (possibly decomposed) variable turns into."""
        if var in self._split_of:
            rel = self._split_of[var]
            return self.leaf_descendants(rel.outer) + self.leaf_descendants(
                rel.inner
            )
        if var in self._rotate_of:
            return self.leaf_descendants(self._rotate_of[var].result)
        if var in self._fuse_of:
            rel = self._fuse_of[var]
            return self.leaf_descendants(rel.fused)
        return [var]

    def copy(self) -> "VarGraph":
        dup = VarGraph({})
        dup._extents = dict(self._extents)
        dup._split_of = dict(self._split_of)
        dup._fuse_of = dict(self._fuse_of)
        dup._rotate_of = dict(self._rotate_of)
        dup._derived = set(self._derived)
        return dup
