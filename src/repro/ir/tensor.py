"""Tensor variables and tensor index notation assignments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.format import Format
from repro.ir.expr import Access, Expr, IndexVar, Literal, Mul


class TensorVar:
    """A dense tensor variable with a shape, dtype and format.

    Indexing a :class:`TensorVar` with index variables produces an
    :class:`~repro.ir.expr.Access`; both ``A[i, j]`` and ``A(i, j)`` work,
    mirroring the paper's ``A(i, j) = B(i, k) * C(k, j)``.
    """

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        format: Optional[Format] = None,
        dtype=np.float64,
    ):
        if not name:
            raise ValueError("tensor name must be non-empty")
        if any(int(d) <= 0 for d in shape):
            raise ValueError(f"tensor {name} has non-positive dimension: {shape}")
        self.name = name
        self.shape: Tuple[int, ...] = tuple(int(d) for d in shape)
        self.format = format if format is not None else Format()
        self.dtype = np.dtype(dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        n = self.itemsize
        for d in self.shape:
            n *= d
        return n

    def __call__(self, *indices: IndexVar) -> Access:
        return Access(self, indices)

    def __getitem__(self, indices) -> Access:
        if isinstance(indices, IndexVar):
            indices = (indices,)
        return Access(self, tuple(indices))

    def __hash__(self):
        return hash(self.name)

    def __eq__(self, other):
        return isinstance(other, TensorVar) and self.name == other.name

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"Tensor({self.name}: {dims})"


class Assignment:
    """A tensor index notation statement ``lhs = rhs`` (or ``lhs += rhs``).

    Index variables used only on the right-hand side are *reduction*
    variables: the statement sums over their domains, e.g.
    ``A(i,j) = B(i,j,k) * c(k)`` sums over ``k`` (Section 2).
    """

    def __init__(self, lhs: Access, rhs: Expr, accumulate: bool = False):
        if not isinstance(lhs, Access):
            raise TypeError("assignment left-hand side must be a tensor access")
        self.lhs = lhs
        self.rhs = rhs
        self.accumulate = accumulate
        self._check_domains()

    @property
    def free_vars(self) -> List[IndexVar]:
        """Variables on the left-hand side, in access order."""
        return list(self.lhs.indices)

    @property
    def reduction_vars(self) -> List[IndexVar]:
        """Right-hand-side-only variables, in first-appearance order."""
        free = set(self.lhs.indices)
        return [v for v in self.rhs.index_variables() if v not in free]

    @property
    def all_vars(self) -> List[IndexVar]:
        """Free variables then reduction variables (default loop order)."""
        return self.free_vars + self.reduction_vars

    def tensors(self) -> List[TensorVar]:
        """All distinct tensors, output first."""
        seen = [self.lhs.tensor]
        for access in self.rhs.accesses():
            if access.tensor not in seen:
                seen.append(access.tensor)
        return seen

    def accesses(self) -> List[Access]:
        """All accesses, output first."""
        return [self.lhs] + list(self.rhs.accesses())

    def domains(self) -> Dict[IndexVar, int]:
        """Extent of every index variable, from the dimensions it indexes."""
        return self._domains

    def flops_per_point(self) -> int:
        """Floating-point operations per iteration-space point.

        Counts one op per multiply and add in the expression plus the
        reduction accumulate; used by the cost model's roofline.
        """
        ops = _count_ops(self.rhs)
        if self.reduction_vars or self.accumulate:
            ops += 1
        return max(ops, 1)

    def _check_domains(self):
        domains: Dict[IndexVar, int] = {}
        for access in self.accesses():
            for var, extent in zip(access.indices, access.tensor.shape):
                if var in domains and domains[var] != extent:
                    raise ValueError(
                        f"index variable {var} ranges over {domains[var]} and "
                        f"{extent} in different accesses"
                    )
                domains[var] = extent
        for var in self.lhs.indices:
            # An output variable must be driven by the rhs or the lhs shape.
            domains.setdefault(var, None)
        self._domains = domains

    def __repr__(self) -> str:
        op = "+=" if self.accumulate or self.reduction_vars else "="
        return f"{self.lhs!r} {op} {self.rhs!r}"


def assign(lhs: Access, rhs: Expr) -> Assignment:
    """Build an assignment; exported for callers who prefer a function."""
    return Assignment(lhs, rhs)


def reference_einsum(
    assignment: Assignment, arrays: Dict[str, np.ndarray]
) -> np.ndarray:
    """Evaluate an assignment with numpy; the correctness oracle.

    Handles sums of products of accesses (the full language of Figure 14's
    expressions, distributed into a sum of einsum terms).
    """
    letters: Dict[IndexVar, str] = {}
    for var in assignment.all_vars:
        letters[var] = chr(ord("a") + len(letters))
    out_shape = assignment.lhs.tensor.shape
    result = np.zeros(out_shape, dtype=assignment.lhs.tensor.dtype)
    reduction = assignment.reduction_vars
    domains = assignment.domains()
    for coeff, accesses in _terms(assignment.rhs):
        if not accesses:
            # A bare constant is accumulated once per iteration point.
            mult = 1
            for var in reduction:
                mult *= domains[var]
            result += coeff * mult
            continue
        subs = ",".join(
            "".join(letters[v] for v in acc.indices) for acc in accesses
        )
        operands = [arrays[acc.tensor.name] for acc in accesses]
        # Output variables that index no operand broadcast over their
        # dimension (e.g. a(i) = sum_j b(j)); reduction variables that
        # index no operand multiply the term by their extent (the loop
        # nest sums the term once per iteration).
        present = {v for acc in accesses for v in acc.indices}
        for var in reduction:
            if var not in present:
                coeff = coeff * domains[var]
        out_sub = "".join(
            letters[v] for v in assignment.lhs.indices if v in present
        )
        term = np.einsum(f"{subs}->{out_sub}", *operands, optimize=True)
        shape = tuple(
            out_shape[d] if v in present else 1
            for d, v in enumerate(assignment.lhs.indices)
        )
        result += coeff * np.asarray(term).reshape(shape)
    return result


def _terms(expr: Expr):
    """Expand an expression into a sum of (coefficient, access-list) terms."""
    from repro.ir.expr import Add

    if isinstance(expr, Add):
        yield from _terms(expr.lhs)
        yield from _terms(expr.rhs)
    elif isinstance(expr, Mul):
        for lc, la in _terms(expr.lhs):
            for rc, ra in _terms(expr.rhs):
                yield lc * rc, la + ra
    elif isinstance(expr, Literal):
        yield expr.value, []
    elif isinstance(expr, Access):
        yield 1.0, [expr]
    else:
        raise TypeError(f"unexpected expression node {expr!r}")


def _count_ops(expr: Expr) -> int:
    from repro.ir.expr import Add

    if isinstance(expr, (Add, Mul)):
        return 1 + _count_ops(expr.lhs) + _count_ops(expr.rhs)
    return 0
