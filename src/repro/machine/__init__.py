"""Machine abstraction (Section 3.1 of the paper).

A distributed machine is modelled as a multi-dimensional grid of abstract
processors, each with a local memory. The abstraction is hierarchical: a
machine may be a grid of nodes, each of which is itself a grid of GPUs or CPU
sockets. The *logical* grid (:class:`Machine`) is mapped onto a *physical*
:class:`Cluster` of nodes, processors, and memories; the separation lets the
same schedule target differently shaped hardware.
"""

from repro.machine.cluster import (
    Cluster,
    Memory,
    MemoryKind,
    Node,
    Processor,
    ProcessorKind,
)
from repro.machine.grid import Grid
from repro.machine.machine import Machine

__all__ = [
    "Cluster",
    "Grid",
    "Machine",
    "Memory",
    "MemoryKind",
    "Node",
    "Processor",
    "ProcessorKind",
]
