"""Physical cluster description: nodes, processors, memories.

The cluster is the *physical* half of the machine abstraction. A
:class:`Cluster` is a list of identical nodes; each node holds one or more
processors (CPU sockets or GPUs), each with an attached local memory. The
logical grid view (:class:`repro.machine.machine.Machine`) maps grid
coordinates onto these processors.

Capacities live here; link bandwidths and compute rates live in
:mod:`repro.sim.params` because they parameterize the cost model, not the
program semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

GIB = 1024 ** 3


class ProcessorKind(enum.Enum):
    """Kind of abstract processor a task can run on."""

    CPU_SOCKET = "cpu"
    GPU = "gpu"


class MemoryKind(enum.Enum):
    """Kind of memory a tensor instance can live in.

    Matches the paper's ``Memory::GPU_MEM`` format argument (Figure 2): the
    format language can pin tensors into GPU framebuffer memory or leave
    them in node system memory.
    """

    SYSTEM_MEM = "sysmem"
    GPU_FB = "gpu_fb"


@dataclass
class Memory:
    """One physical memory: a node's DRAM or one GPU's framebuffer."""

    name: str
    kind: MemoryKind
    capacity_bytes: int
    node_id: int

    def __hash__(self):
        return hash(self.name)

    def __eq__(self, other):
        return isinstance(other, Memory) and self.name == other.name

    def __repr__(self) -> str:
        return f"Memory({self.name})"


@dataclass
class Processor:
    """One abstract processor: a CPU socket or a single GPU."""

    proc_id: int
    kind: ProcessorKind
    node_id: int
    local_index: int
    memory: Memory

    def __hash__(self):
        return self.proc_id

    def __eq__(self, other):
        return isinstance(other, Processor) and self.proc_id == other.proc_id

    def __repr__(self) -> str:
        return f"Proc({self.proc_id}:{self.kind.value}@n{self.node_id})"


@dataclass
class Node:
    """One cluster node: its processors plus a shared system memory."""

    node_id: int
    processors: List[Processor] = field(default_factory=list)
    system_memory: Optional[Memory] = None


class Cluster:
    """A homogeneous cluster of nodes.

    Use the :meth:`cpu_cluster` / :meth:`gpu_cluster` factories for
    Lassen-like configurations (the paper's testbed: dual-socket Power9
    nodes with four V100 GPUs each), or the generic constructor for
    arbitrary shapes in tests.
    """

    def __init__(self, nodes: List[Node]):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self.nodes = nodes
        self.processors: List[Processor] = []
        for node in nodes:
            self.processors.extend(node.processors)
        counts = {len(node.processors) for node in nodes}
        if len(counts) != 1:
            raise ValueError("all nodes must have the same processor count")
        self.procs_per_node = counts.pop()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_processors(self) -> int:
        return len(self.processors)

    @property
    def processor_kind(self) -> ProcessorKind:
        return self.processors[0].kind

    def memories(self) -> List[Memory]:
        """All distinct memories in the cluster."""
        seen: List[Memory] = []
        names = set()
        for node in self.nodes:
            if node.system_memory is not None:
                seen.append(node.system_memory)
                names.add(node.system_memory.name)
            for proc in node.processors:
                if proc.memory.name not in names:
                    names.add(proc.memory.name)
                    seen.append(proc.memory)
        return seen

    @staticmethod
    def build(
        num_nodes: int,
        procs_per_node: int,
        proc_kind: ProcessorKind,
        proc_mem_kind: MemoryKind,
        proc_mem_capacity: int,
        system_mem_capacity: int = 256 * GIB,
    ) -> "Cluster":
        """Generic constructor for a homogeneous cluster."""
        if num_nodes <= 0 or procs_per_node <= 0:
            raise ValueError("node and processor counts must be positive")
        nodes = []
        proc_id = 0
        for node_id in range(num_nodes):
            sysmem = Memory(
                name=f"n{node_id}/sysmem",
                kind=MemoryKind.SYSTEM_MEM,
                capacity_bytes=system_mem_capacity,
                node_id=node_id,
            )
            node = Node(node_id=node_id, system_memory=sysmem)
            for local in range(procs_per_node):
                if proc_mem_kind is MemoryKind.SYSTEM_MEM:
                    mem = sysmem
                else:
                    mem = Memory(
                        name=f"n{node_id}/fb{local}",
                        kind=proc_mem_kind,
                        capacity_bytes=proc_mem_capacity,
                        node_id=node_id,
                    )
                node.processors.append(
                    Processor(
                        proc_id=proc_id,
                        kind=proc_kind,
                        node_id=node_id,
                        local_index=local,
                        memory=mem,
                    )
                )
                proc_id += 1
            nodes.append(node)
        return Cluster(nodes)

    @staticmethod
    def cpu_cluster(
        num_nodes: int,
        sockets_per_node: int = 2,
        system_mem_gib: int = 256,
    ) -> "Cluster":
        """A Lassen-like CPU cluster; each socket is one abstract processor.

        The paper models "each CPU socket as an abstract DISTAL processor"
        (Section 7.1.1); Lassen nodes are dual-socket Power9 with 256 GiB.
        """
        return Cluster.build(
            num_nodes=num_nodes,
            procs_per_node=sockets_per_node,
            proc_kind=ProcessorKind.CPU_SOCKET,
            proc_mem_kind=MemoryKind.SYSTEM_MEM,
            proc_mem_capacity=system_mem_gib * GIB,
            system_mem_capacity=system_mem_gib * GIB,
        )

    @staticmethod
    def gpu_cluster(
        num_nodes: int,
        gpus_per_node: int = 4,
        framebuffer_gib: int = 16,
        reserved_gib: float = 1.0,
        system_mem_gib: int = 256,
    ) -> "Cluster":
        """A Lassen-like GPU cluster: four 16 GiB V100s per node.

        ``reserved_gib`` models the framebuffer the CUDA context and the
        runtime's internal pools consume; tensor instances can only use
        the remainder (this is what pushes replication-heavy algorithms
        over the edge at scale, Section 7.1.2).
        """
        usable = int((framebuffer_gib - reserved_gib) * GIB)
        return Cluster.build(
            num_nodes=num_nodes,
            procs_per_node=gpus_per_node,
            proc_kind=ProcessorKind.GPU,
            proc_mem_kind=MemoryKind.GPU_FB,
            proc_mem_capacity=usable,
            system_mem_capacity=system_mem_gib * GIB,
        )

    def __repr__(self) -> str:
        kind = self.processor_kind.value
        return (
            f"Cluster({self.num_nodes} nodes x {self.procs_per_node} "
            f"{kind} procs)"
        )
