"""Multi-dimensional processor grids."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Grid:
    """An n-dimensional grid shape, e.g. ``Grid(4, 4)`` or ``Grid(8, 8, 2)``.

    Grids are the paper's core machine-organization device: tensors are
    partitioned by grid dimensions and distributed loops are mapped onto
    them. A :class:`Grid` is pure shape; placement onto hardware is the job
    of :class:`repro.machine.machine.Machine`.
    """

    shape: Tuple[int, ...]

    def __init__(self, *dims: int):
        if not dims:
            raise ValueError("Grid needs at least one dimension")
        if any(d <= 0 for d in dims):
            raise ValueError(f"Grid dimensions must be positive: {dims}")
        object.__setattr__(self, "shape", tuple(int(d) for d in dims))

    @property
    def dim(self) -> int:
        """Number of grid dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of grid points (processors)."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def x(self) -> int:
        """Extent of the first dimension (paper's ``m.x``)."""
        return self.shape[0]

    @property
    def y(self) -> int:
        """Extent of the second dimension (paper's ``m.y``)."""
        return self.shape[1]

    @property
    def z(self) -> int:
        """Extent of the third dimension."""
        return self.shape[2]

    def points(self) -> Iterator[Tuple[int, ...]]:
        """All grid coordinates in row-major order."""
        return product(*(range(d) for d in self.shape))

    def linearize(self, coords: Tuple[int, ...]) -> int:
        """Row-major linear index of a grid coordinate."""
        if len(coords) != self.dim:
            raise ValueError(f"expected {self.dim} coords, got {coords}")
        idx = 0
        for c, d in zip(coords, self.shape):
            if not 0 <= c < d:
                raise ValueError(f"coordinate {coords} outside grid {self.shape}")
            idx = idx * d + c
        return idx

    def delinearize(self, index: int) -> Tuple[int, ...]:
        """Inverse of :meth:`linearize`."""
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside grid of size {self.size}")
        coords = []
        for d in reversed(self.shape):
            coords.append(index % d)
            index //= d
        return tuple(reversed(coords))

    def torus_distance(self, a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
        """Manhattan distance with wraparound in each dimension.

        Systolic (``rotate``-d) schedules shift data between grid
        neighbours; the wraparound matches the cyclic shifts of Cannon's
        algorithm (Figure 12 of the paper).
        """
        dist = 0
        for x, y, d in zip(a, b, self.shape):
            delta = abs(x - y)
            dist += min(delta, d - delta)
        return dist

    def __repr__(self) -> str:
        return f"Grid({', '.join(str(d) for d in self.shape)})"
