"""Logical machine: a (possibly hierarchical) grid view of a cluster.

A :class:`Machine` arranges a cluster's processors into one or more nested
grids. A flat machine is a single grid whose points map row-major onto
processors. A hierarchical machine (Section 3.1) stacks grids: the paper's
Lassen configuration arranges nodes into a 2-D grid and then each node's
four GPUs into an inner grid, so a machine coordinate is the concatenation
of one coordinate per level.

The machine also embodies the paper's *mapper* role (Section 6.1): grid
points are deterministically placed on processors, with over-decomposition
(more grid points than processors) handled round-robin — the mechanism
behind Johnson's algorithm's degradation on non-cube processor counts
(Section 7.1.2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.machine.cluster import Cluster, Processor
from repro.machine.grid import Grid


class Machine:
    """A grid (or hierarchy of grids) of abstract processors.

    Parameters
    ----------
    cluster:
        The physical cluster to map onto.
    grids:
        One or more :class:`Grid` levels, outermost first. A two-level
        machine ``Machine(cluster, Grid(4, 4), Grid(2, 2))`` views the
        cluster as a 4x4 grid of nodes, each a 2x2 grid of processors.
    """

    def __init__(self, cluster: Cluster, *grids: Grid):
        if not grids:
            raise ValueError("Machine needs at least one Grid level")
        self.cluster = cluster
        self.levels: Tuple[Grid, ...] = tuple(grids)
        # Grid-point placement is deterministic and the machine immutable,
        # so the coordinate -> processor map is memoized (the executor
        # calls proc_at once per context and once per emitted copy).
        self._proc_cache: dict = {}
        if len(self.levels) > 1:
            inner_size = 1
            for grid in self.levels[1:]:
                inner_size *= grid.size
            if inner_size > cluster.procs_per_node:
                raise ValueError(
                    f"inner grid levels need {inner_size} processors per node "
                    f"but nodes have {cluster.procs_per_node}"
                )

    @staticmethod
    def flat(*dims: int) -> "Machine":
        """An abstract test machine: one CPU processor per grid point."""
        grid = Grid(*dims)
        cluster = Cluster.cpu_cluster(num_nodes=grid.size, sockets_per_node=1)
        return Machine(cluster, grid)

    @property
    def grid(self) -> Grid:
        """The outermost grid level."""
        return self.levels[0]

    @property
    def dim(self) -> int:
        """Total number of grid dimensions across all levels."""
        return sum(grid.dim for grid in self.levels)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Concatenated shape across all levels."""
        shape: Tuple[int, ...] = ()
        for grid in self.levels:
            shape += grid.shape
        return shape

    @property
    def size(self) -> int:
        """Total number of grid points."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def x(self) -> int:
        return self.shape[0]

    @property
    def y(self) -> int:
        return self.shape[1]

    @property
    def z(self) -> int:
        return self.shape[2]

    def level_coords(
        self, coords: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        """Split a concatenated coordinate into per-level coordinates."""
        if len(coords) != self.dim:
            raise ValueError(
                f"expected {self.dim} coordinates for machine {self.shape}, "
                f"got {tuple(coords)}"
            )
        out = []
        pos = 0
        for grid in self.levels:
            out.append(tuple(coords[pos : pos + grid.dim]))
            pos += grid.dim
        return out

    def proc_at(self, coords: Sequence[int]) -> Processor:
        """The processor owning a machine grid point.

        Flat machines place grid points row-major over all processors;
        hierarchical machines place the outer level over nodes and inner
        levels within a node. Over-decomposition wraps round-robin.
        """
        key = tuple(coords)
        cached = self._proc_cache.get(key)
        if cached is not None:
            return cached
        per_level = self.level_coords(coords)
        if len(self.levels) == 1:
            linear = self.levels[0].linearize(per_level[0])
            proc = self.cluster.processors[
                linear % self.cluster.num_processors
            ]
        else:
            node_linear = self.levels[0].linearize(per_level[0])
            node = self.cluster.nodes[node_linear % self.cluster.num_nodes]
            local_linear = 0
            for grid, lc in zip(self.levels[1:], per_level[1:]):
                local_linear = local_linear * grid.size + grid.linearize(lc)
            proc = node.processors[local_linear % len(node.processors)]
        self._proc_cache[key] = proc
        return proc

    def torus_distance(
        self, a: Sequence[int], b: Sequence[int]
    ) -> int:
        """Wraparound Manhattan distance between two machine grid points."""
        dist = 0
        for x, y, d in zip(a, b, self.shape):
            delta = abs(x - y)
            dist += min(delta, d - delta)
        return dist

    def points(self):
        """All machine coordinates (concatenated across levels)."""
        from itertools import product

        return product(*(range(d) for d in self.shape))

    def __repr__(self) -> str:
        grids = " x ".join(repr(g) for g in self.levels)
        return f"Machine({grids} on {self.cluster!r})"
