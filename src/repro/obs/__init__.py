"""Unified observability: timelines, span tracing, metrics.

One layer shared by the simulator, tuner, pipeline, faults, and bench
stacks, with three pillars:

* **Simulated-time timelines** — the cost model can attach a
  :class:`~repro.sim.report.PhaseBreakdown` (per-phase comm/compute
  time, bytes, dominant resource, replay provenance) to a
  :class:`~repro.sim.report.SimReport`, and :mod:`repro.obs.export`
  turns it into Chrome trace-event JSON a trace viewer (Perfetto,
  ``chrome://tracing``) opens directly — one lane per node class.
* **Wall-clock span tracing** — :func:`repro.obs.spans.span` context
  managers in the hot paths (orbit classification, batched bounds, the
  tuner oracle, redistribution planning), near-zero-cost when disabled,
  gated by ``REPRO_TRACE``, fork-safe through the parallel sweep
  driver's envelope, exported to the same Chrome-trace format plus an
  aggregated flat profile.
* **Metrics registry** — :data:`repro.obs.metrics.METRICS` unifies the
  counters previously scattered across five subsystems (orbit fallback
  events, phase replays, simulation-cache hits, oracle incrementality,
  fork-pool retries) behind one snapshot API, surfaced by the CLIs,
  appended to ``BENCH_simulator.json`` records, and consumed by the
  regression gate.

``python -m repro.obs`` lists recent perf records, diffs two runs'
metrics, and exports traces (see :mod:`repro.obs.__main__`).
"""

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.spans import (
    export_spans,
    flat_profile,
    install_spans,
    reset_spans,
    set_tracing,
    span,
    span_mark,
    span_records,
    tracing_enabled,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "export_spans",
    "flat_profile",
    "install_spans",
    "reset_spans",
    "set_tracing",
    "span",
    "span_mark",
    "span_records",
    "tracing_enabled",
]
