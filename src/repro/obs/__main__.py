"""``python -m repro.obs`` — the observability layer's front door.

Subcommands:

* ``list`` — recent perf-log records (``BENCH_simulator.json``), with
  a marker for records carrying a metrics snapshot.
* ``diff NAME [NAME2]`` — counter-by-counter comparison between the
  two most recent records of ``NAME`` (or the latest of ``NAME`` and
  ``NAME2``).
* ``export`` — build a workload (same builders the weak-scaling sweeps
  use), simulate it with a per-phase breakdown, and write a Chrome
  trace-event JSON any trace viewer opens; ``--spans`` merges in
  wall-clock span lanes.
* ``--demo`` (also ``demo``) — the CI smoke path: export a 64-node
  weak-scaled Cannon trace with span tracing on, validate it against
  the minimal trace-event schema, and fail non-zero on any defect.

Every subcommand takes ``--json`` (the shared :mod:`repro.cli` flag)
to emit one machine-readable summary object instead of the human
report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro import cli
from repro.obs.export import (
    breakdown_to_chrome,
    merge_traces,
    spans_to_chrome,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.metrics import METRICS
from repro.obs.spans import (
    format_profile,
    set_tracing,
    span_records,
)

#: Workloads the exporter knows how to build (the weak-scaling set).
WORKLOADS = ("cannon", "summa", "pumma", "johnson")


def _records() -> List[Dict]:
    from repro.bench.perf_log import read_records

    return read_records()


def _counters(record: Dict) -> Optional[Dict]:
    metrics = record.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counters")
        if isinstance(counters, dict):
            return counters
    return None


def cmd_list(args) -> int:
    records = _records()
    if cli.emit(args, {"records": records[-args.limit:]}):
        return 0
    if not records:
        print("perf log is empty (no BENCH_simulator.json records)")
        return 0
    for record in records[-args.limit:]:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M", time.localtime(record.get("timestamp", 0))
        )
        counters = _counters(record)
        mark = f"  [{len(counters)} counters]" if counters else ""
        wall = record.get("wall_s", float("nan"))
        print(f"{stamp}  {record.get('name', '?'):<28s} "
              f"{wall:>9.3f}s{mark}")
    return 0


def cmd_diff(args) -> int:
    records = _records()
    mine = [r for r in records if r.get("name") == args.name]
    if args.name2:
        theirs = [r for r in records if r.get("name") == args.name2]
        if not mine or not theirs:
            missing = args.name if not mine else args.name2
            print(f"no records named {missing!r}")
            return 1
        a, b = mine[-1], theirs[-1]
    else:
        if len(mine) < 2:
            print(f"need two records named {args.name!r} to diff "
                  f"(have {len(mine)})")
            return 1
        a, b = mine[-2], mine[-1]
    if cli.emit(args, {"a": a, "b": b}):
        return 0
    print(f"A: {a['name']}  wall {a.get('wall_s')}s")
    print(f"B: {b['name']}  wall {b.get('wall_s')}s")
    ca, cb = _counters(a) or {}, _counters(b) or {}
    if not ca and not cb:
        print("(neither record carries a metrics snapshot)")
        return 0
    names = sorted(set(ca) | set(cb))
    width = max(len(n) for n in names)
    for name in names:
        va, vb = ca.get(name), cb.get(name)
        if va == vb:
            print(f"  {name:<{width}s}  {va}")
        else:
            print(f"  {name:<{width}s}  {va} -> {vb}")
    return 0


def _build_kernel(workload: str, nodes: int, size: Optional[int],
                  gpu: bool):
    from repro.algorithms import matmul
    from repro.bench.weak_scaling import (
        cube_grid,
        square_grid,
        weak_matrix_size,
    )
    from repro.machine.cluster import Cluster, MemoryKind
    from repro.machine.grid import Grid
    from repro.machine.machine import Machine

    cluster = (
        Cluster.gpu_cluster(nodes) if gpu else Cluster.cpu_cluster(nodes)
    )
    p = cluster.num_processors
    grid = cube_grid(p) if workload == "johnson" else square_grid(p)
    machine = Machine(cluster, Grid(*grid))
    n = size or weak_matrix_size(8192, nodes)
    memory = MemoryKind.GPU_FB if gpu else MemoryKind.SYSTEM_MEM
    builder = getattr(matmul, workload)
    return builder(machine, n, memory=memory), n


def _export(args, say):
    """Shared export pass; returns ``(exit_code, payload)``."""
    from repro.sim.params import LASSEN

    if args.spans:
        set_tracing(True)
    t0 = time.perf_counter()
    kern, n = _build_kernel(args.workload, args.nodes, args.size, args.gpu)
    report = kern.simulate(LASSEN, breakdown=True)
    wall = time.perf_counter() - t0
    title = f"{args.workload} n={n} nodes={args.nodes}"
    trace = breakdown_to_chrome(report.breakdown, title=title)
    if args.spans:
        trace = merge_traces(trace, spans_to_chrome(span_records()))
    defect = validate_chrome_trace(trace)
    if defect is not None:
        print(f"exported trace is invalid: {defect}", file=sys.stderr)
        return 1, {}
    out = args.out or f"trace_{args.workload}_{args.nodes}.json"
    write_trace(trace, out)
    say(f"{title}: {report}")
    say(f"  {len(report.breakdown.phases)} phases, "
        f"{len(trace['traceEvents'])} trace events -> {out}")
    say(f"  (open in Perfetto / chrome://tracing; built in {wall:.2f}s)")
    top = report.breakdown.top(3)
    for phase in top:
        say(f"  top: {phase.label:<24s} {phase.total_s:.4f}s "
            f"dominant={phase.dominant}")
    if args.spans:
        say("== Wall-clock profile ==")
        say(format_profile())
    payload = {
        "workload": args.workload,
        "nodes": args.nodes,
        "size": n,
        "out": out,
        "build_wall_s": round(wall, 4),
        "phases": len(report.breakdown.phases),
        "trace_events": len(trace["traceEvents"]),
        "top": [
            {
                "label": phase.label,
                "total_s": phase.total_s,
                "dominant": phase.dominant,
            }
            for phase in top
        ],
    }
    return 0, payload


def cmd_export(args) -> int:
    say = (lambda *a, **k: None) if args.json else print
    code, payload = _export(args, say)
    if code != 0:
        return code
    if not cli.emit(args, payload):
        print("== Metrics ==")
        for name, value in METRICS.snapshot().items():
            print(f"  {name} = {value}")
    return 0


def cmd_demo(args) -> int:
    """The CI smoke path: export, validate, verify round-trip."""
    say = (lambda *a, **k: None) if args.json else print
    ns = argparse.Namespace(
        workload="cannon", nodes=64, size=None, gpu=False,
        out=args.out or "obs_demo_trace.json", spans=True,
        json=args.json,
    )
    code, payload = _export(ns, say)
    if code != 0:
        return code
    if not args.json:
        print("== Metrics ==")
        for name, value in METRICS.snapshot().items():
            print(f"  {name} = {value}")
    # Re-read what was written: the artifact CI uploads must itself
    # parse and validate, not just the in-memory object.
    try:
        with open(ns.out) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"demo trace unreadable: {exc}", file=sys.stderr)
        return 1
    defect = validate_chrome_trace(trace)
    if defect is not None:
        print(f"demo trace invalid on disk: {defect}", file=sys.stderr)
        return 1
    slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    spans = [e for e in slices if e.get("cat") == "span"]
    if not spans:
        print("demo trace has no span lanes", file=sys.stderr)
        return 1
    say(f"demo trace OK: {len(slices)} slices "
        f"({len(spans)} wall-clock spans) in {ns.out}")
    cli.emit(args, {
        **payload,
        "demo": {"slices": len(slices), "spans": len(spans)},
    })
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and export observability data.",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run the CI smoke path (export + validate a Cannon trace)",
    )
    parser.add_argument("--out", default=None, help="demo output path")
    cli.add_common_args(parser, ledger=False, jobs=False, seed=False)
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list", help="recent perf-log records")
    p_list.add_argument("--limit", type=int, default=20)
    cli.add_common_args(p_list, ledger=False, jobs=False, seed=False)

    p_diff = sub.add_parser("diff", help="diff two runs' metrics")
    p_diff.add_argument("name")
    p_diff.add_argument("name2", nargs="?", default=None)
    cli.add_common_args(p_diff, ledger=False, jobs=False, seed=False)

    p_exp = sub.add_parser("export", help="export a simulated-time trace")
    p_exp.add_argument("--workload", choices=WORKLOADS, default="cannon")
    p_exp.add_argument("--nodes", type=int, default=64)
    p_exp.add_argument("--size", type=int, default=None,
                       help="matrix side (default: weak-scaled from 8192)")
    p_exp.add_argument("--gpu", action="store_true")
    p_exp.add_argument("--out", default=None)
    p_exp.add_argument("--spans", action="store_true",
                       help="enable tracing and merge span lanes in")
    cli.add_common_args(p_exp, ledger=False, jobs=False, seed=False)

    p_demo = sub.add_parser("demo", help="alias for --demo")
    p_demo.add_argument("--out", default=None)
    cli.add_common_args(p_demo, ledger=False, jobs=False, seed=False)

    args = parser.parse_args(argv)
    if args.demo or args.command == "demo":
        return cmd_demo(args)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "diff":
        return cmd_diff(args)
    if args.command == "export":
        return cmd_export(args)
    parser.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
