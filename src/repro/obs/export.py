"""Chrome trace-event exporters for breakdowns and spans.

Both pillars of the observability layer render in the same viewer
(Perfetto / ``chrome://tracing``) through the trace-event JSON format:
a ``{"traceEvents": [...]}`` object whose events are complete ``"X"``
slices with microsecond ``ts``/``dur``.

* :func:`breakdown_to_chrome` lays a :class:`~repro.sim.report
  .PhaseBreakdown` out in *simulated* time: one summary lane per phase
  plus one lane per node class, with comm/compute sub-slices, replayed
  phases tagged so a viewer query isolates steady-state provenance.
* :func:`spans_to_chrome` lays recorded wall-clock spans out by their
  epoch timestamps, one process lane per recording pid (fork workers
  show up as separate lanes).

:func:`validate_chrome_trace` is the minimal structural check CI's
``obs-smoke`` job runs on exported artifacts — it verifies the subset
of the format the exporters promise, not the full spec.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.spans import SpanRecord, flat_profile
from repro.sim.report import PhaseBreakdown

#: Synthetic pids for the simulated-time lanes (viewer process groups).
_SIM_PID = 1


def _meta(pid: int, name: str, sort_index: int = 0) -> List[dict]:
    events = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": name},
    }]
    if sort_index:
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid,
            "tid": 0, "args": {"sort_index": sort_index},
        })
    return events


def breakdown_to_chrome(
    breakdown: PhaseBreakdown, title: str = "simulated"
) -> dict:
    """A :class:`PhaseBreakdown` as a Chrome trace-event object.

    Simulated seconds map to trace microseconds at 1e6. Lane layout:
    tid 0 carries one slice per phase (the bulk-synchronous timeline);
    tid 1 and 2 carry the comm and overhead portions; one further lane
    per node class carries that class's compute slice, so a class idle
    in a phase shows as a gap.
    """
    events: List[dict] = _meta(_SIM_PID, f"{title} (simulated time)")
    for tid, name in ((0, "phases"), (1, "comm"), (2, "overhead")):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _SIM_PID,
            "tid": tid, "args": {"name": name},
        })
    class_tids: Dict[int, int] = {}
    cursor = 0.0
    for phase in breakdown.phases:
        ts = cursor * 1e6
        dur = phase.total_s * 1e6
        events.append({
            "name": phase.label,
            "ph": "X", "ts": ts, "dur": dur,
            "pid": _SIM_PID, "tid": 0,
            "cat": "replayed" if phase.price_replayed else "priced",
            "args": {
                "index": phase.index,
                "dominant": phase.dominant,
                "comm_s": phase.comm_s,
                "compute_s": phase.compute_s,
                "overhead_s": phase.overhead_s,
                "copy_bytes": phase.copy_bytes,
                "inter_node_bytes": phase.inter_node_bytes,
                "flops": phase.flops,
                "price_replayed": phase.price_replayed,
            },
        })
        if phase.comm_s > 0:
            events.append({
                "name": f"comm:{phase.label}",
                "ph": "X", "ts": ts, "dur": phase.comm_s * 1e6,
                "pid": _SIM_PID, "tid": 1, "cat": "comm",
                "args": {"inter_node_bytes": phase.inter_node_bytes},
            })
        if phase.overhead_s > 0:
            events.append({
                "name": f"overhead:{phase.label}",
                "ph": "X", "ts": ts, "dur": phase.overhead_s * 1e6,
                "pid": _SIM_PID, "tid": 2, "cat": "overhead",
                "args": {},
            })
        for proc_id, count, seconds in phase.class_times:
            tid = class_tids.get(proc_id)
            if tid is None:
                tid = 3 + len(class_tids)
                class_tids[proc_id] = tid
                events.append({
                    "name": "thread_name", "ph": "M", "pid": _SIM_PID,
                    "tid": tid,
                    "args": {"name": f"class proc {proc_id}"},
                })
            if seconds > 0:
                events.append({
                    "name": f"compute:{phase.label}",
                    "ph": "X", "ts": ts, "dur": seconds * 1e6,
                    "pid": _SIM_PID, "tid": tid, "cat": "compute",
                    "args": {"proc_id": proc_id, "count": count},
                })
        cursor += phase.total_s
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_to_chrome(records: List[SpanRecord]) -> dict:
    """Recorded wall-clock spans as a Chrome trace-event object.

    Timestamps are epoch-relative (rebased to the earliest record so
    the viewer opens at t=0); each recording pid gets its own process
    lane, each thread its own row.
    """
    events: List[dict] = []
    if not records:
        return {"traceEvents": events}
    t0 = min(r.start_s for r in records)
    seen_pids: Dict[int, None] = {}
    for r in records:
        if r.pid not in seen_pids:
            seen_pids[r.pid] = None
            label = "main" if len(seen_pids) == 1 else f"worker {r.pid}"
            events.extend(_meta(r.pid, f"{label} (pid {r.pid})",
                                sort_index=len(seen_pids)))
        events.append({
            "name": r.name,
            "ph": "X",
            "ts": (r.start_s - t0) * 1e6,
            "dur": r.dur_s * 1e6,
            "pid": r.pid,
            "tid": r.tid % 2**31,
            "cat": "span",
            "args": {"self_s": r.self_s, "depth": r.depth},
        })
    return {"traceEvents": events}


def merge_traces(*traces: dict) -> dict:
    """Concatenate trace objects (e.g. simulated lanes + span lanes)."""
    events: List[dict] = []
    for t in traces:
        events.extend(t.get("traceEvents", []))
    return {"traceEvents": events}


def write_trace(trace: dict, path: str) -> str:
    """Write a trace object as JSON; returns ``path``."""
    with open(path, "w") as f:
        json.dump(trace, f, indent=None, separators=(",", ":"))
        f.write("\n")
    return path


def profile_summary(records: List[SpanRecord]) -> dict:
    """The flat profile as a JSON-ready dict (perf-log embedding)."""
    return {
        name: {"calls": calls, "total_s": total, "self_s": self_s}
        for name, (calls, total, self_s) in flat_profile(records).items()
    }


def validate_chrome_trace(trace: dict) -> Optional[str]:
    """``None`` when ``trace`` is structurally valid, else the defect.

    Checks the subset of the trace-event format our exporters emit:
    a dict with a ``traceEvents`` list; every event a dict with a
    string ``name`` and ``ph``; ``"X"`` events carry numeric,
    non-negative ``ts`` and ``dur``.
    """
    if not isinstance(trace, dict):
        return "trace is not an object"
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return "traceEvents is not a list"
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        if not isinstance(ev.get("name"), str):
            return f"event {i} has no string name"
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            return f"event {i} has no phase"
        if ph == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    return f"event {i} has bad {key}: {value!r}"
    return None
