"""The fleet-wide metrics registry: one snapshot API for every counter.

Before this module the repo's efficiency counters lived on five
unrelated objects — ``OrbitExecutor.fallback_events``, the cost model's
step-price digest hits, ``SIM_CACHE.hits``, the tuner oracle's
incrementality stats, the fork-pool's retry count — each printed (or
not) by whichever CLI happened to own it. The registry unifies them:

* **Counters** (:meth:`MetricsRegistry.inc`) accumulate monotonically;
  subsystems increment them at their natural aggregation points.
* **Gauges** (:meth:`MetricsRegistry.observe`) record
  last-value-wins measurements.
* **Sources** (:meth:`MetricsRegistry.register_source`) contribute
  values computed at snapshot time — used for counters that already
  live on process-global objects (the simulation cache) so they are
  reported without double bookkeeping.

:meth:`MetricsRegistry.snapshot` returns one sorted, JSON-ready dict;
the CLIs print it, ``bench/perf_log.append_record`` embeds it in
``BENCH_simulator.json`` records (under ``metrics.counters``), and
``bench/regression.py`` compares it across runs to flag efficiency
regressions (fallback reappearance, replay hit-rate collapse) that
wall-clock noise hides.

Fork merging mirrors the simulation cache's envelope: workers export
the counter deltas they accumulated after the fork
(:meth:`MetricsRegistry.export` / :meth:`MetricsRegistry.delta`) and
the parent sums them back in (:meth:`MetricsRegistry.install`).

Counter values must be derived from *what was computed*, never from
wall-clock or cache state that varies between equal runs where
determinism matters: the tuner's ledger embeds oracle stats, and
equal-seed tuning runs are pinned byte-identical with metrics enabled.

The schedule-serving daemon (:mod:`repro.serve`) reports its traffic
under the ``serve.*`` names declared in :data:`SERVE_COUNTERS` —
query-path counters (hits answered from the in-memory index, misses
dispatched to the oracle, in-flight deduplications, warm-started
tunes) that the serve-smoke CI job and the QPS benchmark assert on.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

Number = Union[int, float]

#: The serving daemon's query-path counters (one increment per event):
#:
#: * ``serve.hits`` — queries answered from the in-memory answer index;
#: * ``serve.misses`` — queries with no cached answer (queued to tune);
#: * ``serve.deduped`` — queries that joined an identical in-flight
#:   tune instead of starting their own;
#: * ``serve.tunes`` — cold tunes completed by the fork-pool oracle;
#: * ``serve.warm_started`` — tunes seeded from a tuned neighbor's
#:   projected decision (strictly fewer simulations than cold);
#: * ``serve.errors`` — requests that failed (bad einsum, tune error,
#:   oversized frame);
#: * ``serve.shed`` — misses rejected by admission control (the
#:   bounded in-flight set was full; ``status: "overloaded"``);
#: * ``serve.crashes`` — tune-worker children that died without
#:   delivering (SIGKILL, segfault, hard timeout);
#: * ``serve.retried`` — crash retries dispatched with backoff;
#: * ``serve.drained`` — waiters answered with the structured
#:   ``"draining"`` error during shutdown;
#: * ``serve.quarantined`` — requests cut off at the consecutive-crash
#:   cap with a durable infeasible answer;
#: * ``serve.reconnects`` — client-side connection rebuilds
#:   (:class:`repro.serve.client.ScheduleClient` counts these in its
#:   own process's registry).
SERVE_COUNTERS = (
    "serve.hits",
    "serve.misses",
    "serve.deduped",
    "serve.tunes",
    "serve.warm_started",
    "serve.errors",
    "serve.shed",
    "serve.crashes",
    "serve.retried",
    "serve.drained",
    "serve.quarantined",
    "serve.reconnects",
)


class MetricsRegistry:
    """Counters, gauges, and snapshot-time sources under dotted names."""

    def __init__(self):
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._sources: Dict[str, Callable[[], Dict[str, Number]]] = {}

    # -- writing -------------------------------------------------------

    def inc(self, name: str, value: Number = 1):
        """Add ``value`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: Number):
        """Set gauge ``name`` (last value wins)."""
        self._gauges[name] = value

    def register_source(
        self, name: str, fn: Callable[[], Dict[str, Number]]
    ):
        """Register a callable contributing ``{metric: value}`` at
        snapshot time; re-registering a name replaces the source."""
        self._sources[name] = fn

    # -- reading -------------------------------------------------------

    def get(self, name: str, default: Number = 0) -> Number:
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def snapshot(self, sources: bool = True) -> Dict[str, Number]:
        """Every metric as one sorted ``{name: value}`` dict.

        Sources are consulted last and never clobber an explicit
        counter/gauge of the same name. A raising source contributes
        nothing (observability must not fail the observed run).
        """
        out: Dict[str, Number] = {}
        out.update(self._counters)
        out.update(self._gauges)
        if sources:
            for fn in self._sources.values():
                try:
                    values = fn()
                except Exception:
                    continue
                for key, value in values.items():
                    out.setdefault(key, value)
        return {k: out[k] for k in sorted(out)}

    # -- fork envelope -------------------------------------------------

    def export(self) -> Dict[str, Dict[str, Number]]:
        """A picklable copy of the owned counters and gauges."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
        }

    def delta(
        self, before: Dict[str, Dict[str, Number]]
    ) -> Dict[str, Dict[str, Number]]:
        """What accumulated since ``before`` (an :meth:`export`).

        Counters subtract (a forked worker inherited the parent's
        totals; only its own increments ride back); gauges ship when
        changed or new.
        """
        prev_c = before.get("counters", {})
        prev_g = before.get("gauges", {})
        counters = {}
        for name, value in self._counters.items():
            d = value - prev_c.get(name, 0)
            if d:
                counters[name] = d
        gauges = {
            name: value
            for name, value in self._gauges.items()
            if prev_g.get(name) != value
        }
        return {"counters": counters, "gauges": gauges}

    def install(self, exported: Dict[str, Dict[str, Number]]):
        """Merge a delta from another process: counters sum, gauges
        overwrite."""
        for name, value in exported.get("counters", {}).items():
            self.inc(name, value)
        for name, value in exported.get("gauges", {}).items():
            self.observe(name, value)

    def reset(self):
        """Zero every counter and gauge (sources stay registered)."""
        self._counters.clear()
        self._gauges.clear()


#: The process-global registry every subsystem reports into.
METRICS = MetricsRegistry()


def _sim_cache_source() -> Dict[str, Number]:
    # Lazy import: the registry must stay importable from anywhere
    # (including the executors) without pulling the bench stack in.
    from repro.bench.cache import SIM_CACHE, baseline_key_set

    return {
        "sim_cache.hits": SIM_CACHE.hits,
        "sim_cache.misses": SIM_CACHE.misses,
        "sim_cache.entries": len(SIM_CACHE),
        "baseline_cache.entries": len(baseline_key_set()),
    }


def _span_source() -> Dict[str, Number]:
    from repro.obs.spans import dropped_spans, span_records

    return {
        "spans.recorded": len(span_records()),
        "spans.dropped": dropped_spans(),
    }


METRICS.register_source("sim_cache", _sim_cache_source)
METRICS.register_source("spans", _span_source)
