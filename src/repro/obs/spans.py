"""Wall-clock span tracing: ``with span("orbit.classify"): ...``.

Spans answer the question the simulated-time timeline cannot: where the
*simulator itself* spends wall-clock. They are instrumented into the
hot paths (orbit classification, batched bounds analysis, the tuner
oracle, redistribution planning) and are designed around three
constraints:

* **Near-zero cost when disabled.** Tracing is off unless the
  ``REPRO_TRACE`` environment variable is set (or :func:`set_tracing`
  forces it); a disabled :func:`span` call is one module-flag check
  returning a shared no-op context manager — no allocation, no clock
  read. Hot paths therefore keep their spans unconditionally.
* **Fork safety.** The parallel sweep driver (:mod:`repro.bench
  .parallel`) forks workers that inherit the parent's record list;
  workers export only the records they appended (:func:`span_mark` /
  :func:`export_spans`) and the parent merges them back
  (:func:`install_spans`), each record keeping its recording pid so a
  Chrome trace shows one process lane per worker.
* **Bounded memory.** The record list is capped; past the cap new spans
  are counted (``dropped_spans``) but not stored, so a pathological
  run cannot exhaust memory through its own instrumentation.

Start timestamps are wall epoch seconds (comparable across forked
processes); durations come from the same clock. Self-time (duration
minus enclosed child spans on the same thread) is tracked so the flat
profile (:func:`flat_profile`) does not double-count nested spans.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Hard cap on stored records (dropped past this, counted).
MAX_RECORDS = 200_000

#: Tracing state: None = decide from ``REPRO_TRACE`` on first use.
_enabled: Optional[bool] = None

_records: List["SpanRecord"] = []
_dropped = 0
_local = threading.local()


@dataclass
class SpanRecord:
    """One completed span (picklable; rides the fork envelope)."""

    name: str
    pid: int
    tid: int
    start_s: float   # wall epoch seconds
    dur_s: float
    self_s: float    # dur_s minus same-thread child spans
    depth: int


def tracing_enabled() -> bool:
    """Whether spans record (``REPRO_TRACE`` or :func:`set_tracing`)."""
    global _enabled
    if _enabled is None:
        _enabled = bool(os.environ.get("REPRO_TRACE"))
    return _enabled


def set_tracing(on: Optional[bool]):
    """Force tracing on/off; ``None`` re-reads ``REPRO_TRACE``."""
    global _enabled
    _enabled = on


class _NullSpan:
    """The shared disabled span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


class _Span:
    __slots__ = ("name", "start", "t0", "children")

    def __init__(self, name: str):
        self.name = name
        self.children = 0.0

    def __enter__(self):
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self)
        self.start = time.time()
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        global _dropped
        dur = time.perf_counter() - self.t0
        stack = _local.stack
        stack.pop()
        depth = len(stack)
        if stack:
            stack[-1].children += dur
        if len(_records) < MAX_RECORDS:
            _records.append(SpanRecord(
                name=self.name,
                pid=os.getpid(),
                tid=threading.get_ident(),
                start_s=self.start,
                dur_s=dur,
                self_s=max(0.0, dur - self.children),
                depth=depth,
            ))
        else:
            _dropped += 1
        return False


def span(name: str):
    """A timing context manager; a shared no-op while tracing is off."""
    if not tracing_enabled():
        return _NULL
    return _Span(name)


# ----------------------------------------------------------------------
# Record access, fork merging, aggregation.
# ----------------------------------------------------------------------


def span_records() -> List[SpanRecord]:
    """The recorded spans (live list — treat as read-only)."""
    return _records


def dropped_spans() -> int:
    return _dropped


def span_mark() -> int:
    """A position in the record list; pair with :func:`export_spans`."""
    return len(_records)


def export_spans(since: int = 0) -> List[SpanRecord]:
    """Records appended after ``since`` (picklable).

    A forked worker inherits the parent's records; exporting from the
    mark taken at task start ships only the worker's own spans back.
    """
    return list(_records[since:])


def install_spans(records: List[SpanRecord]):
    """Merge records exported by another process."""
    global _dropped
    room = MAX_RECORDS - len(_records)
    if room >= len(records):
        _records.extend(records)
    else:
        _records.extend(records[:room])
        _dropped += len(records) - room


def reset_spans():
    """Clear all records (tests, the CLI between exports)."""
    global _dropped
    _records.clear()
    _dropped = 0


def flat_profile(
    records: Optional[List[SpanRecord]] = None,
) -> Dict[str, Tuple[int, float, float]]:
    """``{name: (calls, total_s, self_s)}`` over ``records``.

    ``total_s`` sums full durations (nested spans count toward every
    enclosing span); ``self_s`` sums exclusive time and adds up to
    the traced wall-clock across names.
    """
    if records is None:
        records = _records
    out: Dict[str, Tuple[int, float, float]] = {}
    for r in records:
        calls, total, self_s = out.get(r.name, (0, 0.0, 0.0))
        out[r.name] = (calls + 1, total + r.dur_s, self_s + r.self_s)
    return dict(sorted(out.items(), key=lambda kv: -kv[1][2]))


def format_profile(
    records: Optional[List[SpanRecord]] = None,
) -> str:
    """The flat profile as an aligned text table."""
    prof = flat_profile(records)
    if not prof:
        return "(no spans recorded; set REPRO_TRACE=1)"
    lines = [f"  {'span':<28s} {'calls':>8s} {'total':>10s} {'self':>10s}"]
    for name, (calls, total, self_s) in prof.items():
        lines.append(
            f"  {name:<28s} {calls:>8d} {total:>9.4f}s {self_s:>9.4f}s"
        )
    return "\n".join(lines)
