"""Kernel pipelines: multi-kernel DAGs with inter-stage redistribution.

See :mod:`repro.pipeline.pipeline` for the DAG model and
:mod:`repro.tuner.joint` for joint (format-aware) pipeline tuning.
"""

from repro.pipeline.pipeline import (
    HANDOFF_DIRECT,
    HANDOFF_REDISTRIBUTE,
    Pipeline,
    PipelineEdge,
    PipelinePlan,
    ScheduledStage,
    Stage,
)
from repro.pipeline.redistribute import redistribution_report
from repro.pipeline.report import EdgeCost, PipelineReport, StageCost

__all__ = [
    "HANDOFF_DIRECT",
    "HANDOFF_REDISTRIBUTE",
    "EdgeCost",
    "Pipeline",
    "PipelineEdge",
    "PipelinePlan",
    "PipelineReport",
    "ScheduledStage",
    "Stage",
    "StageCost",
    "redistribution_report",
]
