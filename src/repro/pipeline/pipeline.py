"""Multi-kernel pipelines: DAGs of tensor-algebra stages.

The paper schedules one kernel at a time, but real workloads are chains
— ``(A@B)@C``, TTMc, MTTKRP-then-normalize — where the *output layout*
of one kernel becomes the *input layout* of the next, and the dominant
cost is often the redistribution between kernels. A :class:`Pipeline`
is a DAG of named stages (one :class:`~repro.ir.tensor.Assignment`
each) connected by the tensors they share: a tensor written by one
stage and read by another is an *intermediate* and forms an edge.

Scheduling a pipeline threads formats through the DAG: every stage is
realized from an ordinary tuner decision vector
(:class:`~repro.tuner.space.Decision`), and the producer's realized
output format is compared against each consumer's expected input
format. Where they differ, an explicit redistribution is planned
(:func:`~repro.core.transfer.redistribution_trace`) and priced; where
they agree — or where the consumer is scheduled with a *direct*
handoff, overriding its input format to whatever the producer wrote —
no data moves between the stages at all.

``PipelinePlan.simulate()`` runs every stage through the shared
simulation cache and returns a
:class:`~repro.pipeline.report.PipelineReport`: per-stage reports,
per-handoff costs, and a combined :class:`~repro.sim.report.SimReport`
that is byte-identical to ``Kernel.simulate()`` for single-stage
pipelines.
"""

from __future__ import annotations

import copy
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.kernel import Kernel, compile_kernel
from repro.core.transfer import formats_equivalent
from repro.formats.format import Format
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.pipeline.redistribute import redistribution_report
from repro.pipeline.report import EdgeCost, PipelineReport, StageCost
from repro.scheduling.schedule import Schedule
from repro.sim.params import LASSEN, MachineParams
from repro.tuner.space import Decision, from_heuristic, realize
from repro.util.errors import PipelineError

#: Handoff policies for intermediate tensors.
HANDOFF_REDISTRIBUTE = "redistribute"
HANDOFF_DIRECT = "direct"


class Stage:
    """One pipeline stage: a named tensor-algebra assignment."""

    def __init__(self, name: str, assignment: Assignment):
        if not name:
            raise PipelineError("stage name must be non-empty")
        self.name = name
        self.assignment = assignment
        self.output = assignment.lhs.tensor.name
        seen: List[str] = []
        for access in assignment.rhs.accesses():
            tensor = access.tensor.name
            if tensor not in seen:
                seen.append(tensor)
        if self.output in seen:
            raise PipelineError(
                f"stage {name!r} reads its own output {self.output!r}; "
                f"in-place updates are not part of the pipeline model"
            )
        self.inputs: Tuple[str, ...] = tuple(seen)

    def __repr__(self) -> str:
        return f"Stage({self.name}: {self.assignment!r})"


class PipelineEdge(NamedTuple):
    """One intermediate-tensor handoff between two stages."""

    tensor: str
    producer: str
    consumer: str


StageLike = Union[Stage, Assignment, Tuple[str, Assignment]]


def _as_stage(obj: StageLike) -> Stage:
    if isinstance(obj, Stage):
        return obj
    if isinstance(obj, Assignment):
        return Stage(obj.lhs.tensor.name, obj)
    name, assignment = obj
    return Stage(name, assignment)


class Pipeline:
    """A DAG of kernel stages over a shared cluster.

    Stages may be given as :class:`Stage` objects, bare assignments
    (named after their output tensor), or ``(name, assignment)`` pairs,
    in any order consistent with *some* topological order — the
    constructor sorts them (stably) and rejects cycles, duplicate
    producers, and same-named tensors with mismatched shapes or dtypes.
    """

    def __init__(self, stages: Sequence[StageLike], cluster: Cluster):
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        named = [_as_stage(s) for s in stages]
        names = [s.name for s in named]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PipelineError(f"duplicate stage names {dupes}")
        self.cluster = cluster
        self._check_tensors(named)
        producers: Dict[str, str] = {}
        for stage in named:
            if stage.output in producers:
                raise PipelineError(
                    f"tensor {stage.output!r} is produced by both "
                    f"{producers[stage.output]!r} and {stage.name!r}"
                )
            producers[stage.output] = stage.name
        self.producers = producers
        self.stages: List[Stage] = self._topo_sort(named)
        self.edges: List[PipelineEdge] = [
            PipelineEdge(tensor, producers[tensor], stage.name)
            for stage in self.stages
            for tensor in stage.inputs
            if tensor in producers
        ]
        self.intermediates: Tuple[str, ...] = tuple(
            sorted({e.tensor for e in self.edges})
        )
        self.external_inputs: Tuple[str, ...] = tuple(sorted({
            tensor
            for stage in self.stages
            for tensor in stage.inputs
            if tensor not in producers
        }))

    @staticmethod
    def _check_tensors(stages: Sequence[Stage]):
        seen: Dict[str, TensorVar] = {}
        for stage in stages:
            for tensor in stage.assignment.tensors():
                prior = seen.get(tensor.name)
                if prior is None:
                    seen[tensor.name] = tensor
                elif (
                    prior.shape != tensor.shape
                    or prior.dtype != tensor.dtype
                ):
                    raise PipelineError(
                        f"tensor {tensor.name!r} is {prior.shape}/"
                        f"{prior.dtype} in one stage and {tensor.shape}/"
                        f"{tensor.dtype} in another"
                    )

    def _topo_sort(self, stages: List[Stage]) -> List[Stage]:
        """Stable topological order (Kahn's algorithm over stage deps)."""
        remaining = list(stages)
        ordered: List[Stage] = []
        done: set = set()
        while remaining:
            ready = [
                s for s in remaining
                if all(
                    self.producers[t] in done
                    for t in s.inputs
                    if t in self.producers
                )
            ]
            if not ready:
                cycle = sorted(s.name for s in remaining)
                raise PipelineError(f"pipeline has a cycle among {cycle}")
            for stage in ready:
                ordered.append(stage)
                done.add(stage.name)
                remaining.remove(stage)
        return ordered

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise PipelineError(f"unknown stage {name!r}")

    def consumers_of(self, tensor: str) -> List[str]:
        return [e.consumer for e in self.edges if e.tensor == tensor]

    def default_memory(self) -> MemoryKind:
        return (
            MemoryKind.GPU_FB
            if self.cluster.processor_kind is ProcessorKind.GPU
            else MemoryKind.SYSTEM_MEM
        )

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def autoschedule(
        self,
        grids: Optional[Dict[str, Sequence[int]]] = None,
        memory: Optional[MemoryKind] = None,
    ) -> "PipelinePlan":
        """Schedule every stage with the one-shot heuristic.

        ``grids`` optionally pins per-stage machine grids; by default
        each stage gets the most-balanced grid over its distributable
        variables (the same rule ``Kernel.tune`` seeds with).
        """
        from repro.tuner.search import default_seed_grid

        decisions = {}
        for stage in self.stages:
            if grids and stage.name in grids:
                shape = tuple(int(g) for g in grids[stage.name])
            else:
                shape = default_seed_grid(
                    stage.assignment, self.cluster.num_processors
                )
            decisions[stage.name] = from_heuristic(stage.assignment, shape)
        return self.schedule_with(decisions, memory=memory)

    def schedule_with(
        self,
        decisions: Dict[str, Decision],
        memory: Optional[MemoryKind] = None,
        handoffs: Optional[Dict[str, str]] = None,
    ) -> "PipelinePlan":
        """Realize and compile every stage from its decision vector.

        ``handoffs`` maps intermediate tensor names to a policy:
        ``"redistribute"`` (default — the consumer reads its own derived
        format, and a redistribution is planned if the producer wrote a
        different one) or ``"direct"`` (the consumer's input format is
        overridden to the producer's realized output format, so the
        handoff is free by construction; requires both stages to share
        a grid shape).
        """
        memory = memory if memory is not None else self.default_memory()
        handoffs = dict(handoffs or {})
        for tensor, policy in handoffs.items():
            if tensor not in self.intermediates:
                raise PipelineError(
                    f"handoff names {tensor!r}, which is not an "
                    f"intermediate tensor of this pipeline"
                )
            if policy not in (HANDOFF_REDISTRIBUTE, HANDOFF_DIRECT):
                raise PipelineError(
                    f"unknown handoff policy {policy!r} for {tensor!r} "
                    f"(expected 'redistribute' or 'direct')"
                )
        missing = [s.name for s in self.stages if s.name not in decisions]
        if missing:
            raise PipelineError(f"no decision for stages {missing}")

        realized: Dict[str, Tuple[Format, Machine]] = {}
        scheduled: List[ScheduledStage] = []
        for stage in self.stages:
            decision = decisions[stage.name]
            machine = Machine(self.cluster, Grid(*decision.grid))
            overrides: Dict[str, Format] = {}
            for tensor in stage.inputs:
                if handoffs.get(tensor) != HANDOFF_DIRECT:
                    continue
                if tensor not in realized:
                    continue
                fmt, producer_machine = realized[tensor]
                if producer_machine.shape != machine.shape:
                    raise PipelineError(
                        f"direct handoff of {tensor!r} needs matching "
                        f"grids, but the producer uses "
                        f"{producer_machine.shape} and {stage.name!r} "
                        f"uses {machine.shape}"
                    )
                overrides[tensor] = fmt
            # Each stage schedules a private copy of its assignment:
            # stages share TensorVar objects (that is what makes them a
            # pipeline), but a tensor's realized format differs between
            # its producer and its consumers, and compiled plans read
            # ``tensor.format`` at simulation time.
            work = copy.deepcopy(stage.assignment)
            schedule, formats = realize(
                work,
                machine,
                decision,
                memory=memory,
                format_overrides=overrides,
            )
            kernel = compile_kernel(schedule, machine)
            realized[stage.output] = (formats[stage.output], machine)
            scheduled.append(ScheduledStage(
                name=stage.name,
                assignment=work,
                decision=decision,
                machine=machine,
                schedule=schedule,
                formats=formats,
                kernel=kernel,
            ))
        return PipelinePlan(self, scheduled, handoffs)


class ScheduledStage:
    """One realized, compiled pipeline stage."""

    def __init__(
        self,
        name: str,
        assignment: Assignment,
        decision: Decision,
        machine: Machine,
        schedule: Schedule,
        formats: Dict[str, Format],
        kernel: Kernel,
    ):
        self.name = name
        self.assignment = assignment
        self.decision = decision
        self.machine = machine
        self.schedule = schedule
        self.formats = formats
        self.kernel = kernel

    def tensor(self, name: str) -> TensorVar:
        for tensor in self.assignment.tensors():
            if tensor.name == name:
                return tensor
        raise PipelineError(
            f"stage {self.name!r} does not touch tensor {name!r}"
        )


class PipelinePlan:
    """A fully scheduled pipeline: compiled stages plus handoff plan."""

    def __init__(
        self,
        pipeline: Pipeline,
        stages: List[ScheduledStage],
        handoffs: Dict[str, str],
    ):
        self.pipeline = pipeline
        self.stages = stages
        self.handoffs = handoffs
        self._by_name = {s.name: s for s in stages}

    def stage(self, name: str) -> ScheduledStage:
        try:
            return self._by_name[name]
        except KeyError:
            raise PipelineError(f"unknown stage {name!r}") from None

    def handoff_formats(
        self, edge: PipelineEdge
    ) -> Tuple[Format, Machine, Format, Machine]:
        """(producer format+machine, consumer format+machine) of an edge."""
        producer = self.stage(edge.producer)
        consumer = self.stage(edge.consumer)
        return (
            producer.formats[edge.tensor],
            producer.machine,
            consumer.formats[edge.tensor],
            consumer.machine,
        )

    def simulate(
        self,
        params: MachineParams = LASSEN,
        check_capacity: bool = True,
        mode: str = "orbit",
    ) -> PipelineReport:
        """Simulate every stage plus every unmatched handoff.

        Stage simulations go through the shared
        :data:`~repro.bench.cache.SIM_CACHE`; redistribution reports are
        memoized per layout pair. Raises
        :class:`~repro.util.errors.OutOfMemoryError` when any stage
        exceeds capacity (with ``check_capacity=True``).
        """
        from repro.bench.cache import SIM_CACHE

        stage_costs = [
            StageCost(
                name=stage.name,
                report=SIM_CACHE.simulate(
                    stage.kernel,
                    params,
                    check_capacity=check_capacity,
                    mode=mode,
                ),
            )
            for stage in self.stages
        ]
        edge_costs = []
        for edge in self.pipeline.edges:
            src_fmt, src_machine, dst_fmt, dst_machine = (
                self.handoff_formats(edge)
            )
            if formats_equivalent(src_fmt, src_machine, dst_fmt, dst_machine):
                edge_costs.append(EdgeCost(
                    tensor=edge.tensor,
                    producer=edge.producer,
                    consumer=edge.consumer,
                    matched=True,
                ))
                continue
            tensor = self.stage(edge.consumer).tensor(edge.tensor)
            report = redistribution_report(
                tensor, src_fmt, src_machine, dst_fmt, dst_machine, params
            )
            edge_costs.append(EdgeCost(
                tensor=edge.tensor,
                producer=edge.producer,
                consumer=edge.consumer,
                matched=False,
                report=report,
            ))
        return PipelineReport.build(
            stage_costs, edge_costs, self.pipeline.cluster.num_nodes
        )

    def pretty(self) -> str:
        """Readable pseudocode of every stage's distributed program."""
        blocks = []
        for stage in self.stages:
            blocks.append(
                f"== stage {stage.name} "
                f"({stage.decision.describe()}) ==\n"
                + stage.kernel.pretty()
            )
        return "\n\n".join(blocks)
