"""Pricing inter-stage redistributions, memoized across a process.

The planner itself lives in :mod:`repro.core.transfer`
(:func:`~repro.core.transfer.redistribution_trace`): it emits the exact
:class:`~repro.runtime.trace.Copy` traffic a layout change requires,
batched through the same owner arithmetic the orbit executor uses. This
module prices that trace on the cost model and memoizes the result the
way :data:`~repro.bench.cache.SIM_CACHE` memoizes kernel simulations —
a joint tuning run re-scores the same handoff for many stage-schedule
combinations, and the redistribution cost is a pure function of the
layouts, the cluster, and the cost-model parameters (the tensor's name
does not matter, so equal-shaped handoffs share one entry).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.cache import cluster_signature, params_key
from repro.core.transfer import redistribution_trace
from repro.formats.format import Format
from repro.ir.tensor import TensorVar
from repro.machine.machine import Machine
from repro.sim.costmodel import CostModel
from repro.sim.params import MachineParams
from repro.sim.report import SimReport

_MEMO: Dict[Tuple, SimReport] = {}


def _memo_key(
    tensor: TensorVar,
    src_format: Format,
    src_machine: Machine,
    dst_format: Format,
    dst_machine: Machine,
    params: MachineParams,
) -> Tuple:
    return (
        tensor.shape,
        tensor.dtype.str,
        src_format.notation(),
        src_format.memory.value,
        src_machine.shape,
        dst_format.notation(),
        dst_format.memory.value,
        dst_machine.shape,
        cluster_signature(src_machine.cluster),
        params_key(params),
    )


def redistribution_report(
    tensor: TensorVar,
    src_format: Format,
    src_machine: Machine,
    dst_format: Format,
    dst_machine: Machine,
    params: MachineParams,
) -> SimReport:
    """Simulated cost of moving ``tensor`` between two layouts."""
    key = _memo_key(
        tensor, src_format, src_machine, dst_format, dst_machine, params
    )
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    trace = redistribution_trace(
        tensor, src_format, src_machine, dst_format, dst_machine
    )
    report = CostModel(src_machine.cluster, params).time_trace(trace)
    _MEMO[key] = report
    return report


def clear_cache():
    _MEMO.clear()


def cache_size() -> int:
    return len(_MEMO)
