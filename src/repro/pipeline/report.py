"""Pipeline simulation reports: per-stage + per-handoff breakdown.

A pipeline executes stage by stage (bulk-synchronous, like the steps
inside one kernel), so its cost is the sum of the per-stage
:class:`~repro.sim.report.SimReport`s plus the cost of every inter-stage
redistribution that actually moves data. The combined report is itself
an ordinary :class:`SimReport` — a single-stage pipeline's combined
report is identical to ``Kernel.simulate()`` on that stage (the parity
contract of ``tests/pipeline/test_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.report import SimReport


@dataclass
class StageCost:
    """One stage's simulated summary."""

    name: str
    report: SimReport


@dataclass
class EdgeCost:
    """One producer→consumer handoff of an intermediate tensor.

    ``matched`` means the consumer reads the exact layout the producer
    wrote (equal distribution notation, grid shape and memory kind) —
    no redistribution is planned and ``report`` is ``None``.
    """

    tensor: str
    producer: str
    consumer: str
    matched: bool
    report: Optional[SimReport] = None

    @property
    def time(self) -> float:
        return 0.0 if self.report is None else self.report.total_time

    @property
    def moved_bytes(self) -> float:
        return 0.0 if self.report is None else self.report.total_copy_bytes


@dataclass
class PipelineReport:
    """Timing breakdown of one simulated pipeline execution."""

    stages: List[StageCost]
    edges: List[EdgeCost]
    combined: SimReport

    @staticmethod
    def build(
        stages: List[StageCost], edges: List[EdgeCost], num_nodes: int
    ) -> "PipelineReport":
        reports = [s.report for s in stages] + [
            e.report for e in edges if e.report is not None
        ]
        high_water: Dict[str, int] = {}
        for report in reports:
            for name, used in report.memory_high_water.items():
                if used > high_water.get(name, 0):
                    high_water[name] = used
        combined = SimReport(
            total_time=sum(r.total_time for r in reports),
            comm_time=sum(r.comm_time for r in reports),
            compute_time=sum(r.compute_time for r in reports),
            total_flops=sum(r.total_flops for r in reports),
            bytes_touched=sum(r.bytes_touched for r in reports),
            inter_node_bytes=sum(r.inter_node_bytes for r in reports),
            total_copy_bytes=sum(r.total_copy_bytes for r in reports),
            num_nodes=num_nodes,
            memory_high_water=high_water,
            num_steps=sum(r.num_steps for r in reports),
        )
        return PipelineReport(stages=stages, edges=edges, combined=combined)

    @property
    def total_time(self) -> float:
        return self.combined.total_time

    @property
    def stage_time(self) -> float:
        return sum(s.report.total_time for s in self.stages)

    @property
    def redistribution_time(self) -> float:
        return sum(e.time for e in self.edges)

    @property
    def redistribution_bytes(self) -> float:
        return sum(e.moved_bytes for e in self.edges)

    @property
    def matched_edges(self) -> List[EdgeCost]:
        return [e for e in self.edges if e.matched]

    def describe(self) -> str:
        lines = [f"pipeline: {self.total_time:.4f}s simulated"]
        for stage in self.stages:
            r = stage.report
            lines.append(
                f"  stage {stage.name:<12s} {r.total_time:8.4f}s "
                f"(comm {r.comm_time:.4f}s, compute {r.compute_time:.4f}s)"
            )
        for edge in self.edges:
            label = f"{edge.tensor}: {edge.producer} -> {edge.consumer}"
            if edge.matched:
                lines.append(f"  handoff {label:<24s} matched (no copies)")
            else:
                gib = edge.moved_bytes / 1024 ** 3
                lines.append(
                    f"  handoff {label:<24s} {edge.time:8.4f}s "
                    f"({gib:.2f} GiB redistributed)"
                )
        return "\n".join(lines)
