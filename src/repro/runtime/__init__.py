"""The Legion-like distributed runtime substrate (Section 6).

The compiler's output — a :class:`~repro.codegen.plan.DistributedPlan` — is
executed here. The runtime reproduces the Legion behaviours the paper
relies on: implicit communication discovered from data requirements
(per-memory instance tables and nearest-valid-source copies), index task
launches placed by a mapper (the machine's grid->processor map), reduction
write-backs for non-owned outputs, and accounting of instance memory
(which is what makes replication-heavy algorithms run out of framebuffer).

Two modes share one interpreter: *functional* execution moves real numpy
blocks (correctness, verified against ``numpy.einsum``) and *symbolic*
execution records the identical phases without materializing data (used
for the paper-scale weak-scaling benchmarks).
"""

from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.instances import DataEnvironment
from repro.runtime.trace import Copy, Step, Trace, Work

__all__ = [
    "Copy",
    "DataEnvironment",
    "ExecutionResult",
    "Executor",
    "Step",
    "Trace",
    "Work",
]
