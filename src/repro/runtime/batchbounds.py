"""Vectorized bounds analysis: ``VarGraph.value_of`` over context batches.

The lockstep executor evaluates the same access expressions for every
task context in a phase; only the *values* of the bound loop variables
differ. Instead of walking the derivation graph once per context (the
seed's hot loop), this module walks it once per phase with numpy arrays
of per-context interval endpoints, mirroring every normalization rule of
:class:`~repro.util.geometry.Interval` element-wise:

* ``Interval.__post_init__`` clamps ``hi`` up to ``lo`` (empty intervals
  normalize to ``hi == lo``);
* ``scale`` maps ``[lo, hi)`` to ``[lo*f, (hi-1)*f + 1)``;
* Minkowski ``+`` of anything empty is ``[0, 0)``;
* ``clip``/``intersect`` is ``[max(lo), min(hi))`` re-normalized.

The mirror is exact: for every context the batch evaluator produces the
same interval the scalar :meth:`VarGraph.value_of` would, including the
``LoweringError`` raises in ``exact`` mode (verified by the parity tests
in ``tests/runtime/test_batched_executor.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.expr import IndexVar
from repro.ir.provenance import VarGraph
from repro.obs.spans import span
from repro.util.errors import LoweringError, ScheduleError
from repro.util.geometry import Interval, Rect

# A batched interval: per-context lo/hi endpoint arrays (or scalars when
# the value is uniform across the batch — numpy broadcasting keeps the
# arithmetic identical either way).
BatchInterval = Tuple[np.ndarray, np.ndarray]


class CtxBlock:
    """Columnar view of one context list (one plan region).

    ``env`` maps each bound loop variable to per-context ``(lo, hi)``
    endpoint columns. Launch variables hold one point per context;
    sequential variables are re-bound per iteration with :meth:`bind`
    (a scalar — the same point for every context — so re-binding costs
    O(1), not O(contexts)). Evaluation results are memoized per phase
    and invalidated on every bind.
    """

    def __init__(self, ctxs, gpu_flags: Optional[np.ndarray] = None):
        self.ctxs = ctxs
        self.n = len(ctxs)
        self.env: Dict[IndexVar, BatchInterval] = {}
        if ctxs:
            for var in ctxs[0].env:
                lo = np.fromiter(
                    (c.env[var].lo for c in ctxs), np.int64, self.n
                )
                hi = np.fromiter(
                    (c.env[var].hi for c in ctxs), np.int64, self.n
                )
                self.env[var] = (lo, hi)
        self.gpu = gpu_flags
        self._memo: Dict[Tuple[IndexVar, bool], BatchInterval] = {}

    def bind(self, var: IndexVar, value: int):
        """Bind a sequential variable to one iteration for all contexts."""
        self.env[var] = (np.int64(value), np.int64(value + 1))
        self._memo.clear()

    def unbind(self, var: IndexVar):
        self.env.pop(var, None)
        self._memo.clear()

    # ------------------------------------------------------------------
    # Batched value_of.
    # ------------------------------------------------------------------

    def values_of(
        self,
        graph: VarGraph,
        var: IndexVar,
        full_env: Dict[IndexVar, Interval],
        exact: bool = False,
    ) -> BatchInterval:
        """Per-context interval of ``var``, exactly as ``value_of``."""
        key = (var, exact)
        memo = self._memo
        if key in memo:
            return memo[key]
        out = self._eval(graph, var, full_env, exact)
        memo[key] = out
        return out

    def _eval(self, graph, var, full_env, exact) -> BatchInterval:
        if var in self.env:
            lo, hi = self.env[var]
            return _clip_extent(lo, hi, graph.extent(var))
        if var in full_env:
            iv = full_env[var]
            return _clip_extent(
                np.int64(iv.lo), np.int64(iv.hi), graph.extent(var)
            )
        rel = graph.split_rel(var)
        if rel is not None:
            o_lo, o_hi = self.values_of(graph, rel.outer, full_env, exact)
            i_lo, i_hi = self.values_of(graph, rel.inner, full_env, exact)
            # outer.scale(tile): [lo*t, (hi-1)*t + 1), re-normalized.
            s_lo = o_lo * rel.tile
            s_hi = np.maximum((o_hi - 1) * rel.tile + 1, s_lo)
            # Minkowski sum with the inner interval.
            empty = (s_hi <= s_lo) | (i_hi <= i_lo)
            lo = np.where(empty, 0, s_lo + i_lo)
            hi = np.where(empty, 0, s_hi + i_hi - 1)
            hi = np.maximum(hi, lo)
            return _clip_extent(lo, hi, graph.extent(var))
        rel = graph.rotate_rel(var)
        if rel is not None:
            extent = graph.extent(var)
            parts = [self.values_of(graph, rel.result, full_env, exact)]
            parts += [
                self.values_of(graph, s, full_env, exact)
                for s in rel.sources
            ]
            points = (parts[0][1] - parts[0][0]) == 1
            for lo, hi in parts[1:]:
                points = points & ((hi - lo) == 1)
            total = parts[0][0]
            for lo, _hi in parts[1:]:
                total = total + lo
            if np.all(points):
                v = total % extent
                return (v, v + 1)
            if exact:
                raise LoweringError(
                    f"rotated variable {var} needs concrete rotation inputs "
                    f"for an exact leaf slice"
                )
            lo = np.where(points, total % extent, 0)
            hi = np.where(points, total % extent + 1, extent)
            return (lo, hi)
        rel = graph.fuse_rel(var)
        if rel is not None:
            f_lo, f_hi = self.values_of(graph, rel.fused, full_env, exact)
            extent = graph.extent(var)
            fused_extent = graph.extent(rel.fused)
            points = (f_hi - f_lo) == 1
            if var == rel.first:
                val = f_lo // rel.second_extent
            else:
                val = f_lo % rel.second_extent
            if np.all(points):
                return (val, val + 1)
            full = (f_lo == 0) & (f_hi == fused_extent)
            if exact and np.any(~points & ~full):
                raise LoweringError(
                    f"fused variable {rel.fused} spans a partial range; the "
                    f"resulting iteration block is not rectangular in {var}"
                )
            lo = np.where(points, val, 0)
            hi = np.where(points, val + 1, extent)
            return (lo, hi)
        raise ScheduleError(
            f"cannot reconstruct {var}: not a loop variable and not derived"
        )


def _clip_extent(lo, hi, extent: int) -> BatchInterval:
    """``Interval.clip(Interval.extent(extent))``, element-wise."""
    lo2 = np.maximum(lo, 0)
    hi2 = np.maximum(np.minimum(hi, extent), lo2)
    return (lo2, hi2)


def batch_bounds(
    block: CtxBlock,
    graph: VarGraph,
    accesses,
    full_env: Dict[IndexVar, Interval],
    exact: bool = False,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], np.ndarray]:
    """Raw per-context bounding-rectangle endpoint columns.

    Returns ``(lo, hi, live)`` where ``lo``/``hi`` are ``(ndim, n)``
    endpoint matrices of each context's bounding rectangle across the
    tensor's accesses and ``live[i]`` marks contexts with at least one
    non-empty access (``bounding_rect`` semantics). For 0-dim tensors
    the matrices are ``None`` and every context is live. Endpoints of
    non-live contexts are meaningless.

    This is the orbit executor's fingerprint input: the ``(lo, hi)``
    columns are consumed directly as numpy data, without materializing
    :class:`~repro.util.geometry.Rect` objects.
    """
    n = block.n
    ndim = accesses[0].tensor.ndim
    if ndim == 0:
        return None, None, np.ones(n, dtype=bool)
    with span("bounds.batch"):
        # Stack per-access endpoint columns: (n_access, ndim, n).
        big = np.iinfo(np.int64).max
        lo_min = None
        hi_max = None
        live = None
        for access in accesses:
            los = np.empty((ndim, n), dtype=np.int64)
            his = np.empty((ndim, n), dtype=np.int64)
            for d, v in enumerate(access.indices):
                lo, hi = block.values_of(graph, v, full_env, exact)
                los[d, :] = lo
                his[d, :] = hi
            empty = (his <= los).any(axis=0)
            los = np.where(empty, big, los)
            his = np.where(empty, -big, his)
            if lo_min is None:
                lo_min, hi_max, live = los, his, ~empty
            else:
                lo_min = np.minimum(lo_min, los)
                hi_max = np.maximum(hi_max, his)
                live = live | ~empty
        return lo_min, hi_max, live


def batch_rects(
    block: CtxBlock,
    graph: VarGraph,
    accesses,
    full_env: Dict[IndexVar, Interval],
    exact: bool = False,
) -> Tuple[List[Optional[Rect]], List[Tuple[Rect, List[int]]]]:
    """Per-context bounding rectangles of one tensor's accesses, grouped.

    The batched analogue of ``Executor._rect_of``: evaluates every access
    index over the whole context batch, takes the per-context bounding
    rectangle across accesses (empty accesses excluded, as in
    ``bounding_rect``), and groups contexts by identical resulting
    rectangle — the unit of batched fetch resolution.

    Returns ``(rect_of, groups)`` where ``rect_of[i]`` is context ``i``'s
    rectangle (``None`` when every access is empty, matching the scalar
    path) and ``groups`` lists ``(rect, ctx_indices)`` in first-seen
    context order.
    """
    n = block.n
    ndim = accesses[0].tensor.ndim
    if ndim == 0:
        rect = Rect(())
        return [rect] * n, [(rect, list(range(n)))]
    lo_min, hi_max, live = batch_bounds(
        block, graph, accesses, full_env, exact
    )
    rect_of: List[Optional[Rect]] = [None] * n
    groups: List[Tuple[Rect, List[int]]] = []
    seen: Dict[Tuple[int, ...], int] = {}
    lo_cols = lo_min.T
    hi_cols = hi_max.T
    for i in range(n):
        if not live[i]:
            continue
        key = tuple(lo_cols[i]) + tuple(hi_cols[i])
        slot = seen.get(key)
        if slot is None:
            rect = Rect(
                tuple(
                    Interval(int(lo_cols[i][d]), int(hi_cols[i][d]))
                    for d in range(ndim)
                )
            )
            seen[key] = len(groups)
            groups.append((rect, [i]))
            rect_of[i] = rect
        else:
            rect, members = groups[slot]
            members.append(i)
            rect_of[i] = rect
    return rect_of, groups
