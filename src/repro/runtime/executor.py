"""The lockstep plan interpreter.

Executes a :class:`~repro.codegen.plan.DistributedPlan` over all task
contexts simultaneously, in bulk-synchronous steps — one step per
``communicate`` iteration, matching the execution-space model of Section
3.3 (every processor sits at the same relative time). Index task launches
expand contexts across machine grid points (nested launches expand
further, which is how hierarchical node/GPU schedules execute); sequential
loops advance all contexts together; leaves either move real numpy blocks
(functional mode) or just record work (symbolic mode).

Two interpretation strategies share one state machine:

* the **batched** fast path (default for symbolic execution) evaluates
  bounds for every context of a phase at once with the vectorized
  evaluator in :mod:`repro.runtime.batchbounds`, groups contexts by
  identical ``(tensor, rect)`` request, and resolves each group against
  the pre-phase instance state once (:meth:`DataEnvironment.resolve_batch`);
* the **scalar** path (``batched=False``, and always used for leaf
  computation in functional mode) interprets one context at a time, as
  the original executor did.

Both paths mutate the instance state in the same per-context order, so
they produce byte-for-byte identical traces — the same copies, flops,
bytes, and memory high-water marks (asserted by the parity tests in
``tests/runtime/test_batched_executor.py``).
"""

from __future__ import annotations

from collections import ChainMap
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.codegen.plan import (
    DistributedPlan,
    LaunchNode,
    LeafNode,
    PlanNode,
    SeqNode,
)
from repro.ir.concrete import Assign
from repro.ir.expr import Access, Add, IndexVar, Mul
from repro.ir.tensor import _terms
from repro.machine.cluster import MemoryKind, Processor
from repro.runtime.batchbounds import CtxBlock, batch_rects
from repro.runtime.instances import DataEnvironment
from repro.runtime.trace import Copy, Step, Trace
from repro.util.errors import LoweringError
from repro.util.geometry import Interval, Rect, bounding_rect


@dataclass
class _Ctx:
    """One task context: where it runs and which loop iterations it holds."""

    ctx_id: int
    coords: Tuple[int, ...]
    proc: Processor
    env: Dict[IndexVar, Interval] = field(default_factory=dict)


@dataclass
class _LeafBatch:
    """Vectorized accounting of one leaf assignment over a context batch.

    Pure data: per-context flops/bytes columns computed in one shot by
    :meth:`Executor._leaf_work_batch`; applied to the trace one context
    at a time (in context order) so state mutations match the scalar
    interpreter exactly.
    """

    empty: np.ndarray
    flops: np.ndarray
    nbytes: np.ndarray
    staged: np.ndarray
    lhs_name: str
    lhs_ndim: int
    lhs_los: Optional[np.ndarray]  # (ndim, n) endpoint columns
    lhs_his: Optional[np.ndarray]
    _rect_cache: Dict[Tuple[int, ...], Rect] = field(default_factory=dict)

    def lhs_rect(self, i: int) -> Rect:
        """The output rectangle of context ``i`` (deduplicated)."""
        if self.lhs_ndim == 0:
            return Rect(())
        lo = self.lhs_los[:, i]
        hi = self.lhs_his[:, i]
        key = tuple(lo) + tuple(hi)
        rect = self._rect_cache.get(key)
        if rect is None:
            rect = Rect(
                tuple(
                    Interval(int(lo[d]), int(hi[d]))
                    for d in range(self.lhs_ndim)
                )
            )
            self._rect_cache[key] = rect
        return rect


@dataclass
class ExecutionResult:
    """Outcome of one kernel execution."""

    trace: Trace
    outputs: Dict[str, np.ndarray]
    memory_high_water: Dict[str, int]


class Executor:
    """Interprets a plan functionally and/or symbolically.

    Parameters
    ----------
    materialize:
        When True, tensors are real numpy arrays and leaves compute;
        when False only the trace (copies, work, memory) is produced.
    check_capacity:
        When True, exceeding any memory capacity raises
        :class:`~repro.util.errors.OutOfMemoryError` — enable for
        paper-scale simulations, disable for small functional tests.
    batched:
        When True, fetch resolution (and, in symbolic mode, leaf
        accounting) runs on the vectorized batch path. Defaults to
        symbolic-only; pass False to force the scalar reference
        interpreter (used by the parity tests).
    sanitize:
        Debug mode: after the run, replay the trace through the static
        analyzer's sanitizer (:func:`repro.analysis.sanitize_trace`) and
        raise :class:`~repro.util.errors.TraceSanityError` on any
        finding. Findings are also kept on ``self.sanity_findings``.
    """

    def __init__(
        self,
        plan: DistributedPlan,
        materialize: bool = True,
        check_capacity: bool = False,
        batched: Optional[bool] = None,
        sanitize: bool = False,
        fault_plan=None,
    ):
        self.plan = plan
        self.machine = plan.machine
        self.graph = plan.graph
        self.materialize = materialize
        self.check_capacity = check_capacity
        self.batched = (not materialize) if batched is None else batched
        self.sanitize = sanitize
        self.fault_plan = fault_plan
        self.sanity_findings = []
        self.full_env: Dict[IndexVar, Interval] = {}
        self._collect_extents(plan.root)
        self._fetch_output = self._output_is_read()

    # ------------------------------------------------------------------
    # Setup helpers.
    # ------------------------------------------------------------------

    def _collect_extents(self, node: PlanNode):
        if isinstance(node, LaunchNode):
            for var, extent in zip(node.vars, node.extents):
                self.full_env[var] = Interval.extent(extent)
            self._collect_extents(node.body)
        elif isinstance(node, SeqNode):
            self.full_env[node.var] = Interval.extent(node.extent)
            self._collect_extents(node.body)
        elif isinstance(node, LeafNode):
            for var in node.loop_vars:
                self.full_env[var] = Interval.extent(self.graph.extent(var))

    def _output_is_read(self) -> bool:
        if self.plan.assignment.accumulate:
            return True
        leaf = self._leaf(self.plan.root)
        reads = set()
        for assign in leaf.assigns:
            reads |= {a.tensor.name for a in assign.rhs.accesses()}
        return self.plan.output in reads

    def _leaf(self, node: PlanNode) -> LeafNode:
        while not isinstance(node, LeafNode):
            node = node.body
        return node

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def run(
        self, inputs: Optional[Dict[str, np.ndarray]] = None
    ) -> ExecutionResult:
        """Execute the plan.

        In functional mode ``inputs`` must provide one array per input
        tensor; the output array is zero-initialized (reduction semantics)
        and returned in ``outputs``.
        """
        self.env = DataEnvironment(
            self.plan, check_capacity=self.check_capacity
        )
        self.trace = Trace()
        self._arm_faults()
        self.arrays: Dict[str, np.ndarray] = {}
        if self.materialize:
            if inputs is None:
                raise ValueError("functional execution needs input arrays")
            required = {
                t.name for t in self.plan.assignment.tensors()
            } - {self.plan.output}
            missing = required - set(inputs)
            if missing:
                raise ValueError(
                    f"functional execution is missing input arrays for "
                    f"{sorted(missing)}"
                )
            for name, tensor in self.plan.tensors.items():
                if name == self.plan.output:
                    continue
                if name in inputs:
                    arr = np.asarray(inputs[name], dtype=tensor.dtype)
                    if arr.shape != tensor.shape:
                        raise ValueError(
                            f"input {name} has shape {arr.shape}, tensor "
                            f"declares {tensor.shape}"
                        )
                    self.arrays[name] = arr
            out_tensor = self.plan.tensors[self.plan.output]
            self.arrays[self.plan.output] = np.zeros(
                out_tensor.shape, dtype=out_tensor.dtype
            )
        root_ctx = _Ctx(
            ctx_id=0,
            coords=tuple([0] * self.machine.dim),
            proc=self.machine.proc_at(tuple([0] * self.machine.dim)),
        )
        ctxs = [root_ctx]
        self._exec(self.plan.root, ctxs, self._make_block(ctxs))
        self.trace.memory_high_water = dict(self.env.high_water)
        if self.sanitize:
            self._sanity_check(self.trace)
        outputs = {}
        if self.materialize:
            outputs[self.plan.output] = self.arrays[self.plan.output]
        return ExecutionResult(
            trace=self.trace,
            outputs=outputs,
            memory_high_water=dict(self.env.high_water),
        )

    def _arm_faults(self):
        """Install the fault-injection step hook on the fresh trace.

        Armed only when a :class:`~repro.faults.events.FaultPlan` was
        given; the hook raises
        :class:`~repro.util.errors.NodeFailure` at the planned phase
        boundary, so the trace holds exactly the completed steps.
        """
        if self.fault_plan is None:
            return
        from repro.faults.events import install_fault_hook  # local: cycle

        install_fault_hook(self.trace, self.fault_plan, self)

    def _sanity_check(self, trace: Trace):
        """Replay ``trace`` through the independent analyzer pass."""
        from repro.analysis.sanitizer import sanitize_trace
        from repro.util.errors import TraceSanityError

        self.sanity_findings = sanitize_trace(self.plan, trace)
        if self.sanity_findings:
            raise TraceSanityError(self.sanity_findings)

    # ------------------------------------------------------------------
    # Interpreter.
    # ------------------------------------------------------------------

    def _make_block(self, ctxs: List[_Ctx]) -> Optional[CtxBlock]:
        if not self.batched:
            return None
        gpu = np.fromiter(
            (c.proc.memory.kind is MemoryKind.GPU_FB for c in ctxs),
            bool,
            len(ctxs),
        )
        return CtxBlock(ctxs, gpu)

    def _exec(
        self, node: PlanNode, ctxs: List[_Ctx], block: Optional[CtxBlock]
    ):
        if isinstance(node, LaunchNode):
            self._exec_launch(node, ctxs)
        elif isinstance(node, SeqNode):
            self._exec_seq(node, ctxs, block)
        elif isinstance(node, LeafNode):
            self._exec_leaf(node, ctxs, block)
        else:
            raise LoweringError(f"unknown plan node {type(node).__name__}")

    def _exec_launch(self, node: LaunchNode, ctxs: List[_Ctx]):
        new_ctxs: List[_Ctx] = []
        for ctx in ctxs:
            for point in product(*(range(e) for e in node.extents)):
                coords = list(ctx.coords)
                env = dict(ctx.env)
                for dim, var, value in zip(node.machine_dims, node.vars, point):
                    coords[dim] = value
                    env[var] = Interval.point(value)
                coords_t = tuple(coords)
                new_ctxs.append(
                    _Ctx(
                        ctx_id=len(new_ctxs),
                        coords=coords_t,
                        proc=self.machine.proc_at(coords_t),
                        env=env,
                    )
                )
        block = self._make_block(new_ctxs)
        held: Dict[int, Set] = {}
        if node.comm:
            step = self.trace.new_step("task-start fetch")
            plans = self._phase_plans(node.comm, new_ctxs, block)
            for ctx in new_ctxs:
                held[ctx.ctx_id] = self._fetch_commit(
                    plans[ctx.ctx_id], ctx, step
                )
        self._exec(node.body, new_ctxs, block)
        if node.flush:
            step = self.trace.new_step("task-end reduction")
            for ctx in new_ctxs:
                for name in node.flush:
                    self._flush(name, ctx, step)
        for ctx in new_ctxs:
            for name, rect in held.get(ctx.ctx_id, set()):
                self.env.release(name, ctx.coords, rect)

    def _exec_seq(
        self, node: SeqNode, ctxs: List[_Ctx], block: Optional[CtxBlock]
    ):
        prev_held: Dict[int, Set] = {ctx.ctx_id: set() for ctx in ctxs}
        for iteration in range(node.extent):
            # One shared (frozen) point interval per iteration, not one
            # allocation per context.
            point = Interval.point(iteration)
            for ctx in ctxs:
                ctx.env[node.var] = point
            if block is not None:
                block.bind(node.var, iteration)
            if node.comm:
                step = self.trace.new_step(f"{node.var.name}={iteration}")
                plans = self._phase_plans(node.comm, ctxs, block)
                new_held: Dict[int, Set] = {}
                for ctx in ctxs:
                    new_held[ctx.ctx_id] = self._fetch_commit(
                        plans[ctx.ctx_id], ctx, step
                    )
                for ctx in ctxs:
                    stale = prev_held[ctx.ctx_id] - new_held[ctx.ctx_id]
                    for name, rect in stale:
                        self.env.release(name, ctx.coords, rect)
                prev_held = new_held
            self._exec(node.body, ctxs, block)
            if node.flush:
                step = self.trace.new_step(f"{node.var.name} reduction")
                for ctx in ctxs:
                    for name in node.flush:
                        self._flush(name, ctx, step)
        for ctx in ctxs:
            for name, rect in prev_held[ctx.ctx_id]:
                self.env.release(name, ctx.coords, rect)
            ctx.env.pop(node.var, None)
        if block is not None:
            block.unbind(node.var)

    def _exec_leaf(
        self, node: LeafNode, ctxs: List[_Ctx], block: Optional[CtxBlock]
    ):
        step = self.trace.current
        plans = None
        if node.comm:
            plans = self._phase_plans(node.comm, ctxs, block)
        batch = None
        if block is not None and not self.materialize:
            batch = self._leaf_work_batch(node, block)
        for idx, ctx in enumerate(ctxs):
            held = set()
            if plans is not None:
                held = self._fetch_commit(plans[ctx.ctx_id], ctx, step)
            if batch is None:
                self._run_leaf_body(node, ctx, step)
            else:
                self._apply_leaf_batch(node, batch, idx, ctx, step)
            for name in node.flush:
                self._flush(name, ctx, step)
            for name, rect in held:
                self.env.release(name, ctx.coords, rect)

    # ------------------------------------------------------------------
    # Communication.
    # ------------------------------------------------------------------

    def _rect_of(
        self, ctx: _Ctx, name: str, exact: bool
    ) -> Optional[Rect]:
        """Bounding rectangle of a tensor's data needed below this point."""
        env = ChainMap(ctx.env, self.full_env)
        rects = []
        for access in self.plan.accesses[name]:
            if access.tensor.ndim == 0:
                rects.append(Rect(()))
                continue
            intervals = tuple(
                self.graph.value_of(v, env, exact) for v in access.indices
            )
            rects.append(Rect(intervals))
        return bounding_rect(rects) if rects else None

    def _phase_plans(
        self, names: List[str], ctxs: List[_Ctx], block: Optional[CtxBlock]
    ) -> Dict[int, List[Tuple[str, Rect, List]]]:
        """Plan fetches for every context of a phase at once.

        Resolution and registration are split at *phase* granularity: all
        contexts resolve against the same pre-phase state, so a chunk
        needed by many processors resolves to one source (a broadcast)
        instead of chaining through instances that are still in flight.

        On the batch path, contexts are grouped by identical ``(tensor,
        rect)`` request and each group is resolved once; the returned
        per-context plans are identical to the scalar path's (same
        entries, same order), so :meth:`_fetch_commit` behaves the same
        either way.
        """
        if block is None:
            return {
                ctx.ctx_id: self._fetch_resolve(names, ctx) for ctx in ctxs
            }
        plans: Dict[int, List[Tuple[str, Rect, List]]] = {
            ctx.ctx_id: [] for ctx in ctxs
        }
        for name in names:
            if name == self.plan.output and not self._fetch_output:
                continue
            _rect_of, groups = batch_rects(
                block,
                self.graph,
                self.plan.accesses[name],
                self.full_env,
                exact=False,
            )
            for rect, members in groups:
                if rect.is_empty:
                    continue
                sources = self.env.resolve_batch(
                    name, rect, [ctxs[i].coords for i in members]
                )
                for i, srcs in zip(members, sources):
                    plans[ctxs[i].ctx_id].append((name, rect, srcs))
        return plans

    def _fetch_resolve(
        self, names: List[str], ctx: _Ctx
    ) -> List[Tuple[str, Rect, List]]:
        """Scalar reference: plan one context's fetches at phase start."""
        plans: List[Tuple[str, Rect, List]] = []
        for name in names:
            if name == self.plan.output and not self._fetch_output:
                continue
            rect = self._rect_of(ctx, name, exact=False)
            if rect is None or rect.is_empty:
                continue
            sources = self.env.resolve(name, ctx.coords, rect)
            plans.append((name, rect, sources))
        return plans

    def _fetch_commit(
        self, plans: List[Tuple[str, Rect, List]], ctx: _Ctx, step: Step
    ) -> Set[Tuple[str, Rect]]:
        """Install planned fetches and emit their copies."""
        held: Set[Tuple[str, Rect]] = set()
        for name, rect, sources in plans:
            if self.env.register(name, ctx.coords, rect):
                held.add((name, rect))
            for src_coords, piece in sources:
                self._emit_copy(step, name, piece, src_coords, ctx)
        return held

    def _emit_copy(
        self,
        step: Step,
        name: str,
        rect: Rect,
        src_coords: Tuple[int, ...],
        ctx: _Ctx,
        reduce: bool = False,
    ):
        tensor = self.plan.tensors[name]
        nbytes = rect.volume * tensor.itemsize
        if nbytes == 0:
            return
        src_proc = self.machine.proc_at(src_coords)
        if src_proc.proc_id == ctx.proc.proc_id and not reduce:
            return  # same physical processor (over-decomposition)
        step.copies.append(
            Copy(
                tensor=name,
                rect=rect,
                nbytes=nbytes,
                src_proc=src_proc if not reduce else ctx.proc,
                dst_proc=ctx.proc if not reduce else src_proc,
                src_mem=(
                    self.env.source_memory(name, src_coords, rect)
                    if not reduce
                    else ctx.proc.memory
                ),
                dst_mem=(
                    ctx.proc.memory
                    if not reduce
                    else self.env.source_memory(name, src_coords, rect)
                ),
                src_coords=src_coords if not reduce else ctx.coords,
                dst_coords=ctx.coords if not reduce else src_coords,
                reduce=reduce,
            )
        )

    def _flush(self, name: str, ctx: _Ctx, step: Step):
        """Reduce pending non-owned output partials back to their owners."""
        for rect, owner in self.env.flush_partials(name, ctx.coords):
            if owner == ctx.coords:
                continue
            self.env.stage_reduction(name, owner, rect)
            self._emit_copy(step, name, rect, owner, ctx, reduce=True)

    # ------------------------------------------------------------------
    # Leaf execution.
    # ------------------------------------------------------------------

    def _leaf_work_batch(
        self, node: LeafNode, block: CtxBlock
    ) -> List[_LeafBatch]:
        """Vectorized symbolic leaf accounting for a whole context batch.

        Pure computation (no trace/instance mutation): per-assign columns
        of flops, touched bytes, and PCIe-staged bytes, mirroring
        :meth:`_run_leaf_body` element-wise.
        """
        graph, full_env, n = self.graph, self.full_env, block.n
        out: List[_LeafBatch] = []
        for assign in node.assigns:
            empty = np.zeros(n, dtype=bool)
            var_sizes: Dict[IndexVar, np.ndarray] = {}
            for var in _assign_vars(assign):
                lo, hi = block.values_of(graph, var, full_env, exact=True)
                size = np.broadcast_to(np.asarray(hi - lo), (n,))
                var_sizes[var] = size
                empty = empty | (size == 0)
            volume = np.ones(n, dtype=np.int64)
            for size in var_sizes.values():
                volume = volume * size
            flops = volume * _ops_per_point(assign)
            accesses = [assign.lhs] + list(assign.rhs.accesses())
            nbytes = np.zeros(n, dtype=np.int64)
            staged = np.zeros(n, dtype=np.int64)
            lhs_los = lhs_his = None
            for access in accesses:
                ndim = access.tensor.ndim
                if ndim == 0:
                    vol = np.ones(n, dtype=np.int64)
                    los = his = None
                else:
                    los = np.empty((ndim, n), dtype=np.int64)
                    his = np.empty((ndim, n), dtype=np.int64)
                    for d, v in enumerate(access.indices):
                        lo, hi = block.values_of(
                            graph, v, full_env, exact=True
                        )
                        los[d, :] = lo
                        his[d, :] = hi
                    vol = np.prod(his - los, axis=0)
                abytes = vol * access.tensor.itemsize
                nbytes = nbytes + abytes
                if access.tensor.format.memory is MemoryKind.SYSTEM_MEM:
                    # Host-resident data computed on a GPU streams over
                    # PCIe (out-of-core execution, e.g. COSMA's GEMM).
                    staged = staged + abytes * block.gpu
                if access is assign.lhs:
                    lhs_los, lhs_his = los, his
            out.append(
                _LeafBatch(
                    empty=empty,
                    flops=flops,
                    nbytes=nbytes,
                    staged=staged,
                    lhs_name=assign.lhs.tensor.name,
                    lhs_ndim=assign.lhs.tensor.ndim,
                    lhs_los=lhs_los,
                    lhs_his=lhs_his,
                )
            )
        return out

    def _apply_leaf_batch(
        self,
        node: LeafNode,
        batch: List[_LeafBatch],
        idx: int,
        ctx: _Ctx,
        step: Step,
    ):
        """Apply one context's precomputed leaf accounting to the trace."""
        work = step.work_for(ctx.proc)
        for entry in batch:
            if entry.empty[idx]:
                continue
            work.add(
                int(entry.flops[idx]),
                int(entry.nbytes[idx]),
                node.kernel,
                node.parallel,
                staged_bytes=int(entry.staged[idx]),
            )
            if entry.lhs_name == self.plan.output:
                self.env.note_partial(
                    entry.lhs_name, ctx.coords, entry.lhs_rect(idx)
                )

    def _run_leaf_body(self, node: LeafNode, ctx: _Ctx, step: Step):
        env = ChainMap(ctx.env, self.full_env)
        work = step.work_for(ctx.proc)
        local_arrays: Dict[str, np.ndarray] = {}
        for assign in node.assigns:
            rects: Dict[int, Rect] = {}
            variables = _assign_vars(assign)
            var_sizes = {}
            empty = False
            for var in variables:
                interval = self.graph.value_of(var, env, exact=True)
                var_sizes[var] = interval.size
                if interval.size == 0:
                    empty = True
            if empty:
                continue
            volume = 1
            for size in var_sizes.values():
                volume *= size
            flops = volume * _ops_per_point(assign)
            accesses = [assign.lhs] + list(assign.rhs.accesses())
            nbytes = 0
            staged = 0
            gpu_proc = ctx.proc.memory.kind.value == "gpu_fb"
            for access in accesses:
                intervals = tuple(
                    self.graph.value_of(v, env, exact=True)
                    for v in access.indices
                )
                rect = Rect(intervals)
                rects[id(access)] = rect
                access_bytes = rect.volume * access.tensor.itemsize
                nbytes += access_bytes
                if gpu_proc and access.tensor.format.memory.value == "sysmem":
                    # Host-resident data computed on a GPU streams over
                    # PCIe (out-of-core execution, e.g. COSMA's GEMM).
                    staged += access_bytes
            work.add(
                flops, nbytes, node.kernel, node.parallel, staged_bytes=staged
            )
            out_rect = rects[id(assign.lhs)]
            out_name = assign.lhs.tensor.name
            if out_name == self.plan.output:
                self.env.note_partial(out_name, ctx.coords, out_rect)
            if self.materialize:
                self._compute(assign, rects, local_arrays, var_sizes)

    def _compute(
        self,
        assign: Assign,
        rects: Dict[int, Rect],
        local_arrays: Dict[str, np.ndarray],
        var_sizes: Dict[IndexVar, int],
    ):
        """Evaluate one leaf assignment on real data."""
        letters: Dict[IndexVar, str] = {}

        def letter(var: IndexVar) -> str:
            if var not in letters:
                letters[var] = chr(ord("a") + len(letters))
            return letters[var]

        def view(access: Access) -> np.ndarray:
            name = access.tensor.name
            if name in self.arrays:
                arr = self.arrays[name]
            else:
                if name not in local_arrays:
                    local_arrays[name] = np.zeros(
                        access.tensor.shape, dtype=access.tensor.dtype
                    )
                arr = local_arrays[name]
            if access.tensor.ndim == 0:
                # Indexing a 0-d array with () detaches a scalar; the
                # array itself is the writable view.
                return arr
            return arr[rects[id(access)].as_slices()]

        out_view = view(assign.lhs)
        if not assign.reduce:
            out_view[...] = 0.0
        reduction = [
            v for v in var_sizes if v not in assign.lhs.indices
        ]
        for coeff, accesses in _terms(assign.rhs):
            if not accesses:
                mult = 1
                for var in reduction:
                    mult *= var_sizes[var]
                out_view += coeff * mult
                continue
            subs = ",".join(
                "".join(letter(v) for v in acc.indices) for acc in accesses
            )
            operands = [view(acc) for acc in accesses]
            # Output variables not indexing any term operand broadcast
            # (e.g. the paper's a(i) += b(j) running example); reduction
            # variables not indexing the term multiply it by the local
            # iteration count (the loop nest sums it once per point).
            present = {v for acc in accesses for v in acc.indices}
            for var in reduction:
                if var not in present:
                    coeff = coeff * var_sizes[var]
            out_sub = "".join(
                letter(v) for v in assign.lhs.indices if v in present
            )
            result = np.einsum(
                f"{subs}->{out_sub}", *operands, optimize=True
            )
            shape = tuple(
                out_view.shape[d] if v in present else 1
                for d, v in enumerate(assign.lhs.indices)
            )
            out_view += coeff * np.asarray(result).reshape(shape)


def _assign_vars(assign: Assign) -> List[IndexVar]:
    seen: List[IndexVar] = []
    for access in [assign.lhs] + list(assign.rhs.accesses()):
        for var in access.indices:
            if var not in seen:
                seen.append(var)
    return seen


def _ops_per_point(assign: Assign) -> int:
    def count(expr) -> int:
        if isinstance(expr, (Add, Mul)):
            return 1 + count(expr.lhs) + count(expr.rhs)
        return 0

    ops = count(assign.rhs)
    if assign.reduce:
        ops += 1
    return max(ops, 1)
