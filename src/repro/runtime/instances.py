"""Per-memory instance tables: Legion's coherence analysis, reproduced.

Each tensor has *home* instances placed by its format's distribution
(replicas included), plus transient *cached* instances created when a task
needs data its processor does not hold. A request is resolved against the
instance state by a nearest-valid-source search:

* the requester's own home piece or cache — no copy;
* otherwise the closest holder, preferring cached neighbours over the
  distant owner. This is exactly what turns a ``rotate``-d schedule into
  systolic nearest-neighbour shifts (the neighbour still holds the chunk
  it used last step) and an un-rotated one into owner broadcasts
  (Figures 7, 8, 12 of the paper).

All instance bytes are accounted against their memory's capacity; the
high-water mark is what makes replication-heavy 3-D algorithms exhaust
GPU framebuffers at scale (Section 7.1.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.plan import DistributedPlan
from repro.machine.cluster import Memory, MemoryKind
from repro.machine.machine import Machine
from repro.util.errors import LoweringError, OutOfMemoryError
from repro.util.geometry import Rect

Coords = Tuple[int, ...]
InstanceKey = Tuple[str, Rect]

# Cache-miss sentinel (``None`` is a valid cached value).
_MISS = object()


class DataEnvironment:
    """Instance tables and memory accounting for one kernel execution."""

    def __init__(
        self,
        plan: DistributedPlan,
        check_capacity: bool = False,
        count_home: bool = True,
    ):
        self.plan = plan
        self.machine: Machine = plan.machine
        self.check_capacity = check_capacity
        # Cached (non-home) instances: key -> coords of holders.
        self._holders: Dict[InstanceKey, Set[Coords]] = {}
        # Memory accounting.
        self._usage: Dict[Memory, int] = {}
        self.high_water: Dict[Memory, int] = {}
        # Pending non-owned output partials: (coords, tensor) -> rects.
        self._partials: Dict[Tuple[Coords, str], List[Rect]] = {}
        # Memo tables for queries that are static for one execution: home
        # rectangles and instance memories per (tensor, machine point),
        # owner patterns/pieces per (tensor, rect). The formats and the
        # machine never change mid-run, so these never invalidate; they
        # turn the executor's per-phase re-derivations into dict hits.
        self._home_cache: Dict[Tuple[str, Coords], Optional[Rect]] = {}
        self._memory_cache: Dict[Tuple[str, Coords], Memory] = {}
        self._pattern_cache: Dict[InstanceKey, Optional[Sequence]] = {}
        self._pieces_cache: Dict[InstanceKey, List] = {}
        if count_home:
            self._account_home()

    # ------------------------------------------------------------------
    # Home instances.
    # ------------------------------------------------------------------

    def _account_home(self):
        """Charge every distinct home instance to its memory."""
        seen: Set[Tuple[str, str, Rect]] = set()
        for name, tensor in self.plan.tensors.items():
            if not tensor.format.is_distributed and tensor.ndim == 0:
                continue
            if not tensor.format.is_distributed:
                mem = self._memory_for(tuple([0] * self.machine.dim), name)
                self._add_bytes(mem, tensor.nbytes)
                continue
            for point in self.machine.points():
                rect = tensor.format.owned_rect(
                    self.machine, point, tensor.shape
                )
                if rect is None or rect.is_empty:
                    continue
                mem = self._memory_for(point, name)
                key = (name, mem.name, rect)
                if key in seen:
                    continue
                seen.add(key)
                self._add_bytes(mem, rect.volume * tensor.itemsize)

    def home_rect(self, name: str, coords: Coords) -> Optional[Rect]:
        key = (name, coords)
        cached = self._home_cache.get(key, _MISS)
        if cached is not _MISS:
            return cached
        tensor = self.plan.tensors[name]
        rect = tensor.format.owned_rect(self.machine, coords, tensor.shape)
        self._home_cache[key] = rect
        return rect

    def owns(self, name: str, coords: Coords, rect: Rect) -> bool:
        """Whether the home piece at ``coords`` covers ``rect``."""
        home = self.home_rect(name, coords)
        return home is not None and home.contains(rect)

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------

    def _memory_for(self, coords: Coords, name: str) -> Memory:
        """The memory an instance occupies at a machine point."""
        key = (name, coords)
        cached = self._memory_cache.get(key)
        if cached is not None:
            return cached
        mem = self._memory_for_uncached(coords, name)
        self._memory_cache[key] = mem
        return mem

    def _memory_for_uncached(self, coords: Coords, name: str) -> Memory:
        proc = self.machine.proc_at(coords)
        tensor = self.plan.tensors[name]
        wants = tensor.format.memory
        if wants is MemoryKind.GPU_FB and proc.memory.kind is MemoryKind.GPU_FB:
            return proc.memory
        if wants is MemoryKind.SYSTEM_MEM:
            node = self.machine.cluster.nodes[proc.node_id]
            if node.system_memory is not None:
                return node.system_memory
        return proc.memory

    def _add_bytes(self, mem: Memory, n: int):
        usage = self._usage.get(mem, 0) + n
        self._usage[mem] = usage
        if usage > self.high_water.get(mem.name, 0):
            self.high_water[mem.name] = usage
        if self.check_capacity and usage > mem.capacity_bytes:
            raise OutOfMemoryError(mem.name, usage, mem.capacity_bytes)

    def _sub_bytes(self, mem: Memory, n: int):
        self._usage[mem] = self._usage.get(mem, 0) - n

    def usage_of(self, mem: Memory) -> int:
        return self._usage.get(mem, 0)

    # ------------------------------------------------------------------
    # Request resolution.
    # ------------------------------------------------------------------

    def is_local(self, name: str, coords: Coords, rect: Rect) -> bool:
        """Requester already holds the data (home or cache)."""
        if self.owns(name, coords, rect):
            return True
        holders = self._holders.get((name, rect))
        return holders is not None and coords in holders

    def resolve(
        self, name: str, coords: Coords, rect: Rect
    ) -> List[Tuple[Coords, Rect]]:
        """Plan the copies needed to materialize ``rect`` at ``coords``.

        Pure query: sources reflect the instance state at phase start, so
        a batch of same-phase requests for one chunk all name the same
        source (the cost model then recognizes the broadcast). Call
        :meth:`register` afterwards to install the instance.
        """
        if rect.is_empty or self.is_local(name, coords, rect):
            return []
        return self._find_sources(name, coords, rect)

    def register(self, name: str, coords: Coords, rect: Rect) -> bool:
        """Install a cached instance at ``coords``; True if newly added.

        The instance occupies the tensor's preferred memory kind at that
        machine point — GPU framebuffer for framebuffer-pinned formats,
        node system memory for host-resident (out-of-core) formats.
        """
        if rect.is_empty or self.is_local(name, coords, rect):
            return False
        tensor = self.plan.tensors[name]
        mem = self._memory_for(coords, name)
        self._holders.setdefault((name, rect), set()).add(coords)
        self._add_bytes(mem, rect.volume * tensor.itemsize)
        return True

    def source_memory(self, name: str, coords: Coords, rect: Rect) -> Memory:
        """The memory a source instance occupies at a machine point."""
        return self._memory_for(coords, name)

    def resolve_batch(
        self, name: str, rect: Rect, coords_list: Sequence[Coords]
    ) -> List[List[Tuple[Coords, Rect]]]:
        """Resolve one ``(tensor, rect)`` request for a batch of requesters.

        The batched executor groups same-phase contexts by identical
        request rectangle; this resolves the whole group against the same
        pre-phase state. The shared work — holder lookup, owner pattern,
        owner pieces — happens once per group; only the per-requester
        parts (locality check, nearest-source selection, replica
        concretization) run per context. Each element of the result is
        exactly what :meth:`resolve` would return for that requester.
        """
        if rect.is_empty:
            return [[] for _ in coords_list]
        holders = self._holders.get((name, rect))
        holder_list: List[Coords] = list(holders) if holders else []
        pattern = self._owner_pattern(name, rect)
        out: List[List[Tuple[Coords, Rect]]] = []
        for coords in coords_list:
            if self.owns(name, coords, rect) or (
                holders is not None and coords in holders
            ):
                out.append([])
                continue
            out.append(
                self._sources_from(name, rect, coords, holder_list, pattern)
            )
        return out

    def _owner_pattern(self, name: str, rect: Rect):
        key = (name, rect)
        cached = self._pattern_cache.get(key, _MISS)
        if cached is not _MISS:
            return cached
        tensor = self.plan.tensors[name]
        pattern = tensor.format.owner_pattern(
            self.machine, rect, tensor.shape
        )
        self._pattern_cache[key] = pattern
        return pattern

    def _owner_pieces(self, name: str, rect: Rect) -> List:
        key = (name, rect)
        cached = self._pieces_cache.get(key)
        if cached is not None:
            return cached
        tensor = self.plan.tensors[name]
        pieces = tensor.format.owner_pieces(self.machine, rect, tensor.shape)
        if not pieces:
            raise LoweringError(
                f"no valid instance found for {name} rect {rect}"
            )
        self._pieces_cache[key] = pieces
        return pieces

    def _find_sources(
        self, name: str, coords: Coords, rect: Rect
    ) -> List[Tuple[Coords, Rect]]:
        """Nearest valid source(s) for a request."""
        holders = self._holders.get((name, rect))
        return self._sources_from(
            name,
            rect,
            coords,
            list(holders) if holders else [],
            self._owner_pattern(name, rect),
        )

    def _sources_from(
        self,
        name: str,
        rect: Rect,
        coords: Coords,
        holder_list: List[Coords],
        pattern,
    ) -> List[Tuple[Coords, Rect]]:
        """Source selection shared by the scalar and batched resolvers.

        ``holder_list`` and ``pattern`` are the request's shared state,
        looked up once per call (scalar) or once per group (batched).
        """
        candidates = [(c, 0) for c in holder_list]
        if pattern is not None:
            candidates.append((self._concretize(pattern, coords), 1))
        if candidates:
            distance = self.machine.torus_distance
            # Deterministic selection: nearest source; equidistant ties
            # prefer cached neighbours over the owner (what makes
            # rotated schedules systolic even on tiny tori) and then
            # break by coordinate, so the choice is independent of
            # holder-set iteration order (the orbit executor's
            # vectorized selection reproduces the same rule).
            best = min(
                candidates,
                key=lambda cand: (distance(cand[0], coords), cand[1], cand[0]),
            )[0]
            return [(best, rect)]
        # No single source covers the request: split it across home pieces
        # (redistribution between mismatched formats).
        return [
            (self._concretize(pat, coords), piece)
            for pat, piece in self._owner_pieces(name, rect)
        ]

    def _concretize(
        self, pattern: Sequence[Optional[int]], near: Coords
    ) -> Coords:
        """Fill a pattern's free dimensions with the requester's coords
        (the nearest replica)."""
        out = []
        for dim, value in enumerate(pattern):
            if value is not None:
                out.append(value)
            else:
                out.append(near[dim] % self.machine.shape[dim])
        return tuple(out)

    def release(self, name: str, coords: Coords, rect: Rect):
        """Evict a cached instance (end of its communicate scope)."""
        holders = self._holders.get((name, rect))
        if holders is None or coords not in holders:
            return
        holders.discard(coords)
        if not holders:
            del self._holders[(name, rect)]
        tensor = self.plan.tensors[name]
        mem = self._memory_for(coords, name)
        self._sub_bytes(mem, rect.volume * tensor.itemsize)

    # ------------------------------------------------------------------
    # Output partials (reduction write-backs).
    # ------------------------------------------------------------------

    def note_partial(self, name: str, coords: Coords, rect: Rect) -> bool:
        """Record a non-owned output write; True if a new partial instance
        was created (and charged to memory)."""
        if self.owns(name, coords, rect):
            return False
        key = (coords, name)
        rects = self._partials.setdefault(key, [])
        if rect in rects:
            return False
        rects.append(rect)
        tensor = self.plan.tensors[name]
        mem = self._memory_for(coords, name)
        self._add_bytes(mem, rect.volume * tensor.itemsize)
        return True

    def stage_reduction(self, name: str, owner: Coords, rect: Rect):
        """Charge the transient instance an owner materializes to fold an
        incoming reduction (Legion stages reduction instances before
        applying them; this pressure is part of what exhausts GPU
        framebuffers under heavy replication)."""
        tensor = self.plan.tensors[name]
        mem = self._memory_for(owner, name)
        nbytes = rect.volume * tensor.itemsize
        self._add_bytes(mem, nbytes)
        self._sub_bytes(mem, nbytes)

    def flush_partials(
        self, name: str, coords: Coords
    ) -> List[Tuple[Rect, Coords]]:
        """Pop pending partials for reduction back to their owners.

        Returns ``(rect, owner coords)`` pairs; frees the partial bytes.
        """
        key = (coords, name)
        rects = self._partials.pop(key, [])
        tensor = self.plan.tensors[name]
        mem = self._memory_for(coords, name)
        out = []
        for rect in rects:
            self._sub_bytes(mem, rect.volume * tensor.itemsize)
            pattern = tensor.format.owner_pattern(
                self.machine, rect, tensor.shape
            )
            if pattern is None:
                pieces = tensor.format.owner_pieces(
                    self.machine, rect, tensor.shape
                )
                for pat, piece in pieces:
                    out.append((piece, self._concretize(pat, coords)))
            else:
                out.append((rect, self._concretize(pattern, coords)))
        return out
