"""Orbit-compressed symbolic execution.

The paper's schedules are SPMD: at every communication phase, most grid
points issue a request that is a coordinate *translation* of their
neighbours' — same rectangle shape, same source offset, same payload.
The batched executor (PR 1) still pays O(P) Python per phase resolving
and recording those requests one context at a time; this module makes
the Python cost scale with the number of *distinct per-context
behaviours* (symmetry classes) instead, while per-member bookkeeping
runs as numpy column arithmetic:

1. **Fingerprinting.** Each context's request is fingerprinted from the
   vectorized bounds analysis (:func:`~repro.runtime.batchbounds
   .batch_bounds`): the ``(tensor, rect-shape, source-offset)`` tuple.
   Contexts with equal fingerprints form an *orbit* — a symmetry class
   under machine translation.
2. **Class-level resolution.** Ownership is computed for all requests
   at once with the vectorized distribution arithmetic
   (:meth:`~repro.formats.format.Format.owner_pattern_batch`); cached
   instances live in columnar *mirror* tables joined against requests
   by sort/searchsorted instead of per-context dict probes. Nearest-
   source selection reproduces the scalar rule ``min((torus distance,
   coords))`` exactly.
3. **Compressed traces.** Each orbit emits one representative
   :class:`~repro.runtime.trace.Copy` carrying a ``count``
   multiplicity; per-processor :class:`~repro.runtime.trace.Work` is
   likewise stored once per class of identical timelines. The exact
   per-member endpoint columns are still built (as numpy arrays, never
   Python objects) and pinned on each step, so the cost model's
   link-contention accounting is byte-identical to full execution.
4. **Fallback.** Anything the class analysis cannot prove uniform —
   requests spanning several home pieces, reduction flushes, leaf-level
   communication or flushes — falls back to the per-context scalar
   machinery against the same state, so results stay exact (asserted
   by ``tests/runtime/test_orbit_executor.py`` on every Figure 9
   schedule plus deliberately non-divisible problem sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codegen.plan import LaunchNode, LeafNode, PlanNode, SeqNode
from repro.machine.cluster import MemoryKind
from repro.machine.machine import Machine
from repro.obs.metrics import METRICS
from repro.obs.spans import span
from repro.runtime.batchbounds import CtxBlock, batch_bounds
from repro.runtime.executor import ExecutionResult, Executor, _Ctx
from repro.runtime.instances import DataEnvironment
from repro.runtime.trace import Copy, CopyColumns, Step, Trace
from repro.util.errors import OutOfMemoryError
from repro.util.geometry import Interval, Rect

# ----------------------------------------------------------------------
# Key folding: collision-free int64 row keys for vectorized joins.
# ----------------------------------------------------------------------


def fold_rows(mat: np.ndarray, ranges=None) -> np.ndarray:
    """A collision-free int64 key per row of an integer matrix.

    One lexicographic sort of the whole matrix followed by an
    adjacent-row comparison assigns dense ranks (0..n_distinct-1) in
    row-lexicographic order. Equal rows — across the whole matrix — get
    equal keys; distinct rows get distinct keys. A single ``lexsort``
    replaces the seed's per-column ``np.unique`` cascade (one argsort
    per column per fold), which dominated large-grid class grouping.
    """
    n = mat.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if mat.shape[1] == 0:
        return np.zeros(n, dtype=np.int64)
    order, diff = _sorted_groups(mat, ranges)
    new_key = np.empty(n, dtype=np.int64)
    new_key[0] = 0
    if n > 1:
        new_key[1:] = np.cumsum(diff)
    keys = np.empty(n, dtype=np.int64)
    keys[order] = new_key
    return keys


def _sorted_groups(mat: np.ndarray, ranges=None):
    """Row sort order and adjacent-row difference flags of a matrix.

    Columns are losslessly packed while their combined value range fits
    an int64 (each argsort pass of the lexsort costs the same, so
    halving the column count roughly halves the sort); the packing is
    exact (mixed-radix over per-column ranges), so equal rows stay
    equal and distinct rows distinct.
    """
    packed = _pack_columns(mat, ranges)
    if len(packed) == 1:
        order = np.argsort(packed[0], kind="stable")
        sm0 = packed[0][order]
        diff = sm0[1:] != sm0[:-1]
    else:
        order = np.lexsort(packed[::-1])
        sm = [col[order] for col in packed]
        diff = sm[0][1:] != sm[0][:-1]
        for col in sm[1:]:
            diff = diff | (col[1:] != col[:-1])
    return order, diff


def _pack_columns(mat: np.ndarray, ranges=None) -> List[np.ndarray]:
    """Mixed-radix-pack a matrix's columns into as few int64 keys as
    ranges allow (exact: distinct rows stay distinct, equal stay equal).

    ``ranges``, when given, supplies each column's value range as
    ``(min, max_exclusive)`` so the per-column scans are skipped —
    callers that know static bounds (grid shapes, tensor extents) save
    two ufunc reductions per column.
    """
    if ranges is None:
        mins = mat.min(axis=0)
        highs = mat.max(axis=0) + 1
    else:
        mins = [r[0] for r in ranges]
        highs = [r[1] for r in ranges]
    cols: List[np.ndarray] = []
    acc = None
    acc_range = 1
    limit = 2 ** 62
    for c in range(mat.shape[1]):
        r = int(highs[c]) - int(mins[c])
        shifted = mat[:, c] - mins[c]
        if acc is None:
            acc, acc_range = shifted.astype(np.int64), r
        elif acc_range * r < limit:
            acc = acc * np.int64(r) + shifted
            acc_range *= r
        else:
            cols.append(acc)
            acc, acc_range = shifted.astype(np.int64), r
    cols.append(acc)
    return cols


def fold_groups(mat: np.ndarray, ranges=None) -> Tuple[np.ndarray, np.ndarray]:
    """Equal-row groups of a matrix: ``(first, counts)``.

    ``first[g]`` is the lowest row index of group ``g`` (the class
    representative) and ``counts[g]`` its multiplicity; groups come in
    row-lexicographic order — exactly what ``np.unique`` on
    :func:`fold_rows` keys returns, minus the second sort.
    """
    n = mat.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    order, diff = _sorted_groups(mat, ranges)
    starts = np.flatnonzero(np.r_[True, diff])
    counts = np.diff(np.r_[starts, n])
    first = np.minimum.reduceat(order, starts)
    return first, counts


def fold_two(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Fold two row sets into one comparable key space."""
    keys = fold_rows(np.vstack([a, b]))
    return keys[: a.shape[0]], keys[a.shape[0]:]


#: Deterministic odd multipliers for the executor's hash joins (exact
#: matches are verified afterwards, so collisions cost nothing but a
#: filtered candidate).
_HASH_MULTS = (
    np.random.default_rng(0xD15A1).integers(
        1, 2 ** 63 - 1, size=64, dtype=np.int64
    )
    | 1
)


def _hash_rows(mat: np.ndarray) -> np.ndarray:
    """A fast (collision-possible) int64 key per row; callers must
    verify candidate matches on the original columns."""
    with np.errstate(over="ignore"):
        return mat @ _HASH_MULTS[: mat.shape[1]]


# ----------------------------------------------------------------------
# Machine tables (cached per Machine instance).
# ----------------------------------------------------------------------


class _MachineTables:
    """Numpy lookup tables for grid points, processors and memories."""

    def __init__(self, machine: Machine):
        cluster = machine.cluster
        shape = machine.shape
        self.shape = np.asarray(shape, dtype=np.int64)
        self.size = machine.size
        strides = np.ones(len(shape), dtype=np.int64)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        self.strides = strides
        n_procs = cluster.num_processors
        self.node_of_proc = np.fromiter(
            (p.node_id for p in cluster.processors), np.int64, n_procs
        )
        self.memories = cluster.memories()
        self.mem_index = {m.name: i for i, m in enumerate(self.memories)}
        n_mem = len(self.memories)
        self.mem_capacity = np.fromiter(
            (m.capacity_bytes for m in self.memories), np.int64, n_mem
        )
        self.mem_gpu = np.fromiter(
            (m.kind is MemoryKind.GPU_FB for m in self.memories), bool, n_mem
        )
        self.procmem_of_proc = np.fromiter(
            (self.mem_index[p.memory.name] for p in cluster.processors),
            np.int64,
            n_procs,
        )
        self.sysmem_of_node = np.fromiter(
            (
                self.mem_index[nd.system_memory.name]
                if nd.system_memory is not None
                else -1
                for nd in cluster.nodes
            ),
            np.int64,
            cluster.num_nodes,
        )
        # All machine coordinates, row-major (matches machine.points()).
        coords = np.stack(
            np.unravel_index(np.arange(self.size), tuple(shape)), axis=1
        ).astype(np.int64)
        self.point_coords = coords
        # Vectorized Machine.proc_at over every grid point: flat
        # machines place points row-major over all processors; multi-
        # level machines place the outer level over nodes and the inner
        # levels row-major within a node (over-decomposition wraps).
        proc_ids = np.fromiter(
            (p.proc_id for p in cluster.processors), np.int64, n_procs
        )
        if len(machine.levels) == 1:
            linear = coords @ strides
            table = proc_ids[linear % n_procs]
        else:
            outer_dim = machine.levels[0].dim
            node_lin = coords[:, :outer_dim] @ strides[:outer_dim] \
                // strides[outer_dim - 1]
            node_lin = node_lin % cluster.num_nodes
            inner = coords[:, outer_dim:]
            inner_shape = shape[outer_dim:]
            istr = np.ones(len(inner_shape), dtype=np.int64)
            for d in range(len(inner_shape) - 2, -1, -1):
                istr[d] = istr[d + 1] * inner_shape[d + 1]
            per_node = np.stack(
                [
                    np.fromiter(
                        (p.proc_id for p in nd.processors),
                        np.int64,
                        len(nd.processors),
                    )
                    for nd in cluster.nodes
                ]
            )
            local = (inner @ istr) % per_node.shape[1]
            table = per_node[node_lin, local]
        self.proc_of_point = table
        self._tensor_mem: Dict[Tuple[str, str], np.ndarray] = {}

    def tensor_mem_of_proc(self, tensor) -> np.ndarray:
        """Memory id a tensor instance occupies, per processor.

        Mirrors ``DataEnvironment._memory_for_uncached``: framebuffer-
        pinned formats use the processor memory (which *is* the
        framebuffer on GPUs), host-resident formats use the node system
        memory when one exists.
        """
        wants = tensor.format.memory
        key = (tensor.name, wants.value)
        cached = self._tensor_mem.get(key)
        if cached is not None:
            return cached
        if wants is MemoryKind.SYSTEM_MEM:
            sys_of_proc = self.sysmem_of_node[self.node_of_proc]
            out = np.where(sys_of_proc >= 0, sys_of_proc, self.procmem_of_proc)
        else:
            out = self.procmem_of_proc.copy()
        self._tensor_mem[key] = out
        return out


def machine_tables(machine: Machine) -> _MachineTables:
    tables = getattr(machine, "_orbit_tables", None)
    if tables is None:
        tables = _MachineTables(machine)
        machine._orbit_tables = tables
    return tables


# ----------------------------------------------------------------------
# Columnar instance mirror (the orbit-mode holder tables).
# ----------------------------------------------------------------------


class _Mirror:
    """Columnar cached-instance store for one tensor.

    Rows are ``(rect lo, rect hi, holder coords, memory, bytes)``.
    Freed rows are recycled, so the arrays stay bounded by the peak
    number of live instances. Row ids are stable for the lifetime of
    the instance, which is what phase-held bookkeeping releases by.
    """

    def __init__(self, ndim: int, mdim: int):
        self.ndim = ndim
        self.mdim = mdim
        #: Mutation counter (bumped by add/free): the translation-replay
        #: fast path uses it to prove the mirror is unchanged modulo a
        #: phase's own held-set churn.
        self.version = 0
        cap = 64
        self.lo = np.zeros((cap, ndim), dtype=np.int64)
        self.hi = np.zeros((cap, ndim), dtype=np.int64)
        self.coords = np.zeros((cap, mdim), dtype=np.int64)
        self.mem = np.zeros(cap, dtype=np.int64)
        self.nbytes = np.zeros(cap, dtype=np.int64)
        self.alive = np.zeros(cap, dtype=bool)
        self.tail = 0
        self._free = np.zeros(0, dtype=np.int64)

    def _grow(self, need: int):
        cap = self.alive.size
        new_cap = max(cap * 2, cap + need)
        for name in ("lo", "hi", "coords"):
            arr = getattr(self, name)
            grown = np.zeros((new_cap, arr.shape[1]), dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)
        for name, dtype in (("mem", np.int64), ("nbytes", np.int64)):
            arr = getattr(self, name)
            grown = np.zeros(new_cap, dtype=dtype)
            grown[:cap] = arr
            setattr(self, name, grown)
        alive = np.zeros(new_cap, dtype=bool)
        alive[:cap] = self.alive
        self.alive = alive

    def alloc(self, k: int) -> np.ndarray:
        take = min(k, self._free.size)
        rows = self._free[:take]
        self._free = self._free[take:]
        rest = k - take
        if rest:
            if self.tail + rest > self.alive.size:
                self._grow(self.tail + rest - self.alive.size)
            rows = np.concatenate(
                [rows, np.arange(self.tail, self.tail + rest, dtype=np.int64)]
            )
            self.tail += rest
        return rows

    def add_rows(self, lo, hi, coords, mem, nbytes) -> np.ndarray:
        rows = self.alloc(lo.shape[0])
        self.lo[rows] = lo
        self.hi[rows] = hi
        self.coords[rows] = coords
        self.mem[rows] = mem
        self.nbytes[rows] = nbytes
        self.alive[rows] = True
        self.version += 1
        return rows

    def free_rows(self, rows: np.ndarray):
        self.alive[rows] = False
        self._free = np.concatenate([self._free, rows])
        self.version += 1

    def snapshot(self) -> np.ndarray:
        """Row ids of all live instances."""
        return np.flatnonzero(self.alive[: self.tail])

    def rows_matching(self, lo: Tuple[int, ...], hi: Tuple[int, ...]):
        """Live rows holding exactly the given rectangle (scalar path)."""
        live = self.snapshot()
        if live.size == 0:
            return live
        mask = np.ones(live.size, dtype=bool)
        for d in range(self.ndim):
            mask &= self.lo[live, d] == lo[d]
            mask &= self.hi[live, d] == hi[d]
        return live[mask]


class _PartialTable:
    """Columnar pending-partials store for one tensor.

    Rows are ``(context coords, rect lo, rect hi)`` in insertion order —
    the order the scalar interpreter's per-context rect lists replay
    during a flush. Rows are appended in bulk by the leaf accounting
    and removed in bulk when a flush pops them.
    """

    def __init__(self, ndim: int, mdim: int):
        self.ndim = ndim
        self.mdim = mdim
        self.coords = np.zeros((0, mdim), dtype=np.int64)
        self.lo = np.zeros((0, ndim), dtype=np.int64)
        self.hi = np.zeros((0, ndim), dtype=np.int64)

    @property
    def n(self) -> int:
        return self.coords.shape[0]

    def append(self, coords: np.ndarray, lo: np.ndarray, hi: np.ndarray):
        self.coords = np.concatenate([self.coords, coords])
        self.lo = np.concatenate([self.lo, lo])
        self.hi = np.concatenate([self.hi, hi])

    def remove(self, rows: np.ndarray):
        keep = np.ones(self.n, dtype=bool)
        keep[rows] = False
        self.coords = self.coords[keep]
        self.lo = self.lo[keep]
        self.hi = self.hi[keep]


# ----------------------------------------------------------------------
# Orbit data environment.
# ----------------------------------------------------------------------


class OrbitState(DataEnvironment):
    """Instance tables and memory accounting on columnar storage.

    The scalar query API (``resolve`` / ``register`` / ``release`` /
    partial tracking) is preserved — the orbit executor's fallback paths
    use it — but holder state lives in per-tensor :class:`_Mirror`
    tables and memory accounting in flat numpy arrays, so bulk phases
    can be applied with bincounts rather than per-context dict updates.
    """

    def __init__(self, plan, check_capacity: bool, tables: _MachineTables):
        self._mt = tables
        n_mem = len(tables.memories)
        self._usage_arr = np.zeros(n_mem, dtype=np.int64)
        self._high_arr = np.zeros(n_mem, dtype=np.int64)
        self._touched = np.zeros(n_mem, dtype=bool)
        self._mirrors: Dict[str, _Mirror] = {}
        self._partial_tabs: Dict[str, _PartialTable] = {}
        super().__init__(plan, check_capacity=check_capacity)

    # -- memory accounting on arrays -----------------------------------

    @property
    def high_water(self) -> Dict[str, int]:
        return {
            self._mt.memories[i].name: int(self._high_arr[i])
            for i in np.flatnonzero(self._touched)
        }

    @high_water.setter
    def high_water(self, value):
        # The base-class constructor assigns an empty dict; accounting
        # here is array-backed, so the assignment is a no-op.
        pass

    def _add_bytes(self, mem, n: int):
        i = self._mt.mem_index[mem.name]
        usage = int(self._usage_arr[i]) + n
        self._usage_arr[i] = usage
        self._touched[i] = True
        if usage > self._high_arr[i]:
            self._high_arr[i] = usage
        if self.check_capacity and usage > mem.capacity_bytes:
            raise OutOfMemoryError(mem.name, usage, mem.capacity_bytes)

    def _sub_bytes(self, mem, n: int):
        i = self._mt.mem_index[mem.name]
        self._usage_arr[i] -= n

    def usage_of(self, mem) -> int:
        return int(self._usage_arr[self._mt.mem_index[mem.name]])

    def bulk_add(self, mem_ids, amounts, order):
        """Apply a phase's registration charges at once.

        Equivalent to ``_add_bytes`` per event in ``order``: the peak
        is reached after the last add either way, and on a capacity
        overflow the events are replayed in order so the raised error
        carries exactly the usage at the first crossing.
        """
        if mem_ids.size == 0:
            return
        n_mem = self._usage_arr.size
        adds = np.bincount(
            mem_ids, weights=amounts.astype(np.float64), minlength=n_mem
        ).astype(np.int64)
        new_usage = self._usage_arr + adds
        if self.check_capacity and bool(
            np.any(new_usage > self._mt.mem_capacity)
        ):
            run = self._usage_arr.copy()
            caps = self._mt.mem_capacity
            seq = np.argsort(order, kind="stable")
            for j in seq:
                mid = int(mem_ids[j])
                run[mid] += int(amounts[j])
                if run[mid] > caps[mid]:
                    raise OutOfMemoryError(
                        self._mt.memories[mid].name,
                        int(run[mid]),
                        int(caps[mid]),
                    )
        self._usage_arr = new_usage
        self._touched |= adds > 0
        np.maximum(self._high_arr, new_usage, out=self._high_arr)

    def bulk_sub(self, mem_ids, amounts):
        if mem_ids.size == 0:
            return
        subs = np.bincount(
            mem_ids,
            weights=amounts.astype(np.float64),
            minlength=self._usage_arr.size,
        ).astype(np.int64)
        self._usage_arr -= subs

    def apply_events(self, mem_ids, deltas):
        """Apply an interleaved add/sub event stream exactly.

        ``mem_ids``/``deltas`` are already in scalar event order.
        Equivalent to ``_add_bytes``/``_sub_bytes`` per event: the
        per-memory running usage determines the high-water marks, and on
        a capacity overflow the events are replayed in order so the
        raised error carries exactly the usage at the first crossing.
        Used for phases whose adds and releases interleave per context
        (reduction flushes, leaf-level communication).
        """
        if mem_ids.size == 0:
            return
        n_mem = self._usage_arr.size
        # Segment cumsum: stable-sort by memory, running totals within
        # each memory's segment stay in event order.
        by_mem = np.argsort(mem_ids, kind="stable")
        gm = mem_ids[by_mem]
        gd = deltas[by_mem]
        cs = np.cumsum(gd)
        starts = np.flatnonzero(np.r_[True, gm[1:] != gm[:-1]])
        seg_len = np.diff(np.r_[starts, gm.size])
        base = np.where(starts > 0, cs[starts - 1], 0)
        run = cs - np.repeat(base, seg_len) + self._usage_arr[gm]
        adds = gd > 0
        if self.check_capacity and bool(
            np.any(run[adds] > self._mt.mem_capacity[gm[adds]])
        ):
            usage = self._usage_arr.copy()
            caps = self._mt.mem_capacity
            for j in range(mem_ids.size):
                mid = int(mem_ids[j])
                usage[mid] += int(deltas[j])
                if deltas[j] > 0 and usage[mid] > caps[mid]:
                    raise OutOfMemoryError(
                        self._mt.memories[mid].name,
                        int(usage[mid]),
                        int(caps[mid]),
                    )
        # Peaks are always attained after an add, so the max over all
        # running values equals the scalar per-add high-water update.
        peaks = self._high_arr.copy()
        np.maximum.at(peaks, gm, run)
        self._high_arr = peaks
        self._usage_arr = self._usage_arr + np.bincount(
            gm, weights=gd.astype(np.float64), minlength=n_mem
        ).astype(np.int64)
        self._touched |= (
            np.bincount(gm[adds], minlength=n_mem) > 0
        )

    # -- home-instance accounting (vectorized) --------------------------

    def _account_home(self):
        """Charge every distinct home instance to its memory.

        Vectorized replacement of the base class's per-point loop: home
        rectangles come from :meth:`Format.owned_rect_batch` over every
        machine point at once, replicas collapse to one charge per
        distinct ``(memory, rectangle)`` via row folding, and the
        charges commit through :meth:`bulk_add` in the scalar event
        order (tensor-major, machine-point-minor), so OOM outcomes are
        byte-identical to the reference interpreter.
        """
        mt = self._mt
        coords = mt.point_coords
        size = coords.shape[0]
        mem_chunks = []
        amount_chunks = []
        order_chunks = []
        for t_pos, (name, tensor) in enumerate(self.plan.tensors.items()):
            if not tensor.format.is_distributed:
                if tensor.ndim == 0:
                    continue
                mem = self._memory_for(
                    tuple([0] * self.machine.dim), name
                )
                mem_chunks.append(
                    np.array([mt.mem_index[mem.name]], dtype=np.int64)
                )
                amount_chunks.append(
                    np.array([tensor.nbytes], dtype=np.int64)
                )
                order_chunks.append(
                    np.array([t_pos * size], dtype=np.int64)
                )
                continue
            lo, hi, ok = tensor.format.owned_rect_batch(
                self.machine, coords, tensor.shape
            )
            live = ok
            vol = np.ones(size, dtype=np.int64)
            for d in range(tensor.ndim):
                vol *= hi[d] - lo[d]
                live = live & (hi[d] > lo[d])
            sel = np.flatnonzero(live)
            if sel.size == 0:
                continue
            mem_ids = mt.tensor_mem_of_proc(tensor)[mt.proc_of_point[sel]]
            rows = np.column_stack(
                [mem_ids, lo[:, sel].T, hi[:, sel].T]
            )
            _, first = np.unique(fold_rows(rows), return_index=True)
            first.sort()
            take = sel[first]
            mem_chunks.append(mem_ids[first])
            amount_chunks.append(vol[take] * tensor.itemsize)
            order_chunks.append(t_pos * size + take)
        if mem_chunks:
            self.bulk_add(
                np.concatenate(mem_chunks),
                np.concatenate(amount_chunks),
                np.concatenate(order_chunks),
            )

    # -- pending output partials (columnar) -----------------------------

    def partial_table(self, name: str) -> "_PartialTable":
        tab = self._partial_tabs.get(name)
        if tab is None:
            tab = _PartialTable(
                self.plan.tensors[name].ndim, self.machine.dim
            )
            self._partial_tabs[name] = tab
        return tab

    def note_partials_bulk(
        self, name: str, coords: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Record non-owned output writes for a batch of contexts.

        ``coords`` is ``(k, machine.dim)``; ``lo``/``hi`` are
        ``(ndim, k)`` endpoint columns. Duplicate ``(coords, rect)``
        rows — against the pending table and within the batch, exactly
        the scalar ``note_partial`` dedup — are dropped. Returns the
        kept-row mask; the *caller* charges the memory for kept rows so
        it can weave the adds into its own event order.
        """
        tab = self.partial_table(name)
        new_rows = np.column_stack([coords, lo.T, hi.T])
        old_rows = np.column_stack([tab.coords, tab.lo, tab.hi])
        old_k, new_k = fold_two(old_rows, new_rows)
        keep = np.ones(new_k.size, dtype=bool)
        if old_k.size:
            keep &= ~np.isin(new_k, old_k)
        # First occurrence within the batch.
        _, first = np.unique(new_k, return_index=True)
        dup = np.ones(new_k.size, dtype=bool)
        dup[first] = False
        keep &= ~dup
        if np.any(keep):
            tab.append(coords[keep], lo[:, keep].T, hi[:, keep].T)
        return keep

    def take_partials(self, name: str, region_coords: np.ndarray):
        """Pop pending partials belonging to the given context coords.

        Returns ``(member, lo, hi)`` — the member index of each popped
        row within ``region_coords`` plus ``(ndim, k)`` rect endpoint
        columns, in insertion order (the scalar flush order). Rows of
        other regions stay queued.
        """
        tab = self._partial_tabs.get(name)
        ndim = self.plan.tensors[name].ndim
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros((ndim, 0), dtype=np.int64),
            np.zeros((ndim, 0), dtype=np.int64),
        )
        if tab is None or tab.n == 0:
            return empty
        tab_k, reg_k = fold_two(tab.coords, region_coords)
        order = np.argsort(reg_k, kind="stable")
        sk = reg_k[order]
        pos = np.minimum(np.searchsorted(sk, tab_k), sk.size - 1)
        hit = sk[pos] == tab_k
        rows = np.flatnonzero(hit)
        if rows.size == 0:
            return empty
        member = order[pos[rows]]
        lo = tab.lo[rows].T.copy()
        hi = tab.hi[rows].T.copy()
        tab.remove(rows)
        return member, lo, hi

    # -- holder state on mirrors ---------------------------------------

    def mirror(self, name: str) -> _Mirror:
        m = self._mirrors.get(name)
        if m is None:
            m = _Mirror(
                self.plan.tensors[name].ndim, self.machine.dim
            )
            self._mirrors[name] = m
        return m

    def _holder_coords(self, name: str, rect: Rect) -> List[Tuple[int, ...]]:
        m = self._mirrors.get(name)
        if m is None:
            return []
        rows = m.rows_matching(rect.lo, rect.hi)
        return [tuple(int(c) for c in m.coords[r]) for r in rows]

    def is_local(self, name, coords, rect) -> bool:
        if self.owns(name, coords, rect):
            return True
        m = self._mirrors.get(name)
        if m is None:
            return False
        rows = m.rows_matching(rect.lo, rect.hi)
        if rows.size == 0:
            return False
        target = np.asarray(coords, dtype=np.int64)
        return bool(np.any(np.all(m.coords[rows] == target, axis=1)))

    def register(self, name, coords, rect) -> bool:
        if rect.is_empty or self.is_local(name, coords, rect):
            return False
        tensor = self.plan.tensors[name]
        mem = self._memory_for(coords, name)
        nbytes = rect.volume * tensor.itemsize
        m = self.mirror(name)
        m.add_rows(
            np.asarray([rect.lo], dtype=np.int64).reshape(1, m.ndim),
            np.asarray([rect.hi], dtype=np.int64).reshape(1, m.ndim),
            np.asarray([coords], dtype=np.int64).reshape(1, m.mdim),
            np.asarray([self._mt.mem_index[mem.name]], dtype=np.int64),
            np.asarray([nbytes], dtype=np.int64),
        )
        self._add_bytes(mem, nbytes)
        return True

    def release(self, name, coords, rect):
        m = self._mirrors.get(name)
        if m is None:
            return
        rows = m.rows_matching(rect.lo, rect.hi)
        if rows.size == 0:
            return
        target = np.asarray(coords, dtype=np.int64)
        hit = rows[np.all(m.coords[rows] == target, axis=1)]
        if hit.size == 0:
            return
        row = hit[:1]
        m.free_rows(row)
        tensor = self.plan.tensors[name]
        self._sub_bytes(
            self._memory_for(coords, name), rect.volume * tensor.itemsize
        )

    def _find_sources(self, name, coords, rect):
        return self._sources_from(
            name,
            rect,
            coords,
            self._holder_coords(name, rect),
            self._owner_pattern(name, rect),
        )

    def resolve_batch(self, name, rect, coords_list):
        if rect.is_empty:
            return [[] for _ in coords_list]
        holder_list = self._holder_coords(name, rect)
        holder_set = set(holder_list)
        pattern = self._owner_pattern(name, rect)
        out = []
        for coords in coords_list:
            if self.owns(name, coords, rect) or coords in holder_set:
                out.append([])
                continue
            out.append(
                self._sources_from(name, rect, coords, holder_list, pattern)
            )
        return out


# ----------------------------------------------------------------------
# Step builder: exact expanded columns + compressed representatives.
# ----------------------------------------------------------------------


@dataclass
class _EmitInfo:
    """One emitted phase-tensor batch, with what a replay needs."""

    chunk: "_Chunk"
    pos: int
    builder: "_StepBuilder"
    keep: Optional[np.ndarray]  # row filter over the member set, or None
    first: np.ndarray           # class representatives (kept-row index)
    counts: np.ndarray
    rep_args: List[dict]
    rep_lo: np.ndarray
    rep_hi: np.ndarray


@dataclass
class _Chunk:
    """One bulk emission batch (one tensor, one phase)."""

    tensor_id: int
    lo: np.ndarray  # (k, ndim)
    hi: np.ndarray
    nbytes: np.ndarray
    src_proc: np.ndarray
    dst_proc: np.ndarray
    src_gpu: np.ndarray
    dst_gpu: np.ndarray
    reduce: bool = False
    #: True when the rows' rectangles are pairwise distinct (hash-
    #: verified): every copy is then its own collective group, letting
    #: the step finalize skip the group fold.
    distinct: bool = False


@dataclass
class _StepBuilder:
    """Accumulates a step's exact per-member copy columns.

    Every emission path — single-source fetches, multi-piece
    redistribution, reduction flushes, leaf-level communication — lands
    here as a columnar :class:`_Chunk`; there is no per-``Copy`` scalar
    side channel anymore (the former ``fallback`` list).
    """

    step: Step
    chunks: List[_Chunk] = field(default_factory=list)
    #: ``(source builder, source chunk index)`` per translation-replayed
    #: chunk; lets the fetch path prove the whole step is a clone.
    replay_votes: List[Tuple] = field(default_factory=list)
    clone_src: Optional["_StepBuilder"] = None

    def finalize(self, tables: _MachineTables, tensor_ids: Dict[str, int],
                 extent_cap: int = None):
        if self.clone_src is not None:
            # Translation-replayed step: the columns are byte-identical
            # to the source step's (pinned there first — builders
            # finalize in step order).
            self.step.pin_columns(self.clone_src.step.columns())
            return
        rows = sum(c.lo.shape[0] for c in self.chunks)
        if rows == 0:
            return
        max_nd = 0
        for c in self.chunks:
            max_nd = max(max_nd, c.lo.shape[1])
        tid = np.empty(rows, dtype=np.int64)
        lo = np.full((rows, max_nd), -1, dtype=np.int64)
        hi = np.full((rows, max_nd), -1, dtype=np.int64)
        nbytes = np.empty(rows, dtype=np.int64)
        src_proc = np.empty(rows, dtype=np.int64)
        dst_proc = np.empty(rows, dtype=np.int64)
        src_gpu = np.empty(rows, dtype=bool)
        dst_gpu = np.empty(rows, dtype=bool)
        reduce = np.zeros(rows, dtype=bool)
        at = 0
        for c in self.chunks:
            k, nd = c.lo.shape
            sl = slice(at, at + k)
            tid[sl] = c.tensor_id
            lo[sl, :nd] = c.lo
            hi[sl, :nd] = c.hi
            nbytes[sl] = c.nbytes
            src_proc[sl] = c.src_proc
            dst_proc[sl] = c.dst_proc
            src_gpu[sl] = c.src_gpu
            dst_gpu[sl] = c.dst_gpu
            reduce[sl] = c.reduce
            at += k
        # Collective groups: (reduce, tensor, rect, root endpoint).
        if all(c.distinct for c in self.chunks):
            # Pairwise-distinct rectangles per chunk and per-tensor
            # chunks: every copy is a singleton group.
            group = np.arange(rows, dtype=np.int64)
        else:
            root = np.where(reduce, dst_proc, src_proc)
            ranges = None
            if extent_cap is not None:
                n_procs = tables.node_of_proc.size
                ranges = (
                    [(0, 2), (0, len(tensor_ids) + 1)]
                    + [(-1, extent_cap + 1)] * (2 * max_nd)
                    + [(0, n_procs)]
                )
            gcols = np.empty((rows, 2 * max_nd + 3), dtype=np.int64)
            gcols[:, 0] = reduce
            gcols[:, 1] = tid
            gcols[:, 2:2 + max_nd] = lo
            gcols[:, 2 + max_nd:2 + 2 * max_nd] = hi
            gcols[:, 2 + 2 * max_nd] = root
            group = fold_rows(gcols, ranges)
        src_node = tables.node_of_proc[src_proc]
        dst_node = tables.node_of_proc[dst_proc]
        cols = CopyColumns(
            n=rows,
            nbytes=nbytes,
            src_proc=src_proc,
            dst_proc=dst_proc,
            src_node=src_node,
            dst_node=dst_node,
            inter=src_node != dst_node,
            reduce=reduce,
            gpu_resident=src_gpu | dst_gpu,
            src_gpu=src_gpu,
            dst_gpu=dst_gpu,
            group=group,
            num_groups=int(group.max()) + 1 if rows else 0,
            count=np.ones(rows, dtype=np.int64),
        )
        self.step.pin_columns(cols)


# ----------------------------------------------------------------------
# The orbit executor.
# ----------------------------------------------------------------------


class OrbitExecutor(Executor):
    """Symbolic interpreter with orbit-compressed phase execution."""

    def __init__(
        self, plan, check_capacity: bool = False, sanitize: bool = False,
        fault_plan=None,
    ):
        super().__init__(
            plan, materialize=False, check_capacity=check_capacity,
            batched=True, sanitize=sanitize, fault_plan=fault_plan,
        )
        self._mt = machine_tables(self.machine)
        self._regions: Dict[int, "_Region"] = {}
        self._builders: Dict[int, _StepBuilder] = {}
        self._tensor_ids = {
            name: i for i, name in enumerate(sorted(plan.tensors))
        }
        #: Representative Rect objects, memoized by endpoint tuple —
        #: steady-state phases re-emit the same class rectangles step
        #: after step.
        self._rect_memo: Dict[Tuple, Rect] = {}
        #: Per-(region, tensor) phase memos for translation replay.
        self._phase_memos: Dict[Tuple[int, str], _PhaseMemo] = {}
        #: The previous phase's held rows, per tensor (set by the fetch
        #: path; lets memos separate held-set churn from static rows).
        self._prev_held: Dict[str, np.ndarray] = {}
        #: Copies that re-entered the per-context scalar machinery. All
        #: known plan shapes execute fully class-batched, so this stays
        #: zero (pinned by the parity suite); the scalar escape hatch is
        #: kept only so an unforeseen plan degrades to exact-but-slow
        #: instead of wrong.
        self.fallback_events = 0
        #: Coverage counters for the class-batched paths that replaced
        #: the per-context fallbacks (multi-piece redistribution,
        #: reduction flushes, leaf-level communication phases) — the
        #: parity suite asserts the paths actually ran.
        self.multi_piece_batches = 0
        self.flush_batches = 0
        self.leaf_comm_phases = 0
        #: Phases emitted through the steady-state replay fast paths
        #: (translation, permutation, transport) instead of a full
        #: resolve — the replay-provenance counter the metrics registry
        #: reports as ``orbit.phase_replays``.
        self.phase_replays = 0

    # -- plumbing ------------------------------------------------------

    def run(self, inputs=None) -> ExecutionResult:
        self.env = OrbitState(
            self.plan, check_capacity=self.check_capacity, tables=self._mt
        )
        self.trace = Trace()
        self._arm_faults()
        self.arrays = {}
        root_ctx = _Ctx(
            ctx_id=0,
            coords=tuple([0] * self.machine.dim),
            proc=self.machine.proc_at(tuple([0] * self.machine.dim)),
        )
        ctxs = [root_ctx]
        with span("orbit.run"):
            self._exec(self.plan.root, ctxs, self._make_block(ctxs))
            extent_cap = max(
                (max(t.shape) for t in self.plan.tensors.values()
                 if t.shape),
                default=1,
            )
            with span("orbit.finalize"):
                for builder in self._builders.values():
                    builder.finalize(self._mt, self._tensor_ids, extent_cap)
        self.trace.memory_high_water = dict(self.env.high_water)
        METRICS.inc("orbit.runs")
        METRICS.inc("orbit.steps", len(self.trace.steps))
        METRICS.inc("orbit.fallback_events", self.fallback_events)
        METRICS.inc("orbit.phase_replays", self.phase_replays)
        METRICS.inc("orbit.multi_piece_batches", self.multi_piece_batches)
        METRICS.inc("orbit.flush_batches", self.flush_batches)
        METRICS.inc("orbit.leaf_comm_phases", self.leaf_comm_phases)
        if self.sanitize:
            # Orbit traces are class-compressed (one representative copy
            # per orbit); the sanitizer's hold tracking needs the full
            # per-context trace, so the debug mode replays the plan
            # through the exact batched interpreter and checks that.
            full = Executor(
                self.plan, materialize=False,
                check_capacity=self.check_capacity,
            ).run(None)
            self._sanity_check(full.trace)
        return ExecutionResult(
            trace=self.trace,
            outputs={},
            memory_high_water=dict(self.env.high_water),
        )

    def _make_block(self, ctxs: List[_Ctx]) -> CtxBlock:
        block = super()._make_block(ctxs)
        self._regions[id(block)] = _Region(self, ctxs, block)
        return block

    def _builder(self, step: Step) -> _StepBuilder:
        b = self._builders.get(id(step))
        if b is None:
            b = _StepBuilder(step)
            self._builders[id(step)] = b
        return b

    def _emit_copy(self, step, name, rect, src_coords, ctx, reduce=False):
        # Scalar escape hatch: count it, and route the copy into the
        # columnar builder as a one-row chunk so the pinned columns stay
        # exact even if an unforeseen path lands here.
        self.fallback_events += 1
        before = len(step.copies)
        super()._emit_copy(step, name, rect, src_coords, ctx, reduce)
        if len(step.copies) > before:
            c = step.copies[-1]
            ndim = c.rect.dim
            lo = np.array(
                [[iv.lo for iv in c.rect.intervals]], dtype=np.int64
            ).reshape(1, ndim)
            hi = np.array(
                [[iv.hi for iv in c.rect.intervals]], dtype=np.int64
            ).reshape(1, ndim)
            self._builder(step).chunks.append(
                _Chunk(
                    tensor_id=self._tensor_ids[c.tensor],
                    lo=lo,
                    hi=hi,
                    nbytes=np.array([c.nbytes], dtype=np.int64),
                    src_proc=np.array([c.src_proc.proc_id], dtype=np.int64),
                    dst_proc=np.array([c.dst_proc.proc_id], dtype=np.int64),
                    src_gpu=np.array(
                        [c.src_mem.kind is MemoryKind.GPU_FB], dtype=bool
                    ),
                    dst_gpu=np.array(
                        [c.dst_mem.kind is MemoryKind.GPU_FB], dtype=bool
                    ),
                    reduce=c.reduce,
                )
            )

    # -- plan-tree interpretation --------------------------------------

    def _exec_launch(self, node: LaunchNode, ctxs: List[_Ctx]):
        from itertools import product

        new_ctxs: List[_Ctx] = []
        for ctx in ctxs:
            for point in product(*(range(e) for e in node.extents)):
                coords = list(ctx.coords)
                env = dict(ctx.env)
                for dim, var, value in zip(
                    node.machine_dims, node.vars, point
                ):
                    coords[dim] = value
                    env[var] = Interval.point(value)
                coords_t = tuple(coords)
                new_ctxs.append(
                    _Ctx(
                        ctx_id=len(new_ctxs),
                        coords=coords_t,
                        proc=self.machine.proc_at(coords_t),
                        env=env,
                    )
                )
        block = self._make_block(new_ctxs)
        held = None
        if node.comm:
            step = self.trace.new_step("task-start fetch")
            held = self._orbit_fetch(node.comm, block, step)
        self._exec(node.body, new_ctxs, block)
        if node.flush:
            step = self.trace.new_step("task-end reduction")
            events = _EventStream()
            self._orbit_flush(
                node.flush, self._regions[id(block)], step, events
            )
            self.env.apply_events(*events.ordered())
        if held is not None:
            self._release_held(held)

    def _exec_seq(self, node: SeqNode, ctxs, block):
        # Nested launches re-snapshot context environments, so the
        # per-context binding only matters when the body launches again.
        bind_ctx_envs = _has_launch(node.body)
        prev = None
        for iteration in range(node.extent):
            if bind_ctx_envs:
                point = Interval.point(iteration)
                for ctx in ctxs:
                    ctx.env[node.var] = point
            block.bind(node.var, iteration)
            if node.comm:
                step = self.trace.new_step(f"{node.var.name}={iteration}")
                prev = self._orbit_fetch(
                    node.comm, block, step, release=prev
                )
            self._exec(node.body, ctxs, block)
            if node.flush:
                step = self.trace.new_step(f"{node.var.name} reduction")
                events = _EventStream()
                self._orbit_flush(
                    node.flush, self._regions[id(block)], step, events
                )
                self.env.apply_events(*events.ordered())
        if prev is not None:
            self._release_held(prev)
        if bind_ctx_envs:
            for ctx in ctxs:
                ctx.env.pop(node.var, None)
        block.unbind(node.var)

    def _exec_leaf(self, node: LeafNode, ctxs, block):
        step = self.trace.current
        region = self._regions[id(block)]
        batch = self._leaf_work_batch(node, block)
        if not node.comm and not node.flush:
            self._orbit_leaf(node, batch, region, step)
            return
        # Leaf-level communication / flushes: resolution and class
        # grouping run batched against the pre-phase state; the memory
        # events interleave per context (register, partial, flush,
        # release — the scalar interpreter's per-context commit order)
        # through one exactly-ordered event stream. Registered leaf
        # instances are released within the same phase, so the mirror
        # tables need no net update.
        events = _EventStream()
        regs = []
        self._prev_held = {}
        self.leaf_comm_phases += 1
        if node.comm:
            effective = [
                name
                for name in node.comm
                if not (name == self.plan.output and not self._fetch_output)
            ]
            for pos, name in enumerate(effective):
                r = self._resolve_tensor(
                    name, pos, len(effective), region, block, step
                )
                if r is not None:
                    regs.append(r)
        for pos, (idx, _lo, _hi, mem_rows, byte_rows, _order) in enumerate(
            regs
        ):
            events.add(mem_rows, byte_rows, idx, _EventStream.REGISTER, pos)
        self._orbit_leaf(node, batch, region, step, events=events)
        if node.flush:
            self._orbit_flush(node.flush, region, step, events)
        for pos, (idx, _lo, _hi, mem_rows, byte_rows, _order) in enumerate(
            regs
        ):
            events.add(mem_rows, -byte_rows, idx, _EventStream.RELEASE, pos)
        self.env.apply_events(*events.ordered())

    # -- orbit leaf accounting -----------------------------------------

    def _orbit_leaf(self, node: LeafNode, batch, region: "_Region",
                    step: Step, events: Optional["_EventStream"] = None):
        n = region.n
        flops = np.zeros(n, dtype=np.int64)
        nbytes = np.zeros(n, dtype=np.int64)
        staged = np.zeros(n, dtype=np.int64)
        invocations = np.zeros(n, dtype=np.int64)
        for entry in batch:
            live = ~entry.empty
            flops += np.where(live, entry.flops, 0)
            nbytes += np.where(live, entry.nbytes, 0)
            staged += np.where(live, entry.staged, 0)
            invocations += live
        n_procs = self._mt.node_of_proc.size
        procs = region.proc
        agg_f = np.bincount(procs, weights=flops, minlength=n_procs)
        agg_b = np.bincount(procs, weights=nbytes, minlength=n_procs)
        agg_s = np.bincount(procs, weights=staged, minlength=n_procs)
        agg_i = np.bincount(procs, weights=invocations, minlength=n_procs)
        present = np.bincount(procs, minlength=n_procs) > 0
        pids = np.flatnonzero(present)
        rows = np.column_stack(
            [agg_f[pids], agg_b[pids], agg_s[pids], agg_i[pids]]
        ).astype(np.int64)
        keys = fold_rows(rows)
        _, first, counts = np.unique(keys, return_index=True,
                                     return_counts=True)
        for f_idx, cnt in zip(first, counts):
            pid = int(pids[f_idx])
            f = float(agg_f[pid])
            inv = int(agg_i[pid])
            work = step.work_for(self.machine.cluster.processors[pid])
            work.flops = f
            work.bytes_touched = float(agg_b[pid])
            work.staged_bytes = float(agg_s[pid])
            work.invocations = inv
            work.count = int(cnt)
            if inv > 0:
                work.kernel_flops = {node.kernel: f}
                if node.kernel is not None:
                    work.kernel = node.kernel
                work.parallel = node.parallel
        # Non-owned output writes become pending partials, exactly as
        # the scalar interpreter records them (context-major, assign-
        # minor), but batched: dedup, table insertion and the memory
        # charges are column operations.
        out_name = self.plan.output
        cands = []
        for e_idx, entry in enumerate(batch):
            if entry.lhs_name != out_name:
                continue
            h_lo, h_hi, h_ok = region.home(self, out_name)
            if entry.lhs_ndim == 0:
                not_owned = ~h_ok
            else:
                covered = h_ok.copy()
                for d in range(entry.lhs_ndim):
                    covered &= h_lo[d] <= entry.lhs_los[d]
                    covered &= entry.lhs_his[d] <= h_hi[d]
                not_owned = ~covered
            rows = np.flatnonzero(not_owned & ~entry.empty)
            if rows.size == 0:
                continue
            if entry.lhs_ndim:
                cands.append(
                    (e_idx, rows, entry.lhs_los[:, rows],
                     entry.lhs_his[:, rows])
                )
            else:
                z = np.zeros((0, rows.size), dtype=np.int64)
                cands.append((e_idx, rows, z, z))
        if not cands:
            return
        member = np.concatenate([c[1] for c in cands])
        e_ids = np.concatenate(
            [np.full(c[1].size, c[0], dtype=np.int64) for c in cands]
        )
        p_lo = np.concatenate([c[2] for c in cands], axis=1)
        p_hi = np.concatenate([c[3] for c in cands], axis=1)
        order = np.lexsort((e_ids, member))
        member = member[order]
        p_lo = p_lo[:, order]
        p_hi = p_hi[:, order]
        kept = self.env.note_partials_bulk(
            out_name, region.coords[member], p_lo, p_hi
        )
        krows = np.flatnonzero(kept)
        if krows.size == 0:
            return
        tensor = self.plan.tensors[out_name]
        vol = np.ones(krows.size, dtype=np.int64)
        for d in range(tensor.ndim):
            vol *= p_hi[d, krows] - p_lo[d, krows]
        amounts = vol * tensor.itemsize
        mems = self._mt.tensor_mem_of_proc(tensor)[
            region.proc[member[krows]]
        ]
        if events is None:
            self.env.bulk_add(mems, amounts, krows)
        else:
            events.add(
                mems, amounts, member[krows], _EventStream.PARTIAL, krows
            )

    # -- orbit fetch phases --------------------------------------------

    def _orbit_fetch(self, names: List[str], block: CtxBlock,
                     step: Step,
                     release: Optional[Dict[str, np.ndarray]] = None,
                     ) -> Dict[str, np.ndarray]:
        """Resolve and commit one communication phase for all contexts.

        Returns per-tensor mirror row ids of the newly registered
        instances (the phase's *held* set, released when its
        communicate scope ends). ``release`` is the previous phase's
        held set: releasing it here (after the commit, the scalar
        order) lets phase memos snapshot the mirror version with no
        other mutations in between.
        """
        region = self._regions[id(block)]
        self._prev_held = release or {}
        effective = [
            name
            for name in names
            if not (name == self.plan.output and not self._fetch_output)
        ]
        n_names = len(effective)
        resolved = []
        builder_before = self._builders.get(id(step))
        chunks_before = len(builder_before.chunks) if builder_before else 0
        with span("orbit.classify"):
            for pos, name in enumerate(effective):
                resolved.append(
                    self._resolve_tensor(
                        name, pos, n_names, region, block, step
                    )
                )
        # Whole-step translation replay: when every chunk of this step
        # is a translation replay of one source step's chunks, in order
        # and covering all of them, the pinned copy columns are byte-
        # identical to that step's (payloads, endpoints, flags, and the
        # group partition are all translation invariant), so finalize
        # clones them instead of re-folding.
        builder = self._builders.get(id(step))
        if builder is not None and chunks_before == 0:
            votes = builder.replay_votes
            if (
                votes
                and len(votes) == len(builder.chunks)
                and all(v[0] is votes[0][0] for v in votes)
                and [v[1] for v in votes] == list(range(len(votes)))
                and len(votes[0][0].chunks) == len(votes)
            ):
                builder.clone_src = votes[0][0]
        # Commit: register instances (pre-phase resolution is complete),
        # then charge the memory in scalar event order.
        held: Dict[str, np.ndarray] = {}
        mem_ids = []
        amounts = []
        orders = []
        for name, reg in zip(effective, resolved):
            if reg is None:
                continue
            idx, lo_rows, hi_rows, mem_rows, byte_rows, order = reg
            mirror = self.env.mirror(name)
            rows = mirror.add_rows(
                lo_rows, hi_rows, region.coords[idx], mem_rows, byte_rows
            )
            held[name] = rows
            mem_ids.append(mem_rows)
            amounts.append(byte_rows)
            orders.append(order)
        if mem_ids:
            self.env.bulk_add(
                np.concatenate(mem_ids),
                np.concatenate(amounts),
                np.concatenate(orders),
            )
        if release:
            self._release_held(release)
        # Pin each memo to the post-commit, post-release mirror version:
        # the next phase replays (or probes the carried request index)
        # only if nothing else touched the mirror.
        for name in effective:
            memo = self._phase_memos.get((id(block), name))
            if memo is None:
                continue
            mirror = self.env._mirrors.get(name)
            version = mirror.version if mirror is not None else -1
            if memo.outcome_valid:
                memo.version = version
            if memo.index_fresh:
                memo.index_version = version
                memo.index_fresh = False
        return held

    def _resolve_tensor(self, name: str, name_pos: int, n_names: int,
                        region: "_Region", block: CtxBlock, step: Step):
        """Resolve one tensor's requests for a phase (no state mutation).

        Emits copies (columnar for orbit classes, batched per rect class
        for multi-piece requests) and returns the registration batch
        ``(ctx rows, lo, hi, mem, bytes, order)`` to commit. Steady
        translation phases short-circuit through :class:`_PhaseMemo`.
        """
        plan = self.plan
        tensor = plan.tensors[name]
        ndim = tensor.ndim
        n = region.n
        lo, hi, live = batch_bounds(
            block, self.graph, plan.accesses[name], self.full_env,
            exact=False,
        )
        if ndim == 0:
            lo = np.zeros((0, n), dtype=np.int64)
            hi = np.zeros((0, n), dtype=np.int64)
        if not live.any():
            self._phase_memos.pop((id(block), name), None)
            return None
        memo_key = (id(block), name)
        memo = self._phase_memos.get(memo_key)
        if memo is None:
            memo = _PhaseMemo()
            self._phase_memos[memo_key] = memo
        live_all = bool(live.all())
        prev_lo, prev_hi, prev_live_all = memo.lo, memo.hi, memo.live_all
        delta = memo.advance(lo, hi, live_all)
        # Rotation phases permute the request assignment: every member
        # requests what its ``s``-shifted neighbour requested last phase
        # (``s`` drawn from the previous phase's uniform holder-offset
        # set). A two-phase streak with one ``s`` makes the cached
        # holder pairs provably carry over.
        perm = None
        perm_shift = None
        if (
            delta is None
            and live_all
            and prev_live_all
            and ndim
            and memo.pair_offsets
            and prev_lo is not None
            and prev_lo.shape == lo.shape
        ):
            shape_vec = self._mt.shape
            mdim = shape_vec.size
            candidates = []
            seen_shifts = set()

            def consider(vec):
                key = tuple(int(x) for x in vec)
                if key not in seen_shifts and any(key):
                    seen_shifts.add(key)
                    candidates.append(np.asarray(vec, dtype=np.int64))

            # Most phases repeat the previous shift; unit steps cover
            # plain rotations whose holder offset differs from the
            # request shift; the holder offsets themselves (and their
            # inverses) cover skewed patterns.
            if memo.perm_shift is not None:
                consider(memo.perm_shift)
            for d in range(mdim):
                unit = np.zeros(mdim, dtype=np.int64)
                unit[d] = 1
                consider(unit)
                consider((-unit) % shape_vec)
            for cand_s in memo.pair_offsets:
                consider(cand_s)
                consider((-cand_s) % shape_vec)
            for cand_s in candidates:
                cand = region.perm_for_shift(cand_s, self._mt)
                if (
                    cand is not None
                    and np.array_equal(lo, prev_lo[:, cand])
                    and np.array_equal(hi, prev_hi[:, cand])
                ):
                    perm = cand
                    perm_shift = cand_s
                    break
        if perm is not None and memo.perm_shift is not None and \
                np.array_equal(perm_shift, memo.perm_shift):
            memo.perm_streak += 1
        else:
            memo.perm_streak = 1 if perm is not None else 0
        memo.perm_shift = perm_shift
        h_lo, h_hi, h_ok = region.home(self, name)
        local = h_ok & live
        for d in range(ndim):
            local &= h_lo[d] <= lo[d]
            local &= hi[d] <= h_hi[d]
        remaining = live & ~local
        rem_idx = np.flatnonzero(remaining)
        if rem_idx.size == 0:
            memo.outcome_valid = False
            return None
        mirror = self.env._mirrors.get(name)
        replay_common = (
            memo.outcome_valid
            and mirror is not None
            and mirror.version == memo.version
            and memo.rem_mask is not None
            and np.array_equal(remaining, memo.rem_mask)
        )
        if (
            replay_common
            and perm is not None
            and memo.perm_streak >= 2
            and memo.pair_has is not None
            and bool(np.array_equal(remaining[perm], remaining))
            and bool(np.array_equal(memo.pair_has[perm], memo.pair_has))
        ):
            out = self._replay_permutation(
                memo, name, region, step, lo, hi, tensor, perm, rem_idx,
                mirror,
            )
            if out is not None:
                self.phase_replays += 1
                return out
        elif replay_common and delta is not None and memo.streak >= 2:
            out = self._replay_translation(
                memo, name, region, step, lo, hi, tensor, delta, rem_idx,
                mirror,
            )
            if out is not None:
                self.phase_replays += 1
                return out
        if (
            perm is not None
            and memo.registered_all
            and memo.requests_distinct
            and memo.rem_mask is not None
            and memo.fixed_hash is not None
            and mirror is not None
            and mirror.version == memo.version
        ):
            # Rotations whose fetch set moves too (the local-tile hole
            # travels): pairs are synthesized from the permutation.
            out = self._replay_transport(
                memo, name, name_pos, n_names, region, step, lo, hi,
                tensor, perm, perm_shift, remaining, rem_idx, mirror,
            )
            if out is not None:
                self.phase_replays += 1
                return out
        memo.outcome_valid = False
        memo.registered_all = False
        memo.rem_mask = remaining.copy()
        # Holder-locality and holder candidates: join requests against
        # the live instance mirror on exact rect equality. When the
        # mirror provably holds exactly the previous phase's registered
        # requests plus known static rows (version chain), the join
        # probes the previous phase's *carried* sorted request index —
        # no per-phase instance sort; otherwise the classic hash join
        # runs against a fresh snapshot. Join keys are fast row hashes;
        # every candidate pair is verified on the original endpoint
        # columns, so collisions only cost a filtered candidate —
        # results stay exact.
        holder_local = np.zeros(rem_idx.size, dtype=bool)
        pair_req = np.zeros(0, dtype=np.int64)
        pair_coords_all = np.zeros((0, self.machine.dim), dtype=np.int64)
        pairs_clean = True
        req_k = None
        req_keys_cols = None
        if ndim:
            req_keys_cols = np.empty(
                (rem_idx.size, 2 * ndim), dtype=np.int64
            )
            req_keys_cols[:, :ndim] = lo[:, rem_idx].T
            req_keys_cols[:, ndim:] = hi[:, rem_idx].T
            req_k = _hash_rows(req_keys_cols)
        use_index = (
            ndim > 0
            and mirror is not None
            and memo.req_index_hash is not None
            and memo.fixed_hash is not None
            and mirror.version == memo.index_version
        )
        if use_index:
            held_req, held_pos = _probe_index(
                memo.req_index_hash, req_k, memo.req_index_cols,
                req_keys_cols,
            )
            pair_req = held_req
            pair_coords_all = region.coords[
                memo.req_index_member[held_pos]
            ]
            if memo.fixed_hash.size:
                fix_req, fix_pos = _probe_index(
                    memo.fixed_hash, req_k, memo.fixed_cols, req_keys_cols
                )
                if fix_req.size:
                    pairs_clean = False
                    pair_req = np.concatenate([pair_req, fix_req])
                    pair_coords_all = np.concatenate(
                        [pair_coords_all, memo.fixed_coords[fix_pos]]
                    )
                    order_p = np.argsort(pair_req, kind="stable")
                    pair_req = pair_req[order_p]
                    pair_coords_all = pair_coords_all[order_p]
        else:
            inst_rows = (
                mirror.snapshot() if mirror is not None
                else np.zeros(0, dtype=np.int64)
            )
            if inst_rows.size and ndim:
                inst_cols = np.empty(
                    (inst_rows.size, 2 * ndim), dtype=np.int64
                )
                inst_cols[:, :ndim] = mirror.lo[inst_rows]
                inst_cols[:, ndim:] = mirror.hi[inst_rows]
                inst_k = _hash_rows(inst_cols)
                order = np.argsort(inst_k, kind="stable")
                p_req, p_pos = _probe_index(
                    inst_k[order], req_k, inst_cols[order], req_keys_cols
                )
                pair_req = p_req
                pair_rows = inst_rows[order[p_pos]]
                pair_coords_all = mirror.coords[pair_rows]
                prev_held = self._prev_held.get(name)
                if pair_rows.size:
                    pairs_clean = bool(
                        prev_held is not None
                        and np.all(np.isin(pair_rows, prev_held))
                    )
        if pair_req.size:
            same = np.all(
                pair_coords_all == region.coords[rem_idx[pair_req]],
                axis=1,
            )
            holder_local[pair_req[same]] = True
        if not holder_local.any():
            fetch_idx = rem_idx
            k = fetch_idx.size
        else:
            fetch_mask = ~holder_local
            fetch_idx = rem_idx[fetch_mask]
            if fetch_idx.size == 0:
                return None
            k = fetch_idx.size
            # Renumber candidate pairs onto the fetching subset.
            new_pos = np.full(rem_idx.size, -1, dtype=np.int64)
            new_pos[fetch_mask] = np.arange(k, dtype=np.int64)
            if pair_req.size:
                keep = fetch_mask[pair_req]
                pair_req = new_pos[pair_req[keep]]
                pair_coords_all = pair_coords_all[keep]
        shape_vec = self._mt.shape
        size = self._mt.size
        big = np.iinfo(np.int64).max
        holder_best = np.full(k, big, dtype=np.int64)
        req_coords = region.coords[fetch_idx]
        pair_key = None
        pair_coords = None
        if pair_req.size:
            pair_coords = pair_coords_all
            pdelta = np.abs(pair_coords - req_coords[pair_req])
            dist = np.minimum(pdelta, shape_vec - pdelta).sum(axis=1)
            # Selection key: (distance, holder-before-owner, coords) —
            # exactly the scalar `_sources_from` ordering. ``pair_req``
            # is non-decreasing by construction, so the per-request
            # minimum is a segment reduction (much faster than
            # ``np.minimum.at``).
            pair_key = dist * 2 * size + pair_coords @ self._mt.strides
            seg = np.flatnonzero(np.r_[True, pair_req[1:] != pair_req[:-1]])
            seg_req = pair_req[seg]
            holder_best[seg_req] = np.minimum.reduceat(pair_key, seg)
        best, have, src_coords = self._select_winners(
            name, tensor, region, lo, hi, fetch_idx, req_coords,
            holder_best, pair_req, pair_key, pair_coords,
        )
        order_base = np.int64(n_names)
        no_src = np.flatnonzero(~have)
        if no_src.size:
            # Members with no single source: the multi-piece path,
            # batched per request-rect class.
            self._emit_multi_piece(
                step, name, region,
                fetch_idx[no_src],
                lo[:, fetch_idx[no_src]],
                hi[:, fetch_idx[no_src]],
                tensor,
            )
        # Carry this phase's request index (the next phase probes it
        # instead of sorting the mirror) and rebuild the static-row
        # index when this phase ran against a fresh snapshot.
        if holder_local.any():
            f_mask = ~holder_local
            req_k_f = req_k[f_mask] if req_k is not None else None
            req_cols_f = (
                req_keys_cols[f_mask] if req_keys_cols is not None else None
            )
        else:
            req_k_f = req_k
            req_cols_f = req_keys_cols
        requests_distinct = self._store_req_index(
            memo, fetch_idx, req_k_f, req_cols_f, ndim
        )
        if not use_index and mirror is not None and ndim:
            self._rebuild_fixed(
                memo, mirror, inst_rows, self._prev_held.get(name), ndim
            )
        # Columnar emission for the single-source winners.
        win_pos = np.flatnonzero(have)
        emitted = None
        if win_pos.size:
            emitted = self._emit_bulk(
                step, name, region,
                fetch_idx[win_pos],
                lo[:, fetch_idx[win_pos]],
                hi[:, fetch_idx[win_pos]],
                src_coords[win_pos],
                tensor,
                distinct=requests_distinct,
            )
        # Registration batch (all fetching members, pieces included).
        vol = np.ones(k, dtype=np.int64)
        for d in range(ndim):
            vol *= hi[d, fetch_idx] - lo[d, fetch_idx]
        byte_rows = vol * tensor.itemsize
        mem_rows = self._mt.tensor_mem_of_proc(tensor)[region.proc[fetch_idx]]
        order = fetch_idx.astype(np.int64) * order_base + name_pos
        reg_lo = lo[:, fetch_idx].T.copy()
        reg_hi = hi[:, fetch_idx].T.copy()
        self._store_memo(
            memo, name, region, mirror, rem_idx, fetch_idx,
            bool(holder_local.any()), pair_req, pair_coords,
            pair_key, pairs_clean, requests_distinct, holder_best,
            have, src_coords, emitted, reg_lo, reg_hi, mem_rows,
            byte_rows, order, ndim,
        )
        return (fetch_idx, reg_lo, reg_hi, mem_rows, byte_rows, order)

    def _select_winners(self, name, tensor, region, lo, hi, fetch_idx,
                        req_coords, holder_best, pair_req, pair_key,
                        pair_coords):
        """Owner candidates plus winner selection (shared by the full
        and replay paths; owner blocks are not translation covariant)."""
        mt = self._mt
        shape_vec = mt.shape
        size = mt.size
        big = np.iinfo(np.int64).max
        k = fetch_idx.size
        ndim = tensor.ndim
        # The single-owner candidate, via the vectorized distribution
        # arithmetic; replica dims concretize to the requester's coords.
        pat, valid = tensor.format.owner_pattern_batch(
            self.machine,
            lo[:, fetch_idx] if ndim else None,
            hi[:, fetch_idx] if ndim else None,
            tensor.shape,
            count=k,
        )
        owner_coords = np.where(
            pat >= 0, pat, req_coords.T % shape_vec[:, None]
        ).T
        odelta = np.abs(owner_coords - req_coords)
        odist = np.minimum(odelta, shape_vec - odelta).sum(axis=1)
        okey = np.where(
            valid,
            (odist * 2 + 1) * size + owner_coords @ mt.strides,
            big,
        )
        best = np.minimum(holder_best, okey)
        src_coords = np.zeros((k, shape_vec.size), dtype=np.int64)
        have = best < big
        owner_win = valid & (okey == best)
        src_coords[owner_win] = owner_coords[owner_win]
        if pair_req is not None and pair_req.size:
            win = pair_key == best[pair_req]
            src_coords[pair_req[win]] = pair_coords[win]
        return best, have, src_coords

    def _rebuild_fixed(self, memo, mirror, inst_rows, prev_held, ndim):
        """(Re)build the static-instance index: live rows outside the
        previous phase's held set, with their coords — probed by every
        replay and by the carried-index join."""
        if prev_held is not None and prev_held.size:
            fixed = inst_rows[~np.isin(inst_rows, prev_held)]
        else:
            fixed = inst_rows
        if fixed.size:
            cols = np.empty((fixed.size, 2 * ndim), dtype=np.int64)
            cols[:, :ndim] = mirror.lo[fixed]
            cols[:, ndim:] = mirror.hi[fixed]
            h = _hash_rows(cols)
            horder = np.argsort(h, kind="stable")
            memo.fixed_hash = h[horder]
            memo.fixed_cols = cols[horder]
            memo.fixed_coords = mirror.coords[fixed[horder]]
        else:
            memo.fixed_hash = np.zeros(0, dtype=np.int64)
            memo.fixed_cols = np.zeros((0, 2 * ndim), dtype=np.int64)
            memo.fixed_coords = np.zeros(
                (0, self.machine.dim), dtype=np.int64
            )

    def _store_req_index(self, memo, fetch_idx, req_k_f, req_cols_f,
                         ndim) -> bool:
        """Carry this phase's (sorted) request index into the next one;
        returns whether the requests are pairwise distinct (hash-
        distinct implies rect-distinct)."""
        if ndim == 0 or req_k_f is None:
            memo.req_index_hash = None
            return False
        order = np.argsort(req_k_f, kind="stable")
        sh = req_k_f[order]
        memo.req_index_hash = sh
        memo.req_index_member = fetch_idx[order]
        memo.req_index_cols = req_cols_f[order]
        memo.index_fresh = True
        if sh.size > 1:
            return not bool(np.any(sh[1:] == sh[:-1]))
        return sh.size == 1

    def _store_memo(self, memo, name, region, mirror, rem_idx,
                    fetch_idx, had_holder_local, pair_req, pair_coords,
                    pair_key, pairs_clean, requests_distinct, holder_best,
                    have, src_coords, emitted, reg_lo, reg_hi, mem_rows,
                    byte_rows, order, ndim):
        """Capture a fully-resolved phase for future replay.

        Only phases whose holder candidates all came from the previous
        phase's held set are replayable (``pairs_clean``): matches
        against longer-lived instances are not translation/rotation
        covariant, and a probe at replay time additionally checks that
        no *new* request matches one of those rows.
        """
        memo.requests_distinct = requests_distinct
        memo.registered_all = ndim > 0 and not had_holder_local
        memo.outcome_valid = (
            ndim > 0
            and emitted is not None
            and bool(have.all())
            and mirror is not None
            and not had_holder_local
            and pairs_clean
        )
        if not memo.outcome_valid:
            return
        memo.fetch_idx = fetch_idx
        # Rotation signature: every member with holder candidates sees
        # the same offset multiset (a coset — over-partitioned rotation
        # dims give duplicate request rects and several equidistant
        # holders per member). Such holder structures are equivariant
        # under the coset's shifts, which is what lets a replay carry
        # the pairs over verbatim.
        memo.pair_offsets = None
        memo.pair_has = None
        if pair_req.size:
            k = fetch_idx.size
            cnt_per = np.bincount(pair_req, minlength=k)
            has = cnt_per > 0
            cvals = np.unique(cnt_per[has])
            if cvals.size == 1:
                c = int(cvals[0])
                offs = (
                    pair_coords - region.coords[fetch_idx[pair_req]]
                ) % self._mt.shape
                ranges = [(0, int(e)) for e in self._mt.shape]
                okeys = fold_rows(offs, ranges)
                order = np.lexsort((okeys, pair_req))
                mat = okeys[order].reshape(-1, c)
                if bool(np.all(mat == mat[0])):
                    first_rows = offs[order[:c]]
                    memo.pair_offsets = [
                        first_rows[j].copy() for j in range(c)
                    ]
                    pair_has = np.zeros(region.n, dtype=bool)
                    pair_has[fetch_idx[has]] = True
                    memo.pair_has = pair_has
        memo.pair_req = pair_req
        memo.pair_coords = pair_coords
        memo.pair_key = pair_key
        memo.holder_best = holder_best
        memo.requests_distinct = requests_distinct
        memo.src_coords = src_coords
        memo.emit = emitted
        memo.reg_lo = reg_lo
        memo.reg_hi = reg_hi
        memo.reg_mem = mem_rows
        memo.reg_bytes = byte_rows
        memo.reg_order = order
        memo.version = mirror.version

    def _probe_fixed(self, memo, lo, hi, rem_idx, ndim) -> bool:
        """True when some request matches a static instance row."""
        if not memo.fixed_hash.size:
            return False
        req_cols = np.empty((rem_idx.size, 2 * ndim), dtype=np.int64)
        req_cols[:, :ndim] = lo[:, rem_idx].T
        req_cols[:, ndim:] = hi[:, rem_idx].T
        rh = _hash_rows(req_cols)
        pos = np.searchsorted(memo.fixed_hash, rh)
        pos = np.minimum(pos, memo.fixed_hash.size - 1)
        maybe = memo.fixed_hash[pos] == rh
        return bool(
            np.any(maybe)
            and np.any(
                np.all(
                    memo.fixed_cols[pos[maybe]] == req_cols[maybe], axis=1
                )
            )
        )

    def _replay_translation(self, memo, name, region, step, lo, hi,
                            tensor, delta, rem_idx, mirror):
        """Emit a phase as a uniform translation of the previous one.

        Preconditions verified by the caller: uniform request
        translation with a two-phase delta streak, an unchanged mirror
        modulo this tensor's own held-set churn, and an identical
        remaining-member set. Holder pairs and their selection keys are
        translation invariant; the owner arithmetic re-runs (owner
        blocks move under translation) and the winner table must come
        back unchanged, else the caller resolves in full.
        """
        ndim = tensor.ndim
        fetch_idx = memo.fetch_idx
        if fetch_idx.size != rem_idx.size:
            return None
        if self._probe_fixed(memo, lo, hi, rem_idx, ndim):
            return None
        req_coords = region.coords[fetch_idx]
        best, have, src_coords = self._select_winners(
            name, tensor, region, lo, hi, fetch_idx, req_coords,
            memo.holder_best, memo.pair_req, memo.pair_key,
            memo.pair_coords,
        )
        if not have.all() or not np.array_equal(src_coords, memo.src_coords):
            return None
        emit = memo.emit
        chunk = emit.chunk
        new_chunk = _Chunk(
            tensor_id=chunk.tensor_id,
            lo=chunk.lo + delta,
            hi=chunk.hi + delta,
            nbytes=chunk.nbytes,
            src_proc=chunk.src_proc,
            dst_proc=chunk.dst_proc,
            src_gpu=chunk.src_gpu,
            dst_gpu=chunk.dst_gpu,
            reduce=False,
            distinct=chunk.distinct,
        )
        builder = self._builder(step)
        new_pos = len(builder.chunks)
        builder.chunks.append(new_chunk)
        builder.replay_votes.append((emit.builder, emit.pos))
        rep_lo = emit.rep_lo + delta
        rep_hi = emit.rep_hi + delta
        self._append_reps(step, name, rep_lo, rep_hi, emit.rep_args, ndim)
        memo.emit = _EmitInfo(
            chunk=new_chunk, pos=new_pos, builder=builder,
            keep=emit.keep, first=emit.first, counts=emit.counts,
            rep_args=emit.rep_args, rep_lo=rep_lo, rep_hi=rep_hi,
        )
        memo.reg_lo = memo.reg_lo + delta
        memo.reg_hi = memo.reg_hi + delta
        memo.version = mirror.version
        memo.req_index_hash = None
        memo.outcome_valid = True
        return (
            fetch_idx,
            memo.reg_lo,
            memo.reg_hi,
            memo.reg_mem,
            memo.reg_bytes,
            memo.reg_order,
        )

    def _replay_permutation(self, memo, name, region, step, lo, hi,
                            tensor, perm, rem_idx, mirror):
        """Emit a rotation phase: requests permute to the ``s``-shifted
        neighbour's, everything per-member else is unchanged.

        Holder pairs remain one-per-member at the same uniform offset
        (so the selection keys are unchanged); owner candidates re-run
        and the winner table must come back unchanged; per-member
        payload sizes must be invariant (ragged boundary tiles defeat
        the replay and fall back to a full resolve).
        """
        ndim = tensor.ndim
        fetch_idx = memo.fetch_idx
        if fetch_idx.size != rem_idx.size:
            return None
        if self._probe_fixed(memo, lo, hi, rem_idx, ndim):
            return None
        vol = np.ones(fetch_idx.size, dtype=np.int64)
        for d in range(ndim):
            vol *= hi[d, fetch_idx] - lo[d, fetch_idx]
        if not np.array_equal(vol * tensor.itemsize, memo.reg_bytes):
            return None
        req_coords = region.coords[fetch_idx]
        best, have, src_coords = self._select_winners(
            name, tensor, region, lo, hi, fetch_idx, req_coords,
            memo.holder_best, memo.pair_req, memo.pair_key,
            memo.pair_coords,
        )
        if not have.all() or not np.array_equal(src_coords, memo.src_coords):
            return None
        emit = memo.emit
        chunk = emit.chunk
        keep = emit.keep
        if keep is None:
            kept_lo = lo[:, fetch_idx].T.copy()
            kept_hi = hi[:, fetch_idx].T.copy()
        else:
            kept_lo = lo[:, fetch_idx[keep]].T.copy()
            kept_hi = hi[:, fetch_idx[keep]].T.copy()
        new_chunk = _Chunk(
            tensor_id=chunk.tensor_id,
            lo=kept_lo,
            hi=kept_hi,
            nbytes=chunk.nbytes,
            src_proc=chunk.src_proc,
            dst_proc=chunk.dst_proc,
            src_gpu=chunk.src_gpu,
            dst_gpu=chunk.dst_gpu,
            reduce=False,
            distinct=chunk.distinct,
        )
        builder = self._builder(step)
        new_pos = len(builder.chunks)
        builder.chunks.append(new_chunk)
        # Group ids depend on absolute rectangles, which permute across
        # members here — the step's columns are *not* byte-identical to
        # the source step's, so no clone vote (finalize re-folds).
        rep_lo = kept_lo[emit.first]
        rep_hi = kept_hi[emit.first]
        self._append_reps(step, name, rep_lo, rep_hi, emit.rep_args, ndim)
        memo.emit = _EmitInfo(
            chunk=new_chunk, pos=new_pos, builder=builder,
            keep=keep, first=emit.first, counts=emit.counts,
            rep_args=emit.rep_args, rep_lo=rep_lo, rep_hi=rep_hi,
        )
        memo.reg_lo = lo[:, fetch_idx].T.copy()
        memo.reg_hi = hi[:, fetch_idx].T.copy()
        memo.version = mirror.version
        memo.req_index_hash = None
        memo.outcome_valid = True
        return (
            fetch_idx,
            memo.reg_lo,
            memo.reg_hi,
            memo.reg_mem,
            memo.reg_bytes,
            memo.reg_order,
        )

    def _replay_transport(self, memo, name, name_pos, n_names, region,
                          step, lo, hi, tensor, perm, shift, remaining,
                          rem_idx, mirror):
        """Resolve a rotation phase without the mirror join.

        Handles rotations whose *fetch set* moves too (the local-tile
        "hole" travels with the rotation): the requests are a verified
        permutation of the previous phase's pairwise-distinct requests,
        so a member's only possible holder is its shifted neighbour —
        exactly when that neighbour fetched (and registered) last
        phase. Pairs are synthesized from the permutation instead of
        joined against the mirror; owner candidates and winners are
        computed exactly as in the full path, and emission and
        registration run on fresh columns.
        """
        ndim = tensor.ndim
        if self._probe_fixed(memo, lo, hi, rem_idx, ndim):
            return None
        fetch_idx = rem_idx
        k = fetch_idx.size
        mt = self._mt
        shape_vec = mt.shape
        size = mt.size
        big = np.iinfo(np.int64).max
        has = memo.rem_mask[perm[fetch_idx]]
        pair_req = np.flatnonzero(has)
        req_coords = region.coords[fetch_idx]
        pair_coords = (req_coords[pair_req] + shift) % shape_vec
        dist = int(np.minimum(shift, shape_vec - shift).sum())
        pair_key = dist * 2 * size + pair_coords @ mt.strides
        holder_best = np.full(k, big, dtype=np.int64)
        holder_best[pair_req] = pair_key
        best, have, src_coords = self._select_winners(
            name, tensor, region, lo, hi, fetch_idx, req_coords,
            holder_best, pair_req, pair_key, pair_coords,
        )
        if not have.all():
            return None
        emitted = self._emit_bulk(
            step, name, region, fetch_idx, lo[:, fetch_idx],
            hi[:, fetch_idx], src_coords, tensor, distinct=True,
        )
        vol = np.ones(k, dtype=np.int64)
        for d in range(ndim):
            vol *= hi[d, fetch_idx] - lo[d, fetch_idx]
        byte_rows = vol * tensor.itemsize
        mem_rows = mt.tensor_mem_of_proc(tensor)[region.proc[fetch_idx]]
        order = fetch_idx.astype(np.int64) * np.int64(n_names) + name_pos
        reg_lo = lo[:, fetch_idx].T.copy()
        reg_hi = hi[:, fetch_idx].T.copy()
        # Refresh the memo exactly as a full resolve would.
        memo.outcome_valid = emitted is not None
        memo.registered_all = True
        memo.rem_mask = remaining.copy()
        memo.fetch_idx = fetch_idx
        memo.pair_req = pair_req
        memo.pair_coords = pair_coords
        memo.pair_key = pair_key
        memo.holder_best = holder_best
        memo.pair_offsets = [shift.copy()]
        pair_has = np.zeros(region.n, dtype=bool)
        pair_has[fetch_idx[pair_req]] = True
        memo.pair_has = pair_has
        memo.requests_distinct = True
        memo.src_coords = src_coords
        memo.emit = emitted
        memo.reg_lo = reg_lo
        memo.reg_hi = reg_hi
        memo.reg_mem = mem_rows
        memo.reg_bytes = byte_rows
        memo.reg_order = order
        memo.req_index_hash = None
        memo.version = mirror.version
        return (fetch_idx, reg_lo, reg_hi, mem_rows, byte_rows, order)

    def _append_reps(self, step, name, rep_lo, rep_hi, rep_args, ndim):
        """Append class-representative copies with replayed rects."""
        rect_memo = self._rect_memo
        append = step.copies.append
        lo_list = rep_lo.tolist()
        hi_list = rep_hi.tolist()
        for r, args in enumerate(rep_args):
            rect_key = (tuple(lo_list[r]), tuple(hi_list[r]))
            rect = rect_memo.get(rect_key)
            if rect is None:
                rect = Rect(
                    tuple(
                        Interval(lo_list[r][d], hi_list[r][d])
                        for d in range(ndim)
                    )
                )
                rect_memo[rect_key] = rect
            append(Copy(tensor=name, rect=rect, **args))

    def _emit_bulk(self, step: Step, name: str, region: "_Region",
                   member_idx: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                   other_coords: np.ndarray, tensor, reduce: bool = False,
                   distinct: bool = False):
        """Emit one phase-tensor batch: columns plus class representatives.

        ``member_idx`` names the region contexts on one side of the
        transfer and ``other_coords`` the machine points on the other:
        for fetches (``reduce=False``) the members *receive* from the
        resolved sources; for reduction write-backs (``reduce=True``)
        the members *send* their partials to the owners.
        """
        mt = self._mt
        other_lin = other_coords @ mt.strides
        other_proc = mt.proc_of_point[other_lin]
        member_proc = region.proc[member_idx]
        ndim = lo.shape[0]
        vol = np.ones(member_idx.size, dtype=np.int64)
        for d in range(ndim):
            vol *= hi[d] - lo[d]
        nbytes = vol * tensor.itemsize
        # The scalar `_emit_copy` rule: zero-byte copies vanish; same-
        # processor transfers vanish for fetches (over-decomposition)
        # but reduction write-backs are recorded even on one processor.
        keep = nbytes > 0
        if not reduce:
            keep &= other_proc != member_proc
        keep_mask = None
        if not keep.all():
            if not keep.any():
                return None
            keep_mask = keep
            member_idx = member_idx[keep]
            lo = lo[:, keep]
            hi = hi[:, keep]
            other_coords = other_coords[keep]
            other_proc = other_proc[keep]
            member_proc = member_proc[keep]
            nbytes = nbytes[keep]
        member_coords = region.coords[member_idx]
        # Endpoint memories as the scalar `_emit_copy` prices them: the
        # instance side (fetch source / reduction destination) is the
        # tensor-preference-aware memory (`source_memory`), the context
        # side is its processor memory (host-resident data fetched by a
        # GPU context lands in its framebuffer's accounting domain).
        if reduce:
            src_proc, dst_proc = member_proc, other_proc
            src_coords, dst_coords = member_coords, other_coords
            src_mem = mt.procmem_of_proc[src_proc]
            dst_mem = mt.tensor_mem_of_proc(tensor)[dst_proc]
        else:
            src_proc, dst_proc = other_proc, member_proc
            src_coords, dst_coords = other_coords, member_coords
            src_mem = mt.tensor_mem_of_proc(tensor)[src_proc]
            dst_mem = mt.procmem_of_proc[dst_proc]
        src_gpu = mt.mem_gpu[src_mem]
        dst_gpu = mt.mem_gpu[dst_mem]
        builder = self._builder(step)
        chunk = _Chunk(
            tensor_id=self._tensor_ids[name],
            lo=lo.T.copy(),
            hi=hi.T.copy(),
            nbytes=nbytes,
            src_proc=src_proc,
            dst_proc=dst_proc,
            src_gpu=src_gpu,
            dst_gpu=dst_gpu,
            reduce=reduce,
            distinct=distinct,
        )
        chunk_pos = len(builder.chunks)
        builder.chunks.append(chunk)
        # Orbit classes: (shape, source offset, inter/intra) — one
        # representative Copy per class, weighted by multiplicity.
        k = nbytes.size
        mdim = mt.shape.size
        offs = (src_coords - dst_coords) % mt.shape
        inter = mt.node_of_proc[src_proc] != mt.node_of_proc[dst_proc]
        shapes = hi - lo
        # Uniform-shift fast path: one shape, one offset, one payload —
        # a systolic phase — splits only by inter/intra character, so
        # the class fold collapses to a bincount of ``inter``.
        uniform = (
            bool(np.all(offs == offs[0]))
            and bool(np.all(nbytes == nbytes[0]))
            and bool(np.all(shapes == shapes[:, :1]))
        )
        if uniform:
            n_inter = int(np.count_nonzero(inter))
            if n_inter == 0 or n_inter == k:
                first = np.zeros(1, dtype=np.int64)
                counts = np.array([k], dtype=np.int64)
            else:
                # Intra (inter=0) ranks before inter=1, as the fold
                # orders them.
                first = np.array(
                    [int(np.argmax(~inter)), int(np.argmax(inter))],
                    dtype=np.int64,
                )
                counts = np.array([k - n_inter, n_inter], dtype=np.int64)
        else:
            class_cols = np.empty((k, ndim + mdim + 2), dtype=np.int64)
            class_cols[:, :ndim] = shapes.T
            class_cols[:, ndim:ndim + mdim] = offs
            class_cols[:, ndim + mdim] = inter
            class_cols[:, ndim + mdim + 1] = nbytes
            ranges = (
                [(0, e + 1) for e in tensor.shape]
                + [(0, int(e)) for e in mt.shape]
                + [(0, 2), (0, int(tensor.nbytes) + 1)]
            )
            first, counts = fold_groups(class_cols, ranges)
        procs = self.machine.cluster.processors
        reps = first.tolist()
        rep_counts = counts.tolist()
        rep_lo = lo[:, first].T.tolist()
        rep_hi = hi[:, first].T.tolist()
        rep_src_c = src_coords[first].tolist()
        rep_dst_c = dst_coords[first].tolist()
        rep_nbytes = nbytes[first].tolist()
        rep_src_p = src_proc[first].tolist()
        rep_dst_p = dst_proc[first].tolist()
        rep_src_m = src_mem[first].tolist()
        rep_dst_m = dst_mem[first].tolist()
        append = step.copies.append
        rect_memo = self._rect_memo
        rep_args = []
        for r in range(len(reps)):
            rect_key = (tuple(rep_lo[r]), tuple(rep_hi[r]))
            rect = rect_memo.get(rect_key)
            if rect is None:
                rect = Rect(
                    tuple(
                        Interval(rep_lo[r][d], rep_hi[r][d])
                        for d in range(ndim)
                    )
                )
                rect_memo[rect_key] = rect
            args = dict(
                nbytes=rep_nbytes[r],
                src_proc=procs[rep_src_p[r]],
                dst_proc=procs[rep_dst_p[r]],
                src_mem=mt.memories[rep_src_m[r]],
                dst_mem=mt.memories[rep_dst_m[r]],
                src_coords=tuple(rep_src_c[r]),
                dst_coords=tuple(rep_dst_c[r]),
                reduce=reduce,
                count=rep_counts[r],
            )
            rep_args.append(args)
            append(Copy(tensor=name, rect=rect, **args))
        return _EmitInfo(
            chunk=chunk,
            pos=chunk_pos,
            builder=builder,
            keep=keep_mask,
            first=first,
            counts=counts,
            rep_args=rep_args,
            rep_lo=lo[:, first].T.copy(),
            rep_hi=hi[:, first].T.copy(),
        )

    def _emit_multi_piece(self, step: Step, name: str, region: "_Region",
                          members: np.ndarray, lo: np.ndarray,
                          hi: np.ndarray, tensor):
        """Fetches spanning several home pieces, batched by rect class.

        The scalar interpreter decomposed these per context through
        ``DataEnvironment.resolve``; here ``owner_pieces`` runs once per
        *distinct* request rectangle (the class representative) and each
        piece fans out over the class members as column arithmetic —
        replica dimensions concretize to the requesting member's
        coordinates, exactly like ``_concretize``.
        """
        self.multi_piece_batches += 1
        ndim = lo.shape[0]
        if ndim:
            keys = fold_rows(np.column_stack([lo.T, hi.T]))
        else:
            keys = np.zeros(members.size, dtype=np.int64)
        _, first, inv = np.unique(
            keys, return_index=True, return_inverse=True
        )
        shape_vec = self._mt.shape
        for ci, f in enumerate(first):
            rows = members[inv == ci]
            rect = _rect_from(lo[:, f], hi[:, f], ndim)
            req = region.coords[rows] % shape_vec
            for pat, piece in self.env._owner_pieces(name, rect):
                pat_arr = np.array(
                    [-1 if p is None else p for p in pat], dtype=np.int64
                )
                src = np.where(pat_arr >= 0, pat_arr, req)
                p_lo = np.empty((ndim, rows.size), dtype=np.int64)
                p_hi = np.empty((ndim, rows.size), dtype=np.int64)
                for d, iv in enumerate(piece.intervals):
                    p_lo[d, :] = iv.lo
                    p_hi[d, :] = iv.hi
                self._emit_bulk(
                    step, name, region, rows, p_lo, p_hi, src, tensor
                )

    def _orbit_flush(self, names: List[str], region: "_Region", step: Step,
                     events: "_EventStream"):
        """Vectorized reduction flush for every context of a region.

        Replays the scalar ``_flush`` loop nest (contexts outer, flush
        names inner) exactly: each pending partial's bytes are released
        at its context, a transient reduction instance is staged at its
        owner (``stage_reduction``'s add-then-release, which can raise
        the high-water mark and OOM), and one reduce copy per (partial,
        owner piece) is recorded — columnar, compressed to one
        representative per symmetry class. Owner patterns are derived
        once per distinct rectangle; per-member owners are column
        arithmetic. Memory events land on ``events`` keyed in the
        scalar commit order; the caller applies them (the leaf path
        weaves register/partial/release events into the same stream).
        """
        mt = self._mt
        shape_vec = mt.shape
        with span("orbit.flush"):
            self._orbit_flush_inner(
                names, region, step, events, mt, shape_vec
            )

    def _orbit_flush_inner(self, names, region, step, events, mt,
                           shape_vec):
        for f_pos, name in enumerate(names):
            member, lo, hi = self.env.take_partials(name, region.coords)
            if member.size == 0:
                continue
            self.flush_batches += 1
            tensor = self.plan.tensors[name]
            ndim = tensor.ndim
            vol = np.ones(member.size, dtype=np.int64)
            for d in range(ndim):
                vol *= hi[d] - lo[d]
            nbytes = vol * tensor.itemsize
            ctx_mem = mt.tensor_mem_of_proc(tensor)[region.proc[member]]
            seq = _rank_within(member)
            # flush_partials: release the pending bytes, rect order.
            events.add(
                ctx_mem, -nbytes, member, _EventStream.FLUSH,
                f_pos * 2, seq,
            )
            if ndim:
                keys = fold_rows(np.column_stack([lo.T, hi.T]))
            else:
                keys = np.zeros(member.size, dtype=np.int64)
            _, first, inv = np.unique(
                keys, return_index=True, return_inverse=True
            )
            for ci, f in enumerate(first):
                rows = np.flatnonzero(inv == ci)
                rect = _rect_from(lo[:, f], hi[:, f], ndim)
                pattern = self.env._owner_pattern(name, rect)
                if pattern is not None:
                    pieces = [(tuple(pattern), rect)]
                else:
                    pieces = self.env._owner_pieces(name, rect)
                req = region.coords[member[rows]] % shape_vec
                for p_seq, (pat, piece) in enumerate(pieces):
                    pat_arr = np.array(
                        [-1 if p is None else p for p in pat],
                        dtype=np.int64,
                    )
                    owner = np.where(pat_arr >= 0, pat_arr, req)
                    act = np.any(
                        owner != region.coords[member[rows]], axis=1
                    )
                    if not np.any(act):
                        continue
                    arows = rows[act]
                    owner_a = owner[act]
                    pbytes = np.full(
                        arows.size, piece.volume * tensor.itemsize,
                        dtype=np.int64,
                    )
                    owner_mem = mt.tensor_mem_of_proc(tensor)[
                        mt.proc_of_point[owner_a @ mt.strides]
                    ]
                    # stage_reduction: transient add + release at owner.
                    events.add(
                        owner_mem, pbytes, member[arows],
                        _EventStream.FLUSH, f_pos * 2 + 1, seq[arows],
                        p_seq * 2,
                    )
                    events.add(
                        owner_mem, -pbytes, member[arows],
                        _EventStream.FLUSH, f_pos * 2 + 1, seq[arows],
                        p_seq * 2 + 1,
                    )
                    p_lo = np.empty((ndim, arows.size), dtype=np.int64)
                    p_hi = np.empty((ndim, arows.size), dtype=np.int64)
                    for d, iv in enumerate(piece.intervals):
                        p_lo[d, :] = iv.lo
                        p_hi[d, :] = iv.hi
                    self._emit_bulk(
                        step, name, region, member[arows], p_lo, p_hi,
                        owner_a, tensor, reduce=True,
                    )

    def _release_held(self, held: Dict[str, np.ndarray]):
        for name, rows in held.items():
            mirror = self.env.mirror(name)
            self.env.bulk_sub(mirror.mem[rows], mirror.nbytes[rows])
            mirror.free_rows(rows)


class _PhaseMemo:
    """One tensor's previous communication phase, for translation replay.

    A systolic loop issues the *same* phase every iteration up to a
    uniform coordinate translation of every request rectangle. When the
    executor proves a phase is such a translation (equal live sets,
    exactly shifted endpoint columns, an unchanged instance-mirror
    modulo its own held-set churn, and no request matching a
    non-translated instance), it replays the previous phase's resolved
    outcome — holder pairs, winners, emission chunk, class
    representatives, registration batch — with shifted rectangles
    instead of re-deriving it. Owner candidates are *not* translation
    covariant (a shifted rectangle has a different home block), so the
    owner arithmetic and winner selection always re-run; everything
    re-used is provably identical under the verified conditions.
    """

    __slots__ = (
        "lo", "hi", "live_all", "delta", "streak", "version",
        "rem_mask", "fetch_idx", "holder_local_any", "registered_all",
        "pair_req", "pair_coords", "pair_key", "holder_best",
        "pair_offsets", "pair_has", "perm_streak", "perm_shift",
        "requests_distinct",
        "fixed_hash", "fixed_cols", "fixed_coords",
        "req_index_hash", "req_index_member", "req_index_cols",
        "index_version", "index_fresh",
        "src_coords", "emit",
        "reg_lo", "reg_hi", "reg_mem", "reg_bytes", "reg_order",
        "outcome_valid",
    )

    def __init__(self):
        self.lo = None
        self.hi = None
        self.live_all = False
        self.delta = None
        self.streak = 0
        self.version = -1
        self.rem_mask = None
        self.fetch_idx = None
        self.holder_local_any = False
        self.registered_all = False
        self.pair_req = None
        self.pair_coords = None
        self.pair_key = None
        self.holder_best = None
        self.pair_offsets = None
        self.pair_has = None
        self.perm_streak = 0
        self.perm_shift = None
        self.requests_distinct = False
        self.fixed_hash = None
        self.fixed_cols = None
        self.fixed_coords = None
        self.req_index_hash = None
        self.req_index_member = None
        self.req_index_cols = None
        self.index_version = -1
        self.index_fresh = False
        self.src_coords = None
        self.emit = None
        self.reg_lo = None
        self.reg_hi = None
        self.reg_mem = None
        self.reg_bytes = None
        self.reg_order = None
        self.outcome_valid = False

    def advance(self, lo: np.ndarray, hi: np.ndarray,
                live_all: bool) -> Optional[np.ndarray]:
        """Update the translation streak; returns the uniform delta when
        this phase is an exact translation of the previous one."""
        delta = None
        if (
            live_all
            and self.live_all
            and self.lo is not None
            and self.lo.shape == lo.shape
            and lo.size
        ):
            d = lo[:, 0] - self.lo[:, 0]
            if (
                np.array_equal(lo, self.lo + d[:, None])
                and np.array_equal(hi, self.hi + d[:, None])
            ):
                delta = d
        if delta is not None and self.delta is not None and np.array_equal(
            delta, self.delta
        ):
            self.streak += 1
        else:
            self.streak = 1 if delta is not None else 0
        self.delta = delta
        # batch_bounds allocates fresh endpoint matrices per phase, so
        # holding references (no copy) is safe.
        self.lo = lo
        self.hi = hi
        self.live_all = live_all
        return delta


class _EventStream:
    """Memory add/sub events accumulated out of order, replayed exactly.

    Phases whose state mutations interleave per context (reduction
    flushes, leaf-level communication) are built as column batches in
    whatever order is convenient; each event carries a sort key
    ``(context member, phase, k2, k3, k4)`` that reproduces the scalar
    interpreter's commit order, and :meth:`ordered` emits the stream
    sorted for :meth:`OrbitState.apply_events`.
    """

    REGISTER = 0
    PARTIAL = 1
    FLUSH = 2
    RELEASE = 3

    def __init__(self):
        self._mem: List[np.ndarray] = []
        self._delta: List[np.ndarray] = []
        self._keys: List[np.ndarray] = []

    def add(self, mem, delta, k0, k1, k2=0, k3=0, k4=0):
        mem = np.asarray(mem, dtype=np.int64).reshape(-1)
        n = mem.size
        if n == 0:
            return
        self._mem.append(mem)
        self._delta.append(
            np.broadcast_to(np.asarray(delta, dtype=np.int64), (n,))
        )
        cols = [
            np.broadcast_to(np.asarray(k, dtype=np.int64), (n,))
            for k in (k0, k1, k2, k3, k4)
        ]
        self._keys.append(np.column_stack(cols))

    def ordered(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(mem_ids, deltas)`` stream in scalar event order."""
        if not self._mem:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        mem = np.concatenate(self._mem)
        delta = np.concatenate(self._delta)
        keys = np.vstack(self._keys)
        order = np.lexsort(keys.T[::-1])
        return mem[order], delta[order]


def _probe_index(sorted_hash: np.ndarray, req_k: np.ndarray,
                 sorted_cols: np.ndarray, req_cols: np.ndarray):
    """Match request rows against a pre-sorted row-hash index.

    Returns ``(pair_req, pair_pos)``: request positions (non-
    decreasing) and matching index positions, every candidate verified
    exactly on the original columns.
    """
    empty = np.zeros(0, dtype=np.int64)
    if sorted_hash.size == 0 or req_k.size == 0:
        return empty, empty
    left = np.searchsorted(sorted_hash, req_k, side="left")
    right = np.searchsorted(sorted_hash, req_k, side="right")
    cnt = right - left
    total = int(cnt.sum())
    if total == 0:
        return empty, empty
    pair_req = np.repeat(np.arange(req_k.size, dtype=np.int64), cnt)
    starts = np.cumsum(cnt) - cnt
    rank = np.arange(total, dtype=np.int64) - np.repeat(starts, cnt)
    pair_pos = np.repeat(left, cnt) + rank
    genuine = np.all(sorted_cols[pair_pos] == req_cols[pair_req], axis=1)
    if not genuine.all():
        pair_req = pair_req[genuine]
        pair_pos = pair_pos[genuine]
    return pair_req, pair_pos


def _rank_within(group: np.ndarray) -> np.ndarray:
    """Each element's rank among equal values (stable, in input order)."""
    order = np.argsort(group, kind="stable")
    sg = group[order]
    starts = np.flatnonzero(np.r_[True, sg[1:] != sg[:-1]])
    seg_len = np.diff(np.r_[starts, sg.size])
    rank_sorted = np.arange(sg.size, dtype=np.int64) - np.repeat(
        starts, seg_len
    )
    out = np.empty(group.size, dtype=np.int64)
    out[order] = rank_sorted
    return out


class _Region:
    """Per-context-batch lookup tables (one plan launch region)."""

    def __init__(self, executor: OrbitExecutor, ctxs: List[_Ctx],
                 block: CtxBlock):
        self.block = block
        self.ctxs = ctxs
        self.n = len(ctxs)
        mdim = executor.machine.dim
        coords = np.empty((self.n, mdim), dtype=np.int64)
        for i, ctx in enumerate(ctxs):
            coords[i] = ctx.coords
        self.coords = coords
        mt = executor._mt
        self.proc = mt.proc_of_point[coords @ mt.strides]
        self._home: Dict[str, Tuple] = {}
        self._member_of_linear: Optional[np.ndarray] = None
        self._perms: Dict[Tuple[int, ...], Optional[np.ndarray]] = {}

    def perm_for_shift(self, shift: np.ndarray,
                       mt: _MachineTables) -> Optional[np.ndarray]:
        """Member permutation mapping each context to the one at
        ``coords + shift`` (torus), or ``None`` if any target is not a
        member of this region."""
        key = tuple(int(s) for s in shift)
        if key in self._perms:
            return self._perms[key]
        if self._member_of_linear is None:
            table = np.full(mt.size, -1, dtype=np.int64)
            table[self.coords @ mt.strides] = np.arange(
                self.n, dtype=np.int64
            )
            self._member_of_linear = table
        target = (self.coords + shift) % mt.shape
        perm = self._member_of_linear[target @ mt.strides]
        out = None if bool(np.any(perm < 0)) else perm
        self._perms[key] = out
        return out

    def home(self, executor: OrbitExecutor, name: str):
        """Home-rectangle endpoint columns per context (lazy, cached).

        Derived for the whole region at once via
        :meth:`~repro.formats.format.Format.owned_rect_batch` — the
        per-context ``owned_rect`` walk was the dominant scalar cost of
        large-grid executions.
        """
        cached = self._home.get(name)
        if cached is not None:
            return cached
        tensor = executor.plan.tensors[name]
        ndim = tensor.ndim
        h_lo, h_hi, h_ok = tensor.format.owned_rect_batch(
            executor.machine, self.coords, tensor.shape
        )
        if ndim:
            h_ok = h_ok & np.all(h_hi > h_lo, axis=0)
            h_lo[:, ~h_ok] = 0
            h_hi[:, ~h_ok] = 0
        out = (h_lo, h_hi, h_ok)
        self._home[name] = out
        return out


def _rect_from(lo: np.ndarray, hi: np.ndarray, ndim: int) -> Rect:
    return Rect(
        tuple(Interval(int(lo[d]), int(hi[d])) for d in range(ndim))
    )


def _has_launch(node: PlanNode) -> bool:
    while node is not None:
        if isinstance(node, LaunchNode):
            return True
        node = getattr(node, "body", None)
    return False
