"""Orbit-compressed symbolic execution.

The paper's schedules are SPMD: at every communication phase, most grid
points issue a request that is a coordinate *translation* of their
neighbours' — same rectangle shape, same source offset, same payload.
The batched executor (PR 1) still pays O(P) Python per phase resolving
and recording those requests one context at a time; this module makes
the Python cost scale with the number of *distinct per-context
behaviours* (symmetry classes) instead, while per-member bookkeeping
runs as numpy column arithmetic:

1. **Fingerprinting.** Each context's request is fingerprinted from the
   vectorized bounds analysis (:func:`~repro.runtime.batchbounds
   .batch_bounds`): the ``(tensor, rect-shape, source-offset)`` tuple.
   Contexts with equal fingerprints form an *orbit* — a symmetry class
   under machine translation.
2. **Class-level resolution.** Ownership is computed for all requests
   at once with the vectorized distribution arithmetic
   (:meth:`~repro.formats.format.Format.owner_pattern_batch`); cached
   instances live in columnar *mirror* tables joined against requests
   by sort/searchsorted instead of per-context dict probes. Nearest-
   source selection reproduces the scalar rule ``min((torus distance,
   coords))`` exactly.
3. **Compressed traces.** Each orbit emits one representative
   :class:`~repro.runtime.trace.Copy` carrying a ``count``
   multiplicity; per-processor :class:`~repro.runtime.trace.Work` is
   likewise stored once per class of identical timelines. The exact
   per-member endpoint columns are still built (as numpy arrays, never
   Python objects) and pinned on each step, so the cost model's
   link-contention accounting is byte-identical to full execution.
4. **Fallback.** Anything the class analysis cannot prove uniform —
   requests spanning several home pieces, reduction flushes, leaf-level
   communication or flushes — falls back to the per-context scalar
   machinery against the same state, so results stay exact (asserted
   by ``tests/runtime/test_orbit_executor.py`` on every Figure 9
   schedule plus deliberately non-divisible problem sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codegen.plan import LaunchNode, LeafNode, PlanNode, SeqNode
from repro.machine.cluster import MemoryKind
from repro.machine.machine import Machine
from repro.runtime.batchbounds import CtxBlock, batch_bounds
from repro.runtime.executor import ExecutionResult, Executor, _Ctx
from repro.runtime.instances import DataEnvironment
from repro.runtime.trace import Copy, CopyColumns, Step, Trace, Work
from repro.util.errors import OutOfMemoryError
from repro.util.geometry import Interval, Rect

# ----------------------------------------------------------------------
# Key folding: collision-free int64 row keys for vectorized joins.
# ----------------------------------------------------------------------


def fold_rows(mat: np.ndarray) -> np.ndarray:
    """A collision-free int64 key per row of an integer matrix.

    Columns are rank-compressed one at a time and re-ranked after every
    fold, so intermediate products never exceed ``nrows**2`` (no
    overflow for any realistic batch). Equal rows — across the whole
    matrix — get equal keys; distinct rows get distinct keys.
    """
    n = mat.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if mat.shape[1] == 0:
        return np.zeros(n, dtype=np.int64)
    _, key = np.unique(mat[:, 0], return_inverse=True)
    key = key.astype(np.int64)
    for c in range(1, mat.shape[1]):
        _, inv = np.unique(mat[:, c], return_inverse=True)
        key = key * (int(inv.max()) + 1) + inv
        _, key = np.unique(key, return_inverse=True)
        key = key.astype(np.int64)
    return key


def fold_two(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Fold two row sets into one comparable key space."""
    keys = fold_rows(np.vstack([a, b]))
    return keys[: a.shape[0]], keys[a.shape[0]:]


# ----------------------------------------------------------------------
# Machine tables (cached per Machine instance).
# ----------------------------------------------------------------------


class _MachineTables:
    """Numpy lookup tables for grid points, processors and memories."""

    def __init__(self, machine: Machine):
        cluster = machine.cluster
        shape = machine.shape
        self.shape = np.asarray(shape, dtype=np.int64)
        self.size = machine.size
        strides = np.ones(len(shape), dtype=np.int64)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        self.strides = strides
        n_procs = cluster.num_processors
        self.node_of_proc = np.fromiter(
            (p.node_id for p in cluster.processors), np.int64, n_procs
        )
        self.memories = cluster.memories()
        self.mem_index = {m.name: i for i, m in enumerate(self.memories)}
        n_mem = len(self.memories)
        self.mem_capacity = np.fromiter(
            (m.capacity_bytes for m in self.memories), np.int64, n_mem
        )
        self.mem_gpu = np.fromiter(
            (m.kind is MemoryKind.GPU_FB for m in self.memories), bool, n_mem
        )
        self.procmem_of_proc = np.fromiter(
            (self.mem_index[p.memory.name] for p in cluster.processors),
            np.int64,
            n_procs,
        )
        self.sysmem_of_node = np.fromiter(
            (
                self.mem_index[nd.system_memory.name]
                if nd.system_memory is not None
                else -1
                for nd in cluster.nodes
            ),
            np.int64,
            cluster.num_nodes,
        )
        table = np.empty(self.size, dtype=np.int64)
        for i, point in enumerate(machine.points()):
            table[i] = machine.proc_at(point).proc_id
        self.proc_of_point = table
        self._tensor_mem: Dict[Tuple[str, str], np.ndarray] = {}

    def tensor_mem_of_proc(self, tensor) -> np.ndarray:
        """Memory id a tensor instance occupies, per processor.

        Mirrors ``DataEnvironment._memory_for_uncached``: framebuffer-
        pinned formats use the processor memory (which *is* the
        framebuffer on GPUs), host-resident formats use the node system
        memory when one exists.
        """
        wants = tensor.format.memory
        key = (tensor.name, wants.value)
        cached = self._tensor_mem.get(key)
        if cached is not None:
            return cached
        if wants is MemoryKind.SYSTEM_MEM:
            sys_of_proc = self.sysmem_of_node[self.node_of_proc]
            out = np.where(sys_of_proc >= 0, sys_of_proc, self.procmem_of_proc)
        else:
            out = self.procmem_of_proc.copy()
        self._tensor_mem[key] = out
        return out


def machine_tables(machine: Machine) -> _MachineTables:
    tables = getattr(machine, "_orbit_tables", None)
    if tables is None:
        tables = _MachineTables(machine)
        machine._orbit_tables = tables
    return tables


# ----------------------------------------------------------------------
# Columnar instance mirror (the orbit-mode holder tables).
# ----------------------------------------------------------------------


class _Mirror:
    """Columnar cached-instance store for one tensor.

    Rows are ``(rect lo, rect hi, holder coords, memory, bytes)``.
    Freed rows are recycled, so the arrays stay bounded by the peak
    number of live instances. Row ids are stable for the lifetime of
    the instance, which is what phase-held bookkeeping releases by.
    """

    def __init__(self, ndim: int, mdim: int):
        self.ndim = ndim
        self.mdim = mdim
        cap = 64
        self.lo = np.zeros((cap, ndim), dtype=np.int64)
        self.hi = np.zeros((cap, ndim), dtype=np.int64)
        self.coords = np.zeros((cap, mdim), dtype=np.int64)
        self.mem = np.zeros(cap, dtype=np.int64)
        self.nbytes = np.zeros(cap, dtype=np.int64)
        self.alive = np.zeros(cap, dtype=bool)
        self.tail = 0
        self._free = np.zeros(0, dtype=np.int64)

    def _grow(self, need: int):
        cap = self.alive.size
        new_cap = max(cap * 2, cap + need)
        for name in ("lo", "hi", "coords"):
            arr = getattr(self, name)
            grown = np.zeros((new_cap, arr.shape[1]), dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)
        for name, dtype in (("mem", np.int64), ("nbytes", np.int64)):
            arr = getattr(self, name)
            grown = np.zeros(new_cap, dtype=dtype)
            grown[:cap] = arr
            setattr(self, name, grown)
        alive = np.zeros(new_cap, dtype=bool)
        alive[:cap] = self.alive
        self.alive = alive

    def alloc(self, k: int) -> np.ndarray:
        take = min(k, self._free.size)
        rows = self._free[:take]
        self._free = self._free[take:]
        rest = k - take
        if rest:
            if self.tail + rest > self.alive.size:
                self._grow(self.tail + rest - self.alive.size)
            rows = np.concatenate(
                [rows, np.arange(self.tail, self.tail + rest, dtype=np.int64)]
            )
            self.tail += rest
        return rows

    def add_rows(self, lo, hi, coords, mem, nbytes) -> np.ndarray:
        rows = self.alloc(lo.shape[0])
        self.lo[rows] = lo
        self.hi[rows] = hi
        self.coords[rows] = coords
        self.mem[rows] = mem
        self.nbytes[rows] = nbytes
        self.alive[rows] = True
        return rows

    def free_rows(self, rows: np.ndarray):
        self.alive[rows] = False
        self._free = np.concatenate([self._free, rows])

    def snapshot(self) -> np.ndarray:
        """Row ids of all live instances."""
        return np.flatnonzero(self.alive[: self.tail])

    def rows_matching(self, lo: Tuple[int, ...], hi: Tuple[int, ...]):
        """Live rows holding exactly the given rectangle (scalar path)."""
        live = self.snapshot()
        if live.size == 0:
            return live
        mask = np.ones(live.size, dtype=bool)
        for d in range(self.ndim):
            mask &= self.lo[live, d] == lo[d]
            mask &= self.hi[live, d] == hi[d]
        return live[mask]


# ----------------------------------------------------------------------
# Orbit data environment.
# ----------------------------------------------------------------------


class OrbitState(DataEnvironment):
    """Instance tables and memory accounting on columnar storage.

    The scalar query API (``resolve`` / ``register`` / ``release`` /
    partial tracking) is preserved — the orbit executor's fallback paths
    use it — but holder state lives in per-tensor :class:`_Mirror`
    tables and memory accounting in flat numpy arrays, so bulk phases
    can be applied with bincounts rather than per-context dict updates.
    """

    def __init__(self, plan, check_capacity: bool, tables: _MachineTables):
        self._mt = tables
        n_mem = len(tables.memories)
        self._usage_arr = np.zeros(n_mem, dtype=np.int64)
        self._high_arr = np.zeros(n_mem, dtype=np.int64)
        self._touched = np.zeros(n_mem, dtype=bool)
        self._mirrors: Dict[str, _Mirror] = {}
        super().__init__(plan, check_capacity=check_capacity)

    # -- memory accounting on arrays -----------------------------------

    @property
    def high_water(self) -> Dict[str, int]:
        return {
            self._mt.memories[i].name: int(self._high_arr[i])
            for i in np.flatnonzero(self._touched)
        }

    @high_water.setter
    def high_water(self, value):
        # The base-class constructor assigns an empty dict; accounting
        # here is array-backed, so the assignment is a no-op.
        pass

    def _add_bytes(self, mem, n: int):
        i = self._mt.mem_index[mem.name]
        usage = int(self._usage_arr[i]) + n
        self._usage_arr[i] = usage
        self._touched[i] = True
        if usage > self._high_arr[i]:
            self._high_arr[i] = usage
        if self.check_capacity and usage > mem.capacity_bytes:
            raise OutOfMemoryError(mem.name, usage, mem.capacity_bytes)

    def _sub_bytes(self, mem, n: int):
        i = self._mt.mem_index[mem.name]
        self._usage_arr[i] -= n

    def usage_of(self, mem) -> int:
        return int(self._usage_arr[self._mt.mem_index[mem.name]])

    def bulk_add(self, mem_ids, amounts, order):
        """Apply a phase's registration charges at once.

        Equivalent to ``_add_bytes`` per event in ``order``: the peak
        is reached after the last add either way, and on a capacity
        overflow the events are replayed in order so the raised error
        carries exactly the usage at the first crossing.
        """
        if mem_ids.size == 0:
            return
        n_mem = self._usage_arr.size
        adds = np.bincount(
            mem_ids, weights=amounts.astype(np.float64), minlength=n_mem
        ).astype(np.int64)
        new_usage = self._usage_arr + adds
        if self.check_capacity and bool(
            np.any(new_usage > self._mt.mem_capacity)
        ):
            run = self._usage_arr.copy()
            caps = self._mt.mem_capacity
            seq = np.argsort(order, kind="stable")
            for j in seq:
                mid = int(mem_ids[j])
                run[mid] += int(amounts[j])
                if run[mid] > caps[mid]:
                    raise OutOfMemoryError(
                        self._mt.memories[mid].name,
                        int(run[mid]),
                        int(caps[mid]),
                    )
        self._usage_arr = new_usage
        self._touched |= adds > 0
        np.maximum(self._high_arr, new_usage, out=self._high_arr)

    def bulk_sub(self, mem_ids, amounts):
        if mem_ids.size == 0:
            return
        subs = np.bincount(
            mem_ids,
            weights=amounts.astype(np.float64),
            minlength=self._usage_arr.size,
        ).astype(np.int64)
        self._usage_arr -= subs

    # -- holder state on mirrors ---------------------------------------

    def mirror(self, name: str) -> _Mirror:
        m = self._mirrors.get(name)
        if m is None:
            m = _Mirror(
                self.plan.tensors[name].ndim, self.machine.dim
            )
            self._mirrors[name] = m
        return m

    def _holder_coords(self, name: str, rect: Rect) -> List[Tuple[int, ...]]:
        m = self._mirrors.get(name)
        if m is None:
            return []
        rows = m.rows_matching(rect.lo, rect.hi)
        return [tuple(int(c) for c in m.coords[r]) for r in rows]

    def is_local(self, name, coords, rect) -> bool:
        if self.owns(name, coords, rect):
            return True
        m = self._mirrors.get(name)
        if m is None:
            return False
        rows = m.rows_matching(rect.lo, rect.hi)
        if rows.size == 0:
            return False
        target = np.asarray(coords, dtype=np.int64)
        return bool(np.any(np.all(m.coords[rows] == target, axis=1)))

    def register(self, name, coords, rect) -> bool:
        if rect.is_empty or self.is_local(name, coords, rect):
            return False
        tensor = self.plan.tensors[name]
        mem = self._memory_for(coords, name)
        nbytes = rect.volume * tensor.itemsize
        m = self.mirror(name)
        m.add_rows(
            np.asarray([rect.lo], dtype=np.int64).reshape(1, m.ndim),
            np.asarray([rect.hi], dtype=np.int64).reshape(1, m.ndim),
            np.asarray([coords], dtype=np.int64).reshape(1, m.mdim),
            np.asarray([self._mt.mem_index[mem.name]], dtype=np.int64),
            np.asarray([nbytes], dtype=np.int64),
        )
        self._add_bytes(mem, nbytes)
        return True

    def release(self, name, coords, rect):
        m = self._mirrors.get(name)
        if m is None:
            return
        rows = m.rows_matching(rect.lo, rect.hi)
        if rows.size == 0:
            return
        target = np.asarray(coords, dtype=np.int64)
        hit = rows[np.all(m.coords[rows] == target, axis=1)]
        if hit.size == 0:
            return
        row = hit[:1]
        m.free_rows(row)
        tensor = self.plan.tensors[name]
        self._sub_bytes(
            self._memory_for(coords, name), rect.volume * tensor.itemsize
        )

    def _find_sources(self, name, coords, rect):
        return self._sources_from(
            name,
            rect,
            coords,
            self._holder_coords(name, rect),
            self._owner_pattern(name, rect),
        )

    def resolve_batch(self, name, rect, coords_list):
        if rect.is_empty:
            return [[] for _ in coords_list]
        holder_list = self._holder_coords(name, rect)
        holder_set = set(holder_list)
        pattern = self._owner_pattern(name, rect)
        out = []
        for coords in coords_list:
            if self.owns(name, coords, rect) or coords in holder_set:
                out.append([])
                continue
            out.append(
                self._sources_from(name, rect, coords, holder_list, pattern)
            )
        return out


# ----------------------------------------------------------------------
# Step builder: exact expanded columns + compressed representatives.
# ----------------------------------------------------------------------


@dataclass
class _Chunk:
    """One bulk emission batch (one tensor, one phase)."""

    tensor_id: int
    lo: np.ndarray  # (k, ndim)
    hi: np.ndarray
    nbytes: np.ndarray
    src_proc: np.ndarray
    dst_proc: np.ndarray
    src_gpu: np.ndarray
    dst_gpu: np.ndarray


@dataclass
class _StepBuilder:
    step: Step
    chunks: List[_Chunk] = field(default_factory=list)
    fallback: List[Copy] = field(default_factory=list)

    def finalize(self, tables: _MachineTables, tensor_ids: Dict[str, int]):
        rows = sum(c.lo.shape[0] for c in self.chunks) + len(self.fallback)
        if rows == 0:
            return
        max_nd = 0
        for c in self.chunks:
            max_nd = max(max_nd, c.lo.shape[1])
        for c in self.fallback:
            max_nd = max(max_nd, c.rect.dim)
        tid = np.empty(rows, dtype=np.int64)
        lo = np.full((rows, max_nd), -1, dtype=np.int64)
        hi = np.full((rows, max_nd), -1, dtype=np.int64)
        nbytes = np.empty(rows, dtype=np.int64)
        src_proc = np.empty(rows, dtype=np.int64)
        dst_proc = np.empty(rows, dtype=np.int64)
        src_gpu = np.empty(rows, dtype=bool)
        dst_gpu = np.empty(rows, dtype=bool)
        reduce = np.zeros(rows, dtype=bool)
        at = 0
        for c in self.chunks:
            k, nd = c.lo.shape
            sl = slice(at, at + k)
            tid[sl] = c.tensor_id
            lo[sl, :nd] = c.lo
            hi[sl, :nd] = c.hi
            nbytes[sl] = c.nbytes
            src_proc[sl] = c.src_proc
            dst_proc[sl] = c.dst_proc
            src_gpu[sl] = c.src_gpu
            dst_gpu[sl] = c.dst_gpu
            at += k
        for c in self.fallback:
            tid[at] = tensor_ids[c.tensor]
            for d, ival in enumerate(c.rect.intervals):
                lo[at, d] = ival.lo
                hi[at, d] = ival.hi
            nbytes[at] = c.nbytes
            src_proc[at] = c.src_proc.proc_id
            dst_proc[at] = c.dst_proc.proc_id
            src_gpu[at] = c.src_mem.kind is MemoryKind.GPU_FB
            dst_gpu[at] = c.dst_mem.kind is MemoryKind.GPU_FB
            reduce[at] = c.reduce
            at += 1
        # Collective groups: (reduce, tensor, rect, root endpoint).
        root = np.where(reduce, dst_proc, src_proc)
        group = fold_rows(
            np.column_stack(
                [reduce.astype(np.int64), tid, lo, hi, root]
            )
        )
        src_node = tables.node_of_proc[src_proc]
        dst_node = tables.node_of_proc[dst_proc]
        cols = CopyColumns(
            n=rows,
            nbytes=nbytes,
            src_proc=src_proc,
            dst_proc=dst_proc,
            src_node=src_node,
            dst_node=dst_node,
            inter=src_node != dst_node,
            reduce=reduce,
            gpu_resident=src_gpu | dst_gpu,
            src_gpu=src_gpu,
            dst_gpu=dst_gpu,
            group=group,
            num_groups=int(group.max()) + 1 if rows else 0,
            count=np.ones(rows, dtype=np.int64),
        )
        self.step.pin_columns(cols)


# ----------------------------------------------------------------------
# The orbit executor.
# ----------------------------------------------------------------------


class OrbitExecutor(Executor):
    """Symbolic interpreter with orbit-compressed phase execution."""

    def __init__(self, plan, check_capacity: bool = False):
        super().__init__(
            plan, materialize=False, check_capacity=check_capacity,
            batched=True,
        )
        self._mt = machine_tables(self.machine)
        self._regions: Dict[int, "_Region"] = {}
        self._builders: Dict[int, _StepBuilder] = {}
        self._tensor_ids = {
            name: i for i, name in enumerate(sorted(plan.tensors))
        }

    # -- plumbing ------------------------------------------------------

    def run(self, inputs=None) -> ExecutionResult:
        self.env = OrbitState(
            self.plan, check_capacity=self.check_capacity, tables=self._mt
        )
        self.trace = Trace()
        self.arrays = {}
        root_ctx = _Ctx(
            ctx_id=0,
            coords=tuple([0] * self.machine.dim),
            proc=self.machine.proc_at(tuple([0] * self.machine.dim)),
        )
        ctxs = [root_ctx]
        self._exec(self.plan.root, ctxs, self._make_block(ctxs))
        for builder in self._builders.values():
            builder.finalize(self._mt, self._tensor_ids)
        self.trace.memory_high_water = dict(self.env.high_water)
        return ExecutionResult(
            trace=self.trace,
            outputs={},
            memory_high_water=dict(self.env.high_water),
        )

    def _make_block(self, ctxs: List[_Ctx]) -> CtxBlock:
        block = super()._make_block(ctxs)
        self._regions[id(block)] = _Region(self, ctxs, block)
        return block

    def _builder(self, step: Step) -> _StepBuilder:
        b = self._builders.get(id(step))
        if b is None:
            b = _StepBuilder(step)
            self._builders[id(step)] = b
        return b

    def _emit_copy(self, step, name, rect, src_coords, ctx, reduce=False):
        before = len(step.copies)
        super()._emit_copy(step, name, rect, src_coords, ctx, reduce)
        if len(step.copies) > before:
            self._builder(step).fallback.append(step.copies[-1])

    # -- plan-tree interpretation --------------------------------------

    def _exec_launch(self, node: LaunchNode, ctxs: List[_Ctx]):
        from itertools import product

        new_ctxs: List[_Ctx] = []
        for ctx in ctxs:
            for point in product(*(range(e) for e in node.extents)):
                coords = list(ctx.coords)
                env = dict(ctx.env)
                for dim, var, value in zip(
                    node.machine_dims, node.vars, point
                ):
                    coords[dim] = value
                    env[var] = Interval.point(value)
                coords_t = tuple(coords)
                new_ctxs.append(
                    _Ctx(
                        ctx_id=len(new_ctxs),
                        coords=coords_t,
                        proc=self.machine.proc_at(coords_t),
                        env=env,
                    )
                )
        block = self._make_block(new_ctxs)
        held = None
        if node.comm:
            step = self.trace.new_step("task-start fetch")
            held = self._orbit_fetch(node.comm, block, step)
        self._exec(node.body, new_ctxs, block)
        if node.flush:
            step = self.trace.new_step("task-end reduction")
            for ctx in new_ctxs:
                for name in node.flush:
                    self._flush(name, ctx, step)
        if held is not None:
            self._release_held(held)

    def _exec_seq(self, node: SeqNode, ctxs, block):
        # Nested launches re-snapshot context environments, so the
        # per-context binding only matters when the body launches again.
        bind_ctx_envs = _has_launch(node.body)
        prev = None
        for iteration in range(node.extent):
            if bind_ctx_envs:
                point = Interval.point(iteration)
                for ctx in ctxs:
                    ctx.env[node.var] = point
            block.bind(node.var, iteration)
            if node.comm:
                step = self.trace.new_step(f"{node.var.name}={iteration}")
                new = self._orbit_fetch(node.comm, block, step)
                if prev is not None:
                    self._release_held(prev)
                prev = new
            self._exec(node.body, ctxs, block)
            if node.flush:
                step = self.trace.new_step(f"{node.var.name} reduction")
                for ctx in ctxs:
                    for name in node.flush:
                        self._flush(name, ctx, step)
        if prev is not None:
            self._release_held(prev)
        if bind_ctx_envs:
            for ctx in ctxs:
                ctx.env.pop(node.var, None)
        block.unbind(node.var)

    def _exec_leaf(self, node: LeafNode, ctxs, block):
        if node.comm or node.flush:
            # Leaf-level communication / flushes interleave state
            # mutation per context; the inherited batched path is the
            # exact reference for those (rare) plans.
            return super()._exec_leaf(node, ctxs, block)
        step = self.trace.current
        batch = self._leaf_work_batch(node, block)
        self._orbit_leaf(node, batch, self._regions[id(block)], step)

    # -- orbit leaf accounting -----------------------------------------

    def _orbit_leaf(self, node: LeafNode, batch, region: "_Region",
                    step: Step):
        n = region.n
        flops = np.zeros(n, dtype=np.int64)
        nbytes = np.zeros(n, dtype=np.int64)
        staged = np.zeros(n, dtype=np.int64)
        invocations = np.zeros(n, dtype=np.int64)
        for entry in batch:
            live = ~entry.empty
            flops += np.where(live, entry.flops, 0)
            nbytes += np.where(live, entry.nbytes, 0)
            staged += np.where(live, entry.staged, 0)
            invocations += live
        n_procs = self._mt.node_of_proc.size
        procs = region.proc
        agg_f = np.bincount(procs, weights=flops, minlength=n_procs)
        agg_b = np.bincount(procs, weights=nbytes, minlength=n_procs)
        agg_s = np.bincount(procs, weights=staged, minlength=n_procs)
        agg_i = np.bincount(procs, weights=invocations, minlength=n_procs)
        present = np.bincount(procs, minlength=n_procs) > 0
        pids = np.flatnonzero(present)
        rows = np.column_stack(
            [agg_f[pids], agg_b[pids], agg_s[pids], agg_i[pids]]
        ).astype(np.int64)
        keys = fold_rows(rows)
        _, first, counts = np.unique(keys, return_index=True,
                                     return_counts=True)
        for f_idx, cnt in zip(first, counts):
            pid = int(pids[f_idx])
            f = float(agg_f[pid])
            inv = int(agg_i[pid])
            work = step.work_for(self.machine.cluster.processors[pid])
            work.flops = f
            work.bytes_touched = float(agg_b[pid])
            work.staged_bytes = float(agg_s[pid])
            work.invocations = inv
            work.count = int(cnt)
            if inv > 0:
                work.kernel_flops = {node.kernel: f}
                if node.kernel is not None:
                    work.kernel = node.kernel
                work.parallel = node.parallel
        # Non-owned output writes become pending partials, exactly as
        # the scalar interpreter records them (in context order).
        out_name = self.plan.output
        flags = []
        for entry in batch:
            if entry.lhs_name != out_name:
                flags.append(None)
                continue
            if entry.lhs_ndim == 0:
                h_lo, h_hi, h_ok = region.home(self, out_name)
                not_owned = ~h_ok
            else:
                h_lo, h_hi, h_ok = region.home(self, out_name)
                covered = h_ok.copy()
                for d in range(entry.lhs_ndim):
                    covered &= h_lo[d] <= entry.lhs_los[d]
                    covered &= entry.lhs_his[d] <= h_hi[d]
                not_owned = ~covered
            flags.append(not_owned & ~entry.empty)
        if any(f is not None and f.any() for f in flags):
            members = np.zeros(region.n, dtype=bool)
            for f in flags:
                if f is not None:
                    members |= f
            for i in np.flatnonzero(members):
                ctx = region.ctxs[i]
                for entry, f in zip(batch, flags):
                    if f is not None and f[i]:
                        self.env.note_partial(
                            out_name, ctx.coords, entry.lhs_rect(i)
                        )

    # -- orbit fetch phases --------------------------------------------

    def _orbit_fetch(self, names: List[str], block: CtxBlock,
                     step: Step) -> Dict[str, np.ndarray]:
        """Resolve and commit one communication phase for all contexts.

        Returns per-tensor mirror row ids of the newly registered
        instances (the phase's *held* set, released when its
        communicate scope ends).
        """
        region = self._regions[id(block)]
        effective = [
            name
            for name in names
            if not (name == self.plan.output and not self._fetch_output)
        ]
        n_names = len(effective)
        resolved = []
        for pos, name in enumerate(effective):
            resolved.append(
                self._resolve_tensor(name, pos, n_names, region, block, step)
            )
        # Commit: register instances (pre-phase resolution is complete),
        # then charge the memory in scalar event order.
        held: Dict[str, np.ndarray] = {}
        mem_ids = []
        amounts = []
        orders = []
        for name, reg in zip(effective, resolved):
            if reg is None:
                continue
            idx, lo_rows, hi_rows, mem_rows, byte_rows, order = reg
            mirror = self.env.mirror(name)
            rows = mirror.add_rows(
                lo_rows, hi_rows, region.coords[idx], mem_rows, byte_rows
            )
            held[name] = rows
            mem_ids.append(mem_rows)
            amounts.append(byte_rows)
            orders.append(order)
        if mem_ids:
            self.env.bulk_add(
                np.concatenate(mem_ids),
                np.concatenate(amounts),
                np.concatenate(orders),
            )
        return held

    def _resolve_tensor(self, name: str, name_pos: int, n_names: int,
                        region: "_Region", block: CtxBlock, step: Step):
        """Resolve one tensor's requests for a phase (no state mutation).

        Emits copies (columnar for orbit classes, via the scalar
        fallback for multi-piece requests) and returns the registration
        batch ``(ctx rows, lo, hi, mem, bytes, order)`` to commit.
        """
        plan = self.plan
        tensor = plan.tensors[name]
        ndim = tensor.ndim
        n = region.n
        lo, hi, live = batch_bounds(
            block, self.graph, plan.accesses[name], self.full_env,
            exact=False,
        )
        if ndim == 0:
            lo = np.zeros((0, n), dtype=np.int64)
            hi = np.zeros((0, n), dtype=np.int64)
        if not live.any():
            return None
        h_lo, h_hi, h_ok = region.home(self, name)
        local = h_ok & live
        for d in range(ndim):
            local &= h_lo[d] <= lo[d]
            local &= hi[d] <= h_hi[d]
        remaining = live & ~local
        rem_idx = np.flatnonzero(remaining)
        if rem_idx.size == 0:
            return None
        req_keys_cols = np.column_stack(
            [lo[:, rem_idx].T, hi[:, rem_idx].T]
        )
        mirror = self.env._mirrors.get(name)
        inst_rows = (
            mirror.snapshot() if mirror is not None
            else np.zeros(0, dtype=np.int64)
        )
        if inst_rows.size:
            inst_cols = np.column_stack(
                [mirror.lo[inst_rows], mirror.hi[inst_rows]]
            )
            req_k, inst_k = fold_two(req_keys_cols, inst_cols)
        else:
            req_k = fold_rows(req_keys_cols)
            inst_k = np.zeros(0, dtype=np.int64)
        # Holder-locality: an instance with the same rect at the
        # requester's own coordinates.
        holder_local = np.zeros(rem_idx.size, dtype=bool)
        pair_req = np.zeros(0, dtype=np.int64)
        pair_inst = np.zeros(0, dtype=np.int64)
        if inst_k.size:
            order = np.argsort(inst_k, kind="stable")
            sk = inst_k[order]
            left = np.searchsorted(sk, req_k, side="left")
            right = np.searchsorted(sk, req_k, side="right")
            cnt = right - left
            total = int(cnt.sum())
            if total:
                pair_req = np.repeat(
                    np.arange(rem_idx.size, dtype=np.int64), cnt
                )
                starts = np.cumsum(cnt) - cnt
                rank = np.arange(total, dtype=np.int64) - np.repeat(
                    starts, cnt
                )
                pair_inst = order[np.repeat(left, cnt) + rank]
                same = np.all(
                    mirror.coords[inst_rows[pair_inst]]
                    == region.coords[rem_idx[pair_req]],
                    axis=1,
                )
                holder_local[pair_req[same]] = True
        fetch_mask = ~holder_local
        fetch_idx = rem_idx[fetch_mask]
        if fetch_idx.size == 0:
            return None
        k = fetch_idx.size
        # Renumber candidate pairs onto the fetching subset.
        new_pos = np.full(rem_idx.size, -1, dtype=np.int64)
        new_pos[fetch_mask] = np.arange(k, dtype=np.int64)
        if pair_req.size:
            keep = fetch_mask[pair_req]
            pair_req = new_pos[pair_req[keep]]
            pair_inst = pair_inst[keep]
        shape_vec = self._mt.shape
        size = self._mt.size
        big = np.iinfo(np.int64).max
        best = np.full(k, big, dtype=np.int64)
        req_coords = region.coords[fetch_idx]
        pair_key = None
        pair_coords = None
        if pair_req.size:
            pair_coords = mirror.coords[inst_rows[pair_inst]]
            delta = np.abs(pair_coords - req_coords[pair_req])
            dist = np.minimum(delta, shape_vec - delta).sum(axis=1)
            # Selection key: (distance, holder-before-owner, coords) —
            # exactly the scalar `_sources_from` ordering.
            pair_key = dist * 2 * size + pair_coords @ self._mt.strides
            np.minimum.at(best, pair_req, pair_key)
        # The single-owner candidate, via the vectorized distribution
        # arithmetic; replica dims concretize to the requester's coords.
        pat, valid = tensor.format.owner_pattern_batch(
            self.machine,
            lo[:, fetch_idx] if ndim else None,
            hi[:, fetch_idx] if ndim else None,
            tensor.shape,
            count=k,
        )
        owner_coords = np.where(pat >= 0, pat, req_coords.T % shape_vec[:, None]).T
        odelta = np.abs(owner_coords - req_coords)
        odist = np.minimum(odelta, shape_vec - odelta).sum(axis=1)
        okey = np.where(
            valid,
            (odist * 2 + 1) * size + owner_coords @ self._mt.strides,
            big,
        )
        best = np.minimum(best, okey)
        # Winners.
        src_coords = np.zeros((k, shape_vec.size), dtype=np.int64)
        have = best < big
        owner_win = valid & (okey == best)
        src_coords[owner_win] = owner_coords[owner_win]
        if pair_req.size:
            win = pair_key == best[pair_req]
            src_coords[pair_req[win]] = pair_coords[win]
        # Members with no single source: the multi-piece redistribution
        # path, resolved per member by the scalar reference machinery.
        order_base = np.int64(n_names)
        reg_idx = [fetch_idx]
        no_src = np.flatnonzero(~have)
        if no_src.size:
            for pos in no_src:
                i = int(fetch_idx[pos])
                ctx = region.ctxs[i]
                rect = _rect_from(lo[:, i], hi[:, i], ndim)
                for src, piece in self.env.resolve(name, ctx.coords, rect):
                    self._emit_copy(step, name, piece, src, ctx)
        # Columnar emission for the single-source winners.
        win_pos = np.flatnonzero(have)
        if win_pos.size:
            self._emit_bulk(
                step, name, region,
                fetch_idx[win_pos],
                lo[:, fetch_idx[win_pos]],
                hi[:, fetch_idx[win_pos]],
                src_coords[win_pos],
                tensor,
            )
        # Registration batch (all fetching members, pieces included).
        vol = np.ones(k, dtype=np.int64)
        for d in range(ndim):
            vol *= hi[d, fetch_idx] - lo[d, fetch_idx]
        byte_rows = vol * tensor.itemsize
        mem_rows = self._mt.tensor_mem_of_proc(tensor)[region.proc[fetch_idx]]
        order = fetch_idx.astype(np.int64) * order_base + name_pos
        return (
            fetch_idx,
            lo[:, fetch_idx].T.copy(),
            hi[:, fetch_idx].T.copy(),
            mem_rows,
            byte_rows,
            order,
        )

    def _emit_bulk(self, step: Step, name: str, region: "_Region",
                   dst_idx: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                   src_coords: np.ndarray, tensor):
        """Emit one phase-tensor batch: columns plus class representatives."""
        mt = self._mt
        src_lin = src_coords @ mt.strides
        src_proc = mt.proc_of_point[src_lin]
        dst_proc = region.proc[dst_idx]
        ndim = lo.shape[0]
        vol = np.ones(dst_idx.size, dtype=np.int64)
        for d in range(ndim):
            vol *= hi[d] - lo[d]
        nbytes = vol * tensor.itemsize
        keep = (src_proc != dst_proc) & (nbytes > 0)
        if not keep.any():
            return
        dst_idx = dst_idx[keep]
        lo = lo[:, keep]
        hi = hi[:, keep]
        src_coords = src_coords[keep]
        src_proc = src_proc[keep]
        dst_proc = dst_proc[keep]
        nbytes = nbytes[keep]
        # Endpoint memories as the scalar `_emit_copy` prices them: the
        # source is the instance's memory (tensor-preference-aware, via
        # `source_memory`), the destination is the receiving context's
        # processor memory (host-resident data fetched by a GPU context
        # lands in its framebuffer's accounting domain).
        src_mem = mt.tensor_mem_of_proc(tensor)[src_proc]
        dst_mem = mt.procmem_of_proc[dst_proc]
        src_gpu = mt.mem_gpu[src_mem]
        dst_gpu = mt.mem_gpu[dst_mem]
        builder = self._builder(step)
        builder.chunks.append(
            _Chunk(
                tensor_id=self._tensor_ids[name],
                lo=lo.T.copy(),
                hi=hi.T.copy(),
                nbytes=nbytes,
                src_proc=src_proc,
                dst_proc=dst_proc,
                src_gpu=src_gpu,
                dst_gpu=dst_gpu,
            )
        )
        # Orbit classes: (shape, source offset, inter/intra) — one
        # representative Copy per class, weighted by multiplicity.
        dst_coords = region.coords[dst_idx]
        offs = (src_coords - dst_coords) % mt.shape
        inter = mt.node_of_proc[src_proc] != mt.node_of_proc[dst_proc]
        class_cols = np.column_stack(
            [(hi - lo).T, offs, inter.astype(np.int64),
             nbytes]
        )
        keys = fold_rows(class_cols)
        _, first, counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        procs = self.machine.cluster.processors
        for f_idx, cnt in zip(first, counts):
            i = int(f_idx)
            rect = _rect_from(lo[:, i], hi[:, i], ndim)
            step.copies.append(
                Copy(
                    tensor=name,
                    rect=rect,
                    nbytes=int(nbytes[i]),
                    src_proc=procs[int(src_proc[i])],
                    dst_proc=procs[int(dst_proc[i])],
                    src_mem=mt.memories[int(src_mem[i])],
                    dst_mem=mt.memories[int(dst_mem[i])],
                    src_coords=tuple(int(c) for c in src_coords[i]),
                    dst_coords=tuple(int(c) for c in dst_coords[i]),
                    reduce=False,
                    count=int(cnt),
                )
            )

    def _release_held(self, held: Dict[str, np.ndarray]):
        for name, rows in held.items():
            mirror = self.env.mirror(name)
            self.env.bulk_sub(mirror.mem[rows], mirror.nbytes[rows])
            mirror.free_rows(rows)


class _Region:
    """Per-context-batch lookup tables (one plan launch region)."""

    def __init__(self, executor: OrbitExecutor, ctxs: List[_Ctx],
                 block: CtxBlock):
        self.block = block
        self.ctxs = ctxs
        self.n = len(ctxs)
        mdim = executor.machine.dim
        coords = np.empty((self.n, mdim), dtype=np.int64)
        for i, ctx in enumerate(ctxs):
            coords[i] = ctx.coords
        self.coords = coords
        mt = executor._mt
        self.proc = mt.proc_of_point[coords @ mt.strides]
        self._home: Dict[str, Tuple] = {}

    def home(self, executor: OrbitExecutor, name: str):
        """Home-rectangle endpoint columns per context (lazy, cached)."""
        cached = self._home.get(name)
        if cached is not None:
            return cached
        ndim = executor.plan.tensors[name].ndim
        h_lo = np.zeros((ndim, self.n), dtype=np.int64)
        h_hi = np.zeros((ndim, self.n), dtype=np.int64)
        h_ok = np.zeros(self.n, dtype=bool)
        for i, ctx in enumerate(self.ctxs):
            rect = executor.env.home_rect(name, ctx.coords)
            if rect is None or (ndim and rect.is_empty):
                continue
            h_ok[i] = True
            for d in range(ndim):
                h_lo[d, i] = rect.intervals[d].lo
                h_hi[d, i] = rect.intervals[d].hi
        out = (h_lo, h_hi, h_ok)
        self._home[name] = out
        return out


def _rect_from(lo: np.ndarray, hi: np.ndarray, ndim: int) -> Rect:
    return Rect(
        tuple(Interval(int(lo[d]), int(hi[d])) for d in range(ndim))
    )


def _has_launch(node: PlanNode) -> bool:
    while node is not None:
        if isinstance(node, LaunchNode):
            return True
        node = getattr(node, "body", None)
    return False
