"""Execution traces: the lockstep phase record fed to the cost model.

Execution proceeds in *steps* (bulk-synchronous phases): each sequential
``communicate`` iteration opens a step whose copies are resolved against
the instance state left by the previous step, then leaf work runs. The
cost model turns a step's copy batch into collectives (broadcasts,
shifts, reductions) and its work map into compute time.

For the cost model's vectorized hot path, each step also exposes a
**columnar** view of its copy batch (:class:`CopyColumns`): one numpy
column per field (payload bytes, endpoint processors and nodes, locality
and residency flags) plus a precomputed collective-group id per copy.
The columns are derived once per step and cached; ``step.copies`` stays
the canonical record (tests and analyses construct and append ``Copy``
objects directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.cluster import Memory, MemoryKind, Processor
from repro.util.geometry import Rect


@dataclass
class Copy:
    """One data movement: ``bytes`` of ``tensor`` from ``src`` to ``dst``.

    ``reduce`` marks reduction write-backs (the destination combines
    rather than overwrites). Copies with equal ``(tensor, rect, src)``
    within a step form a multicast; reduce copies with equal ``(tensor,
    rect, dst)`` form a reduction tree.

    ``count`` is the orbit multiplicity: the orbit-compressed executor
    records one representative copy per symmetry class, standing for
    ``count`` copies that are coordinate translations of it (same
    payload, same source offset, same inter/intra-node character).
    Ordinary execution always emits ``count == 1`` copies.
    """

    tensor: str
    rect: Rect
    nbytes: int
    src_proc: Processor
    dst_proc: Processor
    src_mem: Memory
    dst_mem: Memory
    src_coords: Tuple[int, ...] = ()
    dst_coords: Tuple[int, ...] = ()
    reduce: bool = False
    count: int = 1

    @property
    def inter_node(self) -> bool:
        return self.src_proc.node_id != self.dst_proc.node_id


@dataclass
class CopyColumns:
    """Columnar view of one step's copy batch.

    Layout (all arrays have one entry per copy, in emission order):

    * ``nbytes`` — payload sizes (int64);
    * ``src_proc``/``dst_proc`` — endpoint processor ids;
    * ``src_node``/``dst_node`` — endpoint node ids;
    * ``inter`` — True where the copy crosses nodes;
    * ``reduce`` — True for reduction write-backs;
    * ``gpu_resident`` — either endpoint memory is a GPU framebuffer
      (selects the GPU-direct NIC rate for inter-node traffic);
    * ``src_gpu``/``dst_gpu`` — per-endpoint framebuffer residency
      (selects NVLink vs PCIe vs DRAM for intra-node traffic);
    * ``group`` — collective group id: copies with equal ``(tensor,
      rect, source)`` share a multicast group, reduce copies with equal
      ``(tensor, rect, destination)`` share a reduction group;
    * ``count`` — orbit multiplicity of each row (1 everywhere for
      ordinary traces; see :class:`Copy`).
    """

    n: int
    nbytes: np.ndarray
    src_proc: np.ndarray
    dst_proc: np.ndarray
    src_node: np.ndarray
    dst_node: np.ndarray
    inter: np.ndarray
    reduce: np.ndarray
    gpu_resident: np.ndarray
    src_gpu: np.ndarray
    dst_gpu: np.ndarray
    group: np.ndarray
    num_groups: int
    count: np.ndarray = None

    def __post_init__(self):
        if self.count is None:
            self.count = np.ones(self.n, dtype=np.int64)

    @property
    def total_count(self) -> int:
        """Number of physical copies the rows stand for."""
        return int(self.count.sum())

    def expanded(self) -> "CopyColumns":
        """Unit-multiplicity view: each row repeated ``count`` times.

        The cost model's link accounting works on physical copies; rows
        carrying an orbit multiplicity are expanded before pricing so a
        compressed step and its full equivalent time out identically.
        """
        if bool(np.all(self.count == 1)):
            return self
        reps = self.count
        group = np.repeat(self.group, reps)
        return CopyColumns(
            n=int(reps.sum()),
            nbytes=np.repeat(self.nbytes, reps),
            src_proc=np.repeat(self.src_proc, reps),
            dst_proc=np.repeat(self.dst_proc, reps),
            src_node=np.repeat(self.src_node, reps),
            dst_node=np.repeat(self.dst_node, reps),
            inter=np.repeat(self.inter, reps),
            reduce=np.repeat(self.reduce, reps),
            gpu_resident=np.repeat(self.gpu_resident, reps),
            src_gpu=np.repeat(self.src_gpu, reps),
            dst_gpu=np.repeat(self.dst_gpu, reps),
            group=group,
            num_groups=self.num_groups,
            count=np.ones(group.size, dtype=np.int64),
        )

    @staticmethod
    def from_copies(copies: List["Copy"]) -> "CopyColumns":
        n = len(copies)
        count = np.empty(n, dtype=np.int64)
        nbytes = np.empty(n, dtype=np.int64)
        src_proc = np.empty(n, dtype=np.int64)
        dst_proc = np.empty(n, dtype=np.int64)
        src_node = np.empty(n, dtype=np.int64)
        dst_node = np.empty(n, dtype=np.int64)
        reduce = np.empty(n, dtype=bool)
        src_gpu = np.empty(n, dtype=bool)
        dst_gpu = np.empty(n, dtype=bool)
        group = np.empty(n, dtype=np.int64)
        group_ids: Dict[tuple, int] = {}
        for i, c in enumerate(copies):
            count[i] = c.count
            nbytes[i] = c.nbytes
            src_proc[i] = c.src_proc.proc_id
            dst_proc[i] = c.dst_proc.proc_id
            src_node[i] = c.src_proc.node_id
            dst_node[i] = c.dst_proc.node_id
            reduce[i] = c.reduce
            src_gpu[i] = c.src_mem.kind is MemoryKind.GPU_FB
            dst_gpu[i] = c.dst_mem.kind is MemoryKind.GPU_FB
            if c.reduce:
                key = (True, c.tensor, c.rect, c.dst_proc.proc_id)
            else:
                key = (False, c.tensor, c.rect, c.src_proc.proc_id)
            gid = group_ids.get(key)
            if gid is None:
                gid = len(group_ids)
                group_ids[key] = gid
            group[i] = gid
        return CopyColumns(
            n=n,
            nbytes=nbytes,
            src_proc=src_proc,
            dst_proc=dst_proc,
            src_node=src_node,
            dst_node=dst_node,
            inter=src_node != dst_node,
            reduce=reduce,
            gpu_resident=src_gpu | dst_gpu,
            src_gpu=src_gpu,
            dst_gpu=dst_gpu,
            group=group,
            num_groups=len(group_ids),
            count=count,
        )


@dataclass
class Work:
    """Leaf compute accumulated on one processor within a step.

    Flops are tracked **per leaf kernel** (``kernel_flops``): one step
    can run several leaves on one processor (multi-statement leaf
    blocks, over-decomposition), and each kernel has its own efficiency.
    The seed accumulated a single flop total and priced it all at the
    *last* kernel's efficiency — the mixed-kernel clobbering bug.
    ``kernel`` remains the most recent non-None kernel name for
    analyses that just want a label.

    ``count`` is the orbit multiplicity: the orbit-compressed executor
    stores one entry per class of processors with identical timelines,
    standing for ``count`` processors. Aggregates (total flops, bytes)
    weight by it; per-processor maxima are unaffected because every
    member of the class has the same timeline.
    """

    flops: float = 0.0
    bytes_touched: float = 0.0
    # Bytes that must cross PCIe because the data lives in host memory
    # while the leaf runs on a GPU (out-of-core execution).
    staged_bytes: float = 0.0
    kernel: Optional[str] = None
    parallel: bool = False
    invocations: int = 0
    kernel_flops: Dict[Optional[str], float] = field(default_factory=dict)
    count: int = 1

    def add(
        self,
        flops: float,
        bytes_touched: float,
        kernel: Optional[str],
        parallel: bool,
        staged_bytes: float = 0.0,
    ):
        self.flops += flops
        self.bytes_touched += bytes_touched
        self.staged_bytes += staged_bytes
        self.kernel_flops[kernel] = self.kernel_flops.get(kernel, 0.0) + flops
        if kernel is not None:
            self.kernel = kernel
        self.parallel = self.parallel or parallel
        self.invocations += 1


@dataclass
class Step:
    """One lockstep phase: a copy batch followed by leaf work."""

    label: str
    copies: List[Copy] = field(default_factory=list)
    work: Dict[int, Work] = field(default_factory=dict)

    def __post_init__(self):
        self._columns: Optional[CopyColumns] = None
        self._columns_pinned = False

    def work_for(self, proc: Processor) -> Work:
        if proc.proc_id not in self.work:
            self.work[proc.proc_id] = Work()
        return self.work[proc.proc_id]

    def pin_columns(self, columns: CopyColumns):
        """Install a precomputed columnar view (orbit-compressed steps).

        The orbit executor keeps ``copies`` as class representatives
        (with multiplicities) but builds the exact expanded columns
        directly in numpy; pinning stops :meth:`columns` from rebuilding
        the view from the compressed list.
        """
        self._columns = columns
        self._columns_pinned = True

    def columns(self) -> CopyColumns:
        """The columnar copy view, built on first use and cached.

        Invalidated by length: steps are append-only during execution,
        and the cost model reads them only after the step is complete.
        """
        if self._columns_pinned:
            return self._columns
        if self._columns is None or self._columns.n != len(self.copies):
            self._columns = CopyColumns.from_copies(self.copies)
        return self._columns

    @property
    def total_copy_bytes(self) -> int:
        return sum(c.nbytes * c.count for c in self.copies)

    @property
    def inter_node_bytes(self) -> int:
        return sum(c.nbytes * c.count for c in self.copies if c.inter_node)

    @property
    def total_flops(self) -> float:
        return sum(w.flops * w.count for w in self.work.values())


@dataclass
class Trace:
    """The full phase record of one kernel execution.

    ``step_hook`` (when set) observes every phase boundary: it is called
    with ``(index, label)`` *before* step ``index`` is created, which is
    how fault injection interrupts an execution exactly between phases
    — the hook raises, and the trace holds precisely the completed
    steps (see :mod:`repro.faults.events`).
    """

    steps: List[Step] = field(default_factory=list)
    memory_high_water: Dict[str, int] = field(default_factory=dict)
    step_hook: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def new_step(self, label: str) -> Step:
        if self.step_hook is not None:
            self.step_hook(len(self.steps), label)
        step = Step(label=label)
        self.steps.append(step)
        return step

    @property
    def current(self) -> Step:
        if not self.steps:
            return self.new_step("start")
        return self.steps[-1]

    # ------------------------------------------------------------------
    # Aggregate statistics (used heavily by tests).
    # ------------------------------------------------------------------

    @property
    def total_copy_bytes(self) -> int:
        return sum(s.total_copy_bytes for s in self.steps)

    @property
    def inter_node_bytes(self) -> int:
        return sum(s.inter_node_bytes for s in self.steps)

    @property
    def total_flops(self) -> float:
        return sum(s.total_flops for s in self.steps)

    @property
    def copies(self) -> List[Copy]:
        return [c for s in self.steps for c in s.copies]
