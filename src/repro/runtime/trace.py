"""Execution traces: the lockstep phase record fed to the cost model.

Execution proceeds in *steps* (bulk-synchronous phases): each sequential
``communicate`` iteration opens a step whose copies are resolved against
the instance state left by the previous step, then leaf work runs. The
cost model turns a step's copy batch into collectives (broadcasts,
shifts, reductions) and its work map into compute time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.cluster import Memory, Processor
from repro.util.geometry import Rect


@dataclass
class Copy:
    """One data movement: ``bytes`` of ``tensor`` from ``src`` to ``dst``.

    ``reduce`` marks reduction write-backs (the destination combines
    rather than overwrites). Copies with equal ``(tensor, rect, src)``
    within a step form a multicast; reduce copies with equal ``(tensor,
    rect, dst)`` form a reduction tree.
    """

    tensor: str
    rect: Rect
    nbytes: int
    src_proc: Processor
    dst_proc: Processor
    src_mem: Memory
    dst_mem: Memory
    src_coords: Tuple[int, ...] = ()
    dst_coords: Tuple[int, ...] = ()
    reduce: bool = False

    @property
    def inter_node(self) -> bool:
        return self.src_proc.node_id != self.dst_proc.node_id


@dataclass
class Work:
    """Leaf compute accumulated on one processor within a step."""

    flops: float = 0.0
    bytes_touched: float = 0.0
    # Bytes that must cross PCIe because the data lives in host memory
    # while the leaf runs on a GPU (out-of-core execution).
    staged_bytes: float = 0.0
    kernel: Optional[str] = None
    parallel: bool = False
    invocations: int = 0

    def add(
        self,
        flops: float,
        bytes_touched: float,
        kernel: Optional[str],
        parallel: bool,
        staged_bytes: float = 0.0,
    ):
        self.flops += flops
        self.bytes_touched += bytes_touched
        self.staged_bytes += staged_bytes
        if kernel is not None:
            self.kernel = kernel
        self.parallel = self.parallel or parallel
        self.invocations += 1


@dataclass
class Step:
    """One lockstep phase: a copy batch followed by leaf work."""

    label: str
    copies: List[Copy] = field(default_factory=list)
    work: Dict[int, Work] = field(default_factory=dict)

    def work_for(self, proc: Processor) -> Work:
        if proc.proc_id not in self.work:
            self.work[proc.proc_id] = Work()
        return self.work[proc.proc_id]

    @property
    def total_copy_bytes(self) -> int:
        return sum(c.nbytes for c in self.copies)

    @property
    def inter_node_bytes(self) -> int:
        return sum(c.nbytes for c in self.copies if c.inter_node)

    @property
    def total_flops(self) -> float:
        return sum(w.flops for w in self.work.values())


@dataclass
class Trace:
    """The full phase record of one kernel execution."""

    steps: List[Step] = field(default_factory=list)
    memory_high_water: Dict[str, int] = field(default_factory=dict)

    def new_step(self, label: str) -> Step:
        step = Step(label=label)
        self.steps.append(step)
        return step

    @property
    def current(self) -> Step:
        if not self.steps:
            return self.new_step("start")
        return self.steps[-1]

    # ------------------------------------------------------------------
    # Aggregate statistics (used heavily by tests).
    # ------------------------------------------------------------------

    @property
    def total_copy_bytes(self) -> int:
        return sum(s.total_copy_bytes for s in self.steps)

    @property
    def inter_node_bytes(self) -> int:
        return sum(s.inter_node_bytes for s in self.steps)

    @property
    def total_flops(self) -> float:
        return sum(s.total_flops for s in self.steps)

    @property
    def copies(self) -> List[Copy]:
        return [c for s in self.steps for c in s.copies]
