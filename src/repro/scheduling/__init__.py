"""The scheduling language (Sections 2, 3.3 and 5.2).

A :class:`Schedule` wraps a tensor index notation assignment, lowers it to
concrete index notation, and applies transformations as rewrite rules:
``split``, ``divide``, ``collapse``, ``reorder``, ``precompute``,
``parallelize``, ``substitute`` from prior work, and the paper's three new
distributed primitives ``distribute``, ``communicate`` and ``rotate``.
"""

from repro.scheduling.schedule import Schedule

__all__ = ["Schedule"]
