"""The fluent scheduling API and its rewrite rules.

Every command both rewrites the concrete-index-notation loop tree and
records a relation in the provenance graph, exactly the split the paper
describes in Section 5.2: the tree fixes loop structure and tags, the
``s.t.`` relations let later passes reconstruct bounds.

A deliberate property carried over from the paper: schedules affect only
*performance*, never correctness. The runtime inserts whatever
communication the schedule did not aggregate; ``communicate`` and
``rotate`` only reshape the traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.ir.concrete import Assign, Forall, Sequence as SeqStmt, Stmt
from repro.ir.expr import Access, Expr, IndexVar
from repro.ir.lower_tin import lower_to_concrete
from repro.ir.provenance import VarGraph
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.grid import Grid
from repro.util.errors import ScheduleError

TensorsLike = Union[TensorVar, str, Sequence[Union[TensorVar, str]]]


class Schedule:
    """A schedule under construction for one assignment.

    Obtained from :meth:`repro.core.kernel.schedule` or directly; every
    command returns ``self`` so schedules chain like Figure 2's.
    """

    def __init__(self, assignment: Assignment):
        self.assignment = assignment
        stmt, graph = lower_to_concrete(assignment)
        self.stmt: Stmt = stmt
        self.graph: VarGraph = graph
        self.log: List[str] = []
        self._communicated: Dict[str, IndexVar] = {}

    # ------------------------------------------------------------------
    # Loop-structure helpers.
    # ------------------------------------------------------------------

    def loop_vars(self) -> List[IndexVar]:
        """Current loop order, outermost first."""
        return [f.var for f in self.stmt.foralls()]

    def _forall(self, var: IndexVar) -> Forall:
        for forall in self.stmt.foralls():
            if forall.var == var:
                return forall
        raise ScheduleError(f"no loop over {var} in the current schedule")

    def _chain(self) -> List[Forall]:
        return self.stmt.foralls()

    def _rebuild(self, foralls: List[Forall], innermost_body: Stmt) -> Stmt:
        body = innermost_body
        for forall in reversed(foralls):
            forall.body = body
            body = forall
        return body

    def _innermost_body(self) -> Stmt:
        chain = self._chain()
        if not chain:
            return self.stmt
        return chain[-1].body

    # ------------------------------------------------------------------
    # Classic transformations (split / divide / collapse / reorder ...).
    # ------------------------------------------------------------------

    def split(
        self,
        var: IndexVar,
        outer: IndexVar,
        inner: IndexVar,
        chunk: int,
    ) -> "Schedule":
        """Break ``var`` into chunks of size ``chunk`` (SUMMA's k loop)."""
        rel = self.graph.add_split(var, outer, inner, chunk)
        self._replace_with_pair(var, rel.outer, rel.inner, f"split({var},{chunk})")
        self.log.append(f"split({var}, {outer}, {inner}, {chunk})")
        return self

    def divide(
        self,
        var: IndexVar,
        outer: IndexVar,
        inner: IndexVar,
        parts: int,
    ) -> "Schedule":
        """Break ``var`` into ``parts`` equal pieces (outer extent fixed)."""
        rel = self.graph.add_divide(var, outer, inner, parts)
        self._replace_with_pair(var, rel.outer, rel.inner, f"divide({var},{parts})")
        self.log.append(f"divide({var}, {outer}, {inner}, {parts})")
        return self

    def _replace_with_pair(
        self, var: IndexVar, outer: IndexVar, inner: IndexVar, clause: str
    ):
        target = self._forall(var)
        inner_forall = Forall(var=inner, body=target.body)
        target.var = outer
        target.body = inner_forall
        target.relations.append(clause)

    def collapse(
        self, first: IndexVar, second: IndexVar, fused: IndexVar
    ) -> "Schedule":
        """Fuse two *directly nested* loops into one."""
        outer = self._forall(first)
        if not isinstance(outer.body, Forall) or outer.body.var != second:
            raise ScheduleError(
                f"collapse needs {second} directly nested inside {first}"
            )
        inner = outer.body
        self.graph.add_fuse(first, second, fused)
        outer.var = fused
        outer.body = inner.body
        outer.relations.append(f"collapse({first},{second})")
        outer.communicated.extend(inner.communicated)
        self.log.append(f"collapse({first}, {second}, {fused})")
        return self

    def reorder(self, order: Sequence[IndexVar]) -> "Schedule":
        """Permute a contiguous segment of the loop nest into ``order``.

        The named variables must currently occupy consecutive nesting
        levels (all dense loops commute, so any permutation is legal).
        """
        order = list(order)
        chain = self._chain()
        positions = []
        by_var = {f.var: (i, f) for i, f in enumerate(chain)}
        for var in order:
            if var not in by_var:
                raise ScheduleError(f"reorder names unknown loop {var}")
            positions.append(by_var[var][0])
        lo, hi = min(positions), max(positions)
        if sorted(positions) != list(range(lo, hi + 1)):
            raise ScheduleError(
                f"reorder of {order} does not name a contiguous loop segment "
                f"(current order: {self.loop_vars()})"
            )
        segment_tail_body = chain[hi].body
        new_segment = [by_var[var][1] for var in order]
        rebuilt = self._rebuild(new_segment, segment_tail_body)
        if lo == 0:
            self.stmt = rebuilt
        else:
            chain[lo - 1].body = rebuilt
        self.log.append(f"reorder({', '.join(v.name for v in order)})")
        return self

    def parallelize(self, var: IndexVar) -> "Schedule":
        """Mark a loop's iterations as locally parallel (threads / CUDA).

        A single-processor optimization: it tags the loop for the leaf
        cost model but does not change distribution.
        """
        forall = self._forall(var)
        forall.parallelized = True
        forall.relations.append(f"parallelize({var})")
        self.log.append(f"parallelize({var})")
        return self

    def precompute(
        self,
        sub_expr: Expr,
        workspace: TensorVar,
        ws_indices: Sequence[IndexVar],
    ) -> "Schedule":
        """Hoist ``sub_expr`` into a workspace at the leaf.

        The assignment's right-hand side is rewritten to read the
        workspace; the leaf evaluates the workspace first (workspace
        variant of Kjolstad et al. 2019, applied at leaf granularity).
        """
        chain = self._chain()
        leaf = chain[-1].body if chain else self.stmt
        if not isinstance(leaf, Assign):
            raise ScheduleError("precompute applies before other leaf rewrites")
        ws_access = Access(workspace, tuple(ws_indices))
        producer = Assign(lhs=ws_access, rhs=sub_expr, reduce=False)
        consumer = Assign(
            lhs=leaf.lhs,
            rhs=_replace_subexpr(leaf.rhs, sub_expr, ws_access),
            reduce=leaf.reduce,
        )
        new_leaf = SeqStmt([producer, consumer])
        if chain:
            chain[-1].body = new_leaf
        else:
            self.stmt = new_leaf
        self.log.append(f"precompute(-> {workspace.name})")
        return self

    # ------------------------------------------------------------------
    # The paper's distributed primitives.
    # ------------------------------------------------------------------

    def distribute(
        self,
        targets: Union[IndexVar, Sequence[IndexVar]],
        dist: Optional[Sequence[IndexVar]] = None,
        local: Optional[Sequence[IndexVar]] = None,
        onto: Optional[Grid] = None,
        level: int = 0,
    ) -> "Schedule":
        """Distribute loops over a machine grid.

        Two forms, as in the paper:

        * ``distribute(io)`` / ``distribute([io, jo])`` — mark existing
          loops as distributed (Section 5.2's relation tag).
        * ``distribute([i, j], [io, jo], [ii, ji], Grid(gx, gy))`` — the
          compound command of Section 3.3: divide each target by the
          corresponding grid dimension, reorder the divided pairs outward,
          and distribute the outer variables.

        ``level`` selects the machine grid level for hierarchical machines
        (e.g. level 0 = nodes, level 1 = GPUs within a node).
        """
        if isinstance(targets, IndexVar):
            targets = [targets]
        targets = list(targets)
        if dist is None:
            for var in targets:
                forall = self._forall(var)
                forall.distributed = True
                forall.machine_level = level
            self.log.append(
                f"distribute({', '.join(v.name for v in targets)}, level={level})"
            )
            return self
        if local is None or onto is None:
            raise ScheduleError(
                "compound distribute needs dist, local and an onto Grid"
            )
        if not (len(targets) == len(dist) == len(local) == onto.dim):
            raise ScheduleError(
                "compound distribute needs one dist/local variable per "
                "target and a grid of matching dimension"
            )
        for target, d, l, extent in zip(targets, dist, local, onto.shape):
            self.divide(target, d, l, extent)
        self.reorder(list(dist) + list(local))
        return self.distribute(list(dist), level=level)

    def communicate(
        self, tensors: TensorsLike, var: IndexVar
    ) -> "Schedule":
        """Aggregate a tensor's communication at loop ``var``.

        ``communicate(T, i)`` materializes, at each iteration of ``i``, the
        data of ``T`` needed by all iteration-space points nested below
        (Section 3.3). Purely a performance directive.
        """
        forall = self._forall(var)
        for tensor in _tensor_names(tensors):
            if tensor in self._communicated:
                prev = self._communicated[tensor]
                raise ScheduleError(
                    f"tensor {tensor} already communicated at {prev}"
                )
            known = {t.name for t in self.assignment.tensors()}
            if tensor not in known:
                raise ScheduleError(
                    f"communicate names unknown tensor {tensor!r}"
                )
            self._communicated[tensor] = var
            forall.communicated.append(tensor)
        self.log.append(f"communicate({tensors}, {var})")
        return self

    def rotate(
        self,
        target: IndexVar,
        sources: Sequence[IndexVar],
        result: IndexVar,
    ) -> "Schedule":
        """Rotate ``target``'s iterations by the sum of ``sources``.

        The symmetry-breaking command behind systolic algorithms: the loop
        over ``target`` is replaced by ``result``, and the original value
        is reconstructed as ``(result + sum(sources)) mod extent(target)``
        (Section 5.2). With ``sources`` the distributed grid coordinates,
        every processor touches a different chunk at every time step
        (Figure 12).
        """
        forall = self._forall(target)
        self.graph.add_rotate(target, sources, result)
        forall.var = result
        forall.relations.append(
            f"rotate({target}, {{{', '.join(s.name for s in sources)}}})"
        )
        self.log.append(
            f"rotate({target}, {[s.name for s in sources]}, {result})"
        )
        return self

    def substitute(
        self, vars: Sequence[IndexVar], kernel: str
    ) -> "Schedule":
        """Replace the innermost loops with an optimized leaf kernel.

        The named variables must be exactly the innermost loop nest; the
        cost model then charges the leaf at that kernel's efficiency
        (e.g. ``"cublas_gemm"``) instead of naive loops.
        """
        chain = self._chain()
        tail = chain[-len(vars):] if vars else []
        tail_vars = {f.var for f in tail}
        if tail_vars != set(vars) or len(tail) != len(vars):
            raise ScheduleError(
                f"substitute needs the innermost loops; current order is "
                f"{self.loop_vars()}, asked for {list(vars)}"
            )
        tail[0].substituted = kernel
        self.log.append(
            f"substitute({[v.name for v in vars]}, {kernel})"
        )
        return self

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def communicated_at(self) -> Dict[str, IndexVar]:
        """Tensor name -> loop variable of its communicate command."""
        return dict(self._communicated)

    def pretty(self) -> str:
        """The scheduled concrete index notation, for humans and tests."""
        return self.stmt.pretty()

    def __repr__(self) -> str:
        return f"Schedule({self.assignment!r}; {len(self.log)} commands)"


def _tensor_names(tensors: TensorsLike) -> List[str]:
    if isinstance(tensors, (TensorVar, str)):
        tensors = [tensors]
    names = []
    for t in tensors:
        names.append(t.name if isinstance(t, TensorVar) else str(t))
    return names


def _replace_subexpr(expr: Expr, old: Expr, new: Expr) -> Expr:
    """Structurally replace one occurrence of ``old`` inside ``expr``."""
    from repro.ir.expr import Add, Mul

    if expr is old:
        return new
    if isinstance(expr, (Add, Mul)):
        lhs = _replace_subexpr(expr.lhs, old, new)
        if lhs is not expr.lhs:
            return type(expr)(lhs, expr.rhs)
        rhs = _replace_subexpr(expr.rhs, old, new)
        if rhs is not expr.rhs:
            return type(expr)(expr.lhs, rhs)
    return expr
