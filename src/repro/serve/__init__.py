"""The schedule-serving layer: ``python -m repro.serve``.

A long-running daemon that answers the paper's central query — the
best distributed schedule for (einsum, shapes, dtype, machine) — from
a sharded tuning ledger: exact hits from an in-memory index in
microseconds, misses batched and fork-dispatched to the tuning oracle,
warm-started from the nearest tuned neighbor. See ``docs/serving.md``.

Public surface:

* :class:`repro.serve.daemon.ScheduleServer` — the asyncio daemon;
* :class:`repro.serve.client.ScheduleClient` — the blocking client;
* :class:`repro.serve.shard.ShardedLedger` /
  :func:`repro.serve.shard.open_ledger` /
  :func:`repro.serve.shard.migrate_single_file` — the sharded ledger;
* canonical request/answer types live in :mod:`repro.api`.
"""

from repro.serve.shard import (  # noqa: F401
    ShardedLedger,
    migrate_single_file,
    open_ledger,
)

__all__ = ["ShardedLedger", "migrate_single_file", "open_ledger"]
