"""Command-line schedule serving: ``python -m repro.serve``.

Usage::

    python -m repro.serve --ledger DIR [--socket PATH | --port N]
        [--jobs 2] [--shards 8] [--no-warm] [--timeout SECONDS]
        [--max-pending 64] [--line-limit BYTES]
    python -m repro.serve --ledger DIR --migrate OLD_LEDGER.json
    python -m repro.serve --smoke [--json]
    python -m repro.serve --chaos [--seed N] [--json]

Default mode runs the daemon over the sharded ledger rooted at
``--ledger`` until a client sends ``shutdown`` (or SIGINT/SIGTERM,
both of which drain gracefully: no new tunes admitted, in-flight ones
finished, waiters answered). A unix socket (``--socket``) is
preferred; without one the daemon binds localhost TCP.

``--migrate`` reshards an existing single-file tuning ledger into the
``--ledger`` directory and exits (the source file is left untouched).

``--smoke`` is the CI serve-smoke job: it starts a daemon on a
temporary unix socket, replays a canned mixed hit/miss/warm trace
with the client, and exits non-zero unless

* hit answers are byte-identical to offline ``Kernel.tune`` answers
  for the same request (canonical payload comparison);
* a warm-started miss executed strictly fewer oracle simulations than
  the cold tune of the same request;
* concurrent identical misses were deduplicated in flight;
* a pipelined hit burst completed while a cold tune was still
  running (the hit path never blocks on tuning);
* the ``serve.*`` counters account for all of the above.

``--chaos`` is the CI chaos-smoke job: a seeded
:class:`repro.faults.chaos.ChaosPlan` (worker kills, a poison request,
dropped connections, torn and oversized frames, one daemon restart
mid-burst) replayed against a temporary daemon. It exits non-zero
unless every healthy request's final answer is byte-identical to the
offline tune, the poison request was quarantined at the crash cap, and
the client recovered every injected failure. The JSON payload includes
``answers_digest`` — equal seeds must produce equal digests, which is
what the CI job asserts by running the scenario twice.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path

from repro import cli
from repro.serve import protocol


def _run_daemon(args) -> int:
    import asyncio

    from repro.serve.daemon import ScheduleServer

    server = ScheduleServer(
        Path(args.ledger),
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        tune_jobs=args.jobs,
        warm_start=not args.no_warm,
        timeout_s=args.timeout,
        shards=args.shards,
        max_pending=args.max_pending,
        quarantine_after=args.quarantine_after,
        worker_retries=args.worker_retries,
        line_limit=args.line_limit,
    )
    where = args.socket or f"{args.host}:{args.port}"
    print(
        f"serving schedules from {server.ledger.path} "
        f"({server.ledger.shards} shards, {len(server.index)} cached "
        f"answers) on {where}"
    )
    try:
        asyncio.run(server.serve_until_stopped())
    except KeyboardInterrupt:
        pass
    return 0


def _run_migrate(args) -> int:
    from repro.serve.shard import migrate_single_file

    source = Path(args.migrate)
    if not source.exists():
        print(f"no such ledger: {source}", file=sys.stderr)
        return 1
    sharded = migrate_single_file(
        source, Path(args.ledger), shards=args.shards or 8
    )
    entries = len(sharded)
    answers = sum(1 for _ in sharded.answers())
    payload = {
        "migrated_from": str(source),
        "root": str(sharded.path),
        "shards": sharded.shards,
        "entries": entries,
        "answers": answers,
    }
    if not cli.emit(args, payload):
        print(
            f"migrated {entries} entries and {answers} answers from "
            f"{source} into {sharded.path} ({sharded.shards} shards)"
        )
    if sharded.save_failures:
        print(
            f"migration could not write {sharded.path}", file=sys.stderr
        )
        return 1
    return 0


def _canon(answer_record) -> str:
    from repro.api import ScheduleAnswer, canonical_json

    return canonical_json(
        ScheduleAnswer.from_record(answer_record).canonical_record()
    )


def _run_smoke(args) -> int:
    """The CI serve-smoke trace (see the module docstring)."""
    import tempfile

    from repro.api import ScheduleRequest, tune_request
    from repro.machine.cluster import Cluster
    from repro.serve.client import ScheduleClient
    from repro.serve.daemon import ScheduleServer, start_background
    from repro.tuner.workloads import sized

    failures = []
    cold = ScheduleRequest.from_assignment(
        sized("matmul", 256), Cluster.cpu_cluster(1)
    )
    warm = ScheduleRequest.from_assignment(
        sized("matmul", 512), Cluster.cpu_cluster(2)
    )
    burst_tune = ScheduleRequest.from_assignment(
        sized("ttm", 128), Cluster.cpu_cluster(2)
    )

    # Offline ground truth, through the same unified API the daemon
    # uses: the hit answer must be byte-identical to this, and the
    # warm-started tune strictly cheaper than this cold one.
    offline_cold = tune_request(cold)
    offline_warm_as_cold = tune_request(warm)

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        sock = str(Path(tmp) / "serve.sock")
        server = ScheduleServer(
            Path(tmp) / "ledger",
            socket_path=sock,
            tune_jobs=args.jobs,
            timeout_s=args.timeout,
        )
        handle = start_background(server)
        try:
            with ScheduleClient(socket_path=sock, timeout=600.0) as c:
                if not c.ping():
                    failures.append("ping failed")

                # Miss -> cold tune.
                first = c.schedule(cold)
                if first.get("provenance") != "tuned":
                    failures.append(
                        f"first query should tune, got {first}"
                    )

                # In-flight dedup: identical misses share one tune.
                c.schedule(warm, wait=False)
                c.schedule(warm, wait=False)
                warmed = c.schedule(warm)  # joins the in-flight tune
                if warmed.get("status") != "ok":
                    failures.append(f"warm query failed: {warmed}")

                # Hit burst while a cold tune is in flight.
                c.schedule(burst_tune, wait=False)
                burst = 200
                start = time.monotonic()
                responses = c.schedule_batch([cold] * burst)
                wall = time.monotonic() - start
                hit_rate = burst / wall if wall > 0 else float("inf")
                bad = [
                    r for r in responses
                    if r.get("provenance") != "hit"
                    or r.get("status") != "ok"
                ]
                if bad:
                    failures.append(
                        f"{len(bad)}/{burst} burst queries were not "
                        f"clean hits (first: {bad[0]})"
                    )
                hit_answer = responses[0].get("answer", {})

                # Drain the background tune before stopping.
                finished = c.schedule(burst_tune)
                if finished.get("status") != "ok":
                    failures.append(
                        f"background tune failed: {finished}"
                    )
                stats = c.stats()
        finally:
            handle.stop()

    # Byte-identity: served hit vs offline Kernel.tune-path answer.
    if _canon(hit_answer) != _canon(offline_cold.answer.to_record()):
        failures.append(
            "hit answer is not byte-identical to the offline tune:\n"
            f"  served:  {_canon(hit_answer)}\n"
            f"  offline: {_canon(offline_cold.answer.to_record())}"
        )

    # Transfer warm-starting: strictly fewer simulations than cold.
    warm_answer = warmed.get("answer", {})
    cold_evals = offline_warm_as_cold.search.evaluations
    warm_evals = warm_answer.get("evaluations", cold_evals)
    if warm_answer.get("provenance") != "warm-started":
        failures.append(
            f"expected a warm-started tune, got "
            f"{warm_answer.get('provenance')!r}"
        )
    elif not warm_evals < cold_evals:
        failures.append(
            f"warm-started tune ran {warm_evals} simulations, cold "
            f"ran {cold_evals}: not strictly fewer"
        )

    counters = stats.get("counters", {})
    for name, floor in (
        ("serve.hits", 200),
        ("serve.misses", 3),
        ("serve.deduped", 1),
        ("serve.tunes", 3),
        ("serve.warm_started", 1),
    ):
        if counters.get(name, 0) < floor:
            failures.append(
                f"counter {name} = {counters.get(name, 0)}, "
                f"expected >= {floor}"
            )
    if counters.get("serve.errors", 0):
        failures.append(
            f"serve.errors = {counters['serve.errors']} during smoke"
        )

    payload = {
        "failures": failures,
        "hit_qps": round(hit_rate, 1),
        "warm_evaluations": warm_evals,
        "cold_evaluations": cold_evals,
        "counters": counters,
    }
    if not cli.emit(args, payload):
        print(
            f"smoke: {200} pipelined hits at ~{hit_qps_text(hit_rate)} "
            f"during a live tune; warm {warm_evals} vs cold "
            f"{cold_evals} simulations"
        )
        for name, value in sorted(counters.items()):
            print(f"  {name} = {value}")
        cli.print_metrics()
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    if not failures and not args.json:
        print("serve smoke OK: hits byte-identical, warm tune cheaper")
    return 1 if failures else 0


def hit_qps_text(rate: float) -> str:
    return f"{rate:,.0f} QPS"


def _run_chaos(args) -> int:
    """The CI chaos-smoke scenario (see the module docstring)."""
    import hashlib
    import tempfile

    from repro.api import (
        QUARANTINED,
        ScheduleRequest,
        canonical_json,
        tune_request,
    )
    from repro.faults.chaos import ChaosController, ChaosPlan, PoisonRequest
    from repro.machine.cluster import Cluster
    from repro.serve.client import ScheduleClient
    from repro.serve.daemon import ScheduleServer, start_background
    from repro.tuner.workloads import sized

    failures = []
    seed = args.seed
    healthy = [
        ScheduleRequest.from_assignment(
            sized("matmul", size), Cluster.cpu_cluster(1)
        )
        for size in (48, 64, 96)
    ]
    poison = ScheduleRequest.from_assignment(
        sized("matmul", 80), Cluster.cpu_cluster(1)
    )
    poison_fp = poison.fingerprint()

    # Offline ground truth through the same unified engine.
    offline = {
        r.fingerprint(): _canon(tune_request(r).answer.to_record())
        for r in healthy
    }

    rounds = 4
    operations = rounds * len(healthy) + 4
    # kills=1 with worker_retries=1 and quarantine_after=2: a sampled
    # kill costs a healthy request one retry, never a quarantine; only
    # the poison request (crashes every attempt) reaches the cap.
    plan = ChaosPlan.sample(
        seed,
        operations=operations,
        dispatches=4,
        kills=1,
        drops=2,
        torn=1,
        oversized=1,
        restart=True,
    ).with_events(PoisonRequest(poison_fp))
    restart_after = plan.restart_after() or (operations // 2)
    controller = ChaosController(plan)

    quarantine_after = 2

    def new_server(tmp):
        return ScheduleServer(
            Path(tmp) / "ledger",
            socket_path=str(Path(tmp) / "serve.sock"),
            tune_jobs=args.jobs,
            timeout_s=args.timeout,
            worker_retries=1,
            quarantine_after=quarantine_after,
            retry_backoff_s=0.01,
            chaos=controller,
        )

    answers = {}
    poison_responses = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        server = new_server(tmp)
        handle = start_background(server)
        client = ScheduleClient(
            socket_path=server.socket_path,
            timeout=120.0,
            retries=8,
            backoff_s=0.05,
            chaos=controller,
        )
        try:
            # Fire-and-forget one request now; poll it after the
            # restart (the rebuilt shard index must serve it).
            pending_fp = healthy[0].fingerprint()
            client.schedule(healthy[0], wait=False)

            sequence = [
                healthy[i % len(healthy)] for i in range(operations - 2)
            ]
            sequence.insert(2, poison)
            completed = 0
            restarted = False
            for request in sequence:
                fp = request.fingerprint()
                response = client.schedule(request, deadline_s=120.0)
                completed += 1
                if fp == poison_fp:
                    poison_responses.append(response)
                elif response.get("status") == "ok":
                    answers[fp] = _canon(response["answer"])
                else:
                    failures.append(
                        f"healthy request {fp} failed: {response}"
                    )
                if not restarted and completed >= restart_after:
                    restarted = True
                    handle.stop()
                    server = new_server(tmp)
                    handle = start_background(server)

            if not restarted:
                handle.stop()
                server = new_server(tmp)
                handle = start_background(server)

            polled = client.poll(pending_fp)
            if polled.get("status") != "ok":
                failures.append(
                    f"poll after restart failed: {polled}"
                )
            elif _canon(polled["answer"]) != offline[pending_fp]:
                failures.append(
                    "polled answer diverged from the offline tune"
                )
            stats = client.stats()
        finally:
            client.close()
            handle.stop()

    for fp, canon in answers.items():
        if canon != offline[fp]:
            failures.append(
                f"served answer for {fp} is not byte-identical to "
                f"the offline tune"
            )
    missing = set(offline) - set(answers)
    if missing:
        failures.append(f"no final answer for {sorted(missing)}")

    quarantined = [
        r for r in poison_responses
        if r.get("provenance") == QUARANTINED
    ]
    if not quarantined:
        failures.append(
            f"poison request was never quarantined: {poison_responses}"
        )

    counters = stats.get("counters", {})
    if counters.get("serve.crashes", 0) < quarantine_after:
        failures.append(
            f"expected >= {quarantine_after} detected worker crashes, "
            f"saw {counters.get('serve.crashes', 0)}"
        )
    if counters.get("serve.quarantined", 0) < 1:
        failures.append("serve.quarantined never incremented")
    if counters.get("serve.reconnects", 0) < 1:
        failures.append(
            "client never reconnected despite injected drops"
        )

    digest = hashlib.sha256(
        canonical_json(
            {fp: answers[fp] for fp in sorted(answers)}
        ).encode()
    ).hexdigest()
    payload = {
        "seed": seed,
        "plan": plan.encode(),
        "events_fired": {
            "kills": controller.kills_fired,
            "poison": controller.poison_fired,
            "drops": controller.drops_fired,
            "torn": controller.torn_fired,
            "oversized": controller.oversized_fired,
        },
        "answers_digest": digest,
        "counters": counters,
        "failures": failures,
    }
    if not cli.emit(args, payload):
        print(
            f"chaos seed {seed}: plan [{plan.encode()}]\n"
            f"  fired: {payload['events_fired']}\n"
            f"  answers_digest: {digest}"
        )
        for name, value in sorted(counters.items()):
            print(f"  {name} = {value}")
    for failure in failures:
        print(f"CHAOS FAILURE: {failure}", file=sys.stderr)
    if not failures and not args.json:
        print(
            "chaos smoke OK: every answer byte-identical, poison "
            "quarantined, client recovered every injected failure"
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve tuned schedules from a sharded ledger.",
    )
    parser.add_argument(
        "--socket",
        default=None,
        help="unix socket path (preferred over TCP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=protocol.DEFAULT_PORT
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for a fresh ledger root (existing roots "
        "keep their manifest's count)",
    )
    parser.add_argument(
        "--migrate",
        metavar="LEDGER_JSON",
        default=None,
        help="reshard this single-file ledger into --ledger and exit",
    )
    parser.add_argument(
        "--no-warm",
        action="store_true",
        help="disable transfer warm-starting of misses",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="self-contained hit/miss/warm trace against a temporary "
        "daemon; non-zero exit on any mismatch (the CI job)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="seeded chaos scenario (worker kills, poison request, "
        "dropped/torn/oversized frames, daemon restart) against a "
        "temporary daemon; non-zero exit unless every failure is "
        "recovered (the CI chaos-smoke job)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="distinct misses allowed in flight before the daemon "
        "sheds with status 'overloaded'",
    )
    parser.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        help="consecutive worker crashes before a request is "
        "quarantined with a durable infeasible answer",
    )
    parser.add_argument(
        "--worker-retries",
        type=int,
        default=2,
        help="crash retries per tune dispatch (with backoff)",
    )
    parser.add_argument(
        "--line-limit",
        type=int,
        default=1 << 20,
        help="per-line byte bound on the NDJSON stream (raise for "
        "very large einsum requests)",
    )
    cli.add_common_args(
        parser, timeout=True, jobs_default=2
    )
    args = parser.parse_args(argv)

    try:
        if args.smoke:
            return _run_smoke(args)
        if args.chaos:
            return _run_chaos(args)
        if args.ledger is None:
            parser.error(
                "--ledger DIR is required (except --smoke/--chaos)"
            )
        if args.migrate is not None:
            return _run_migrate(args)
        return _run_daemon(args)
    except Exception:
        traceback.print_exc()
        print("serve run failed", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
