"""Synchronous, resilient client for the schedule-serving daemon.

A blocking wrapper over one socket speaking the NDJSON protocol, with
the failure handling a long-lived caller needs:

* **Reconnect with backoff + jitter** — a dropped connection (daemon
  restart, chaos injection, network hiccup) is rebuilt with
  exponentially backed-off attempts; each reconnect is counted in
  ``serve.reconnects``.
* **Idempotent retry** — a request whose connection died before the
  response is simply re-sent on the new connection. This is safe by
  construction: requests are keyed by content fingerprint and equal
  requests answer byte-identically, so the worst case is a cache hit
  (or joining the tune the lost request already started).
* **Timeout poisoning** — a ``socket.timeout`` mid-read leaves the
  NDJSON stream misaligned (the late response would be read as the
  answer to the *next* request), so the connection is closed and a
  typed :class:`RequestTimeout` raised; the next call reconnects.
* **Structured backpressure** — ``"overloaded"`` responses are retried
  after the daemon's ``retry_after_s`` hint; ``"draining"`` errors
  reconnect (a drained daemon is about to exit; its replacement will
  answer). Both give up after the retry budget and return the
  structured response for the caller to act on.

:meth:`ScheduleClient.schedule` round-trips one request (optionally
with a ``deadline_s`` the daemon enforces);
:meth:`ScheduleClient.poll` retrieves a ``wait=False`` answer later —
including from a *restarted* daemon, which serves it from the rebuilt
shard index. :meth:`ScheduleClient.schedule_batch` pipelines requests
through a writer thread and resumes mid-batch after a reconnect.

Accepts :class:`repro.api.ScheduleRequest` objects or raw record
dicts interchangeably; responses are the daemon's JSON objects
(``status``/``provenance``/``answer``).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.api import ScheduleRequest
from repro.obs.metrics import METRICS
from repro.serve import protocol

Requestish = Union[ScheduleRequest, Dict]


def _record(request: Requestish) -> Dict:
    if isinstance(request, ScheduleRequest):
        return request.to_record()
    return request


class ProtocolError(RuntimeError):
    """The daemon answered outside the protocol (or not at all)."""


class ConnectionLost(ProtocolError):
    """The connection died mid-conversation (daemon gone or socket
    dropped). Retried automatically up to the client's budget."""


class RequestTimeout(ProtocolError):
    """No response within the socket timeout.

    The connection has been closed: after a read timeout the stream is
    misaligned (the daemon's late response would otherwise be consumed
    as the answer to the *next* request), so it must never be reused.
    """


class ScheduleClient:
    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
        retries: int = 4,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        chaos=None,
    ):
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        #: Optional :class:`repro.faults.chaos.ChaosController`; when
        #: set, the client injects the plan's connection drops and
        #: torn/oversized frames at its own send/receive points.
        self.chaos = chaos
        self.reconnects = 0
        # Jitter only desynchronizes retry stampedes; it never touches
        # request content, so an unseeded RNG keeps answers exact.
        self._rng = random.Random()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # -- connection lifecycle ------------------------------------------

    def _connect(self):
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(str(self._socket_path))
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _poison(self):
        """Close and forget the connection; the next call reconnects."""
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        for closer in (file, sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass

    def _ensure_connected(self):
        if self._file is None:
            self._connect()

    def _backoff(self, attempt: int) -> float:
        delay = min(
            self.backoff_s * (2 ** attempt), self.backoff_cap_s
        )
        return delay * (1.0 + self._rng.random())

    def _note_reconnect(self):
        self.reconnects += 1
        METRICS.inc("serve.reconnects")

    # -- plumbing ------------------------------------------------------

    def _send(self, message: Dict):
        self._file.write(protocol.encode(message))

    def _recv(self) -> Dict:
        try:
            line = self._file.readline()
        except socket.timeout as err:
            self._poison()
            raise RequestTimeout(
                f"no response within {self._timeout}s; connection "
                "closed (a late response would desync the stream)"
            ) from err
        except (ConnectionResetError, BrokenPipeError, OSError) as err:
            self._poison()
            raise ConnectionLost(f"connection lost: {err}") from err
        if not line:
            self._poison()
            raise ConnectionLost("daemon closed the connection")
        try:
            response = protocol.decode(line)
        except Exception as err:
            self._poison()
            raise ProtocolError(f"undecodable response: {err}") from err
        if response.get("protocol") not in (None, protocol.PROTOCOL_VERSION):
            raise ProtocolError(
                f"protocol version mismatch: {response.get('protocol')}"
            )
        return response

    def _roundtrip(self, message: Dict) -> Dict:
        """One raw send/receive on the current connection — no retry,
        no chaos. The resilient ops build on :meth:`_request`."""
        self._ensure_connected()
        self._send(message)
        self._file.flush()
        return self._recv()

    def _inject_chaos_send(self, message: Dict):
        """The chaos plan's client-side frame corruptions."""
        if self.chaos.torn_send():
            payload = protocol.encode(message)
            self._file.write(payload[: max(1, len(payload) // 2)])
            self._file.flush()
            self._poison()
            raise ConnectionLost("chaos: frame torn mid-send")
        size = self.chaos.oversized_send()
        if size:
            # One giant line, then read (and discard) the daemon's
            # structured oversized error so the stream stays aligned
            # for the real request.
            self._file.write(b"\x7b" * size + b"\n")
            self._file.flush()
            self._recv()

    def _request(self, message: Dict) -> Dict:
        """Round-trip with reconnect/backoff and structured-status
        retries; the engine behind every resilient operation."""
        attempts = self.retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                self._ensure_connected()
                if self.chaos is not None:
                    self._inject_chaos_send(message)
                self._send(message)
                self._file.flush()
                if self.chaos is not None and self.chaos.drop_before_reply():
                    self._poison()
                    raise ConnectionLost("chaos: dropped before reply")
                response = self._recv()
            except RequestTimeout:
                raise  # typed, already poisoned; never silently retried
            except (ConnectionLost, OSError) as err:
                self._poison()
                last_error = err
                if attempt + 1 >= attempts:
                    raise ConnectionLost(
                        f"gave up after {attempts} attempts: {err}"
                    ) from err
                self._note_reconnect()
                time.sleep(self._backoff(attempt))
                continue
            status = response.get("status")
            if attempt + 1 < attempts:
                if status == "overloaded":
                    hint = response.get("retry_after_s")
                    delay = (
                        float(hint) if hint else self._backoff(attempt)
                    )
                    time.sleep(min(delay, self.backoff_cap_s))
                    continue
                if (
                    status == "error"
                    and response.get("code") == "draining"
                ):
                    # The daemon is exiting; reconnect to (eventually)
                    # reach its replacement.
                    self._poison()
                    self._note_reconnect()
                    time.sleep(self._backoff(attempt))
                    continue
            return response
        raise ConnectionLost(f"gave up: {last_error}")  # pragma: no cover

    # -- operations ----------------------------------------------------

    def schedule(
        self,
        request: Requestish,
        wait: bool = True,
        deadline_s: Optional[float] = None,
    ) -> Dict:
        message = {
            "op": "schedule", "request": _record(request), "wait": wait,
        }
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        return self._request(message)

    def poll(self, fingerprint: str) -> Dict:
        """Retrieve an answer requested earlier with ``wait=False`` —
        works across reconnects and daemon restarts (the fingerprint is
        the durable key)."""
        return self._request({"op": "poll", "fingerprint": fingerprint})

    def schedule_batch(
        self,
        requests: Sequence[Requestish],
        wait: bool = True,
        deadline_s: Optional[float] = None,
    ) -> List[Dict]:
        """Pipelined: requests stream from a writer thread while this
        thread drains responses (the daemon answers in order per
        connection). Writing everything before reading anything would
        deadlock once both socket buffers fill — the daemon blocks in
        ``drain()`` with nobody reading, the client blocks in
        ``write()`` with nobody accepting.

        A connection lost mid-batch resumes where it stopped: the
        unanswered tail re-sends on the new connection (idempotent by
        fingerprint), so the returned list always matches ``requests``
        one to one.
        """
        messages = []
        for request in requests:
            message = {
                "op": "schedule",
                "request": _record(request),
                "wait": wait,
            }
            if deadline_s is not None:
                message["deadline_s"] = deadline_s
            messages.append(message)
        responses: List[Dict] = []
        attempts = self.retries + 1
        for attempt in range(attempts):
            pending = messages[len(responses):]
            if not pending:
                break
            try:
                self._ensure_connected()
            except OSError as err:
                if attempt + 1 >= attempts:
                    raise ConnectionLost(
                        f"batch reconnect failed: {err}"
                    ) from err
                self._note_reconnect()
                time.sleep(self._backoff(attempt))
                continue
            pump_errors: List[Exception] = []

            def pump(file=self._file, lines=pending):
                # BufferedRWPair keeps separate read/write buffers, so
                # one writer thread and one reader thread never collide.
                try:
                    for message in lines:
                        file.write(protocol.encode(message))
                    file.flush()
                except Exception as err:
                    pump_errors.append(err)

            writer = threading.Thread(target=pump, daemon=True)
            writer.start()
            try:
                for _ in pending:
                    responses.append(self._recv())
            except (ConnectionLost, OSError):
                pass  # resume the tail on a fresh connection
            finally:
                writer.join()
            if len(responses) == len(messages):
                return responses
            self._poison()
            if attempt + 1 >= attempts:
                break
            self._note_reconnect()
            time.sleep(self._backoff(attempt))
        if len(responses) != len(messages):
            raise ConnectionLost(
                f"batch incomplete after {attempts} attempts: "
                f"{len(responses)}/{len(messages)} responses"
            )
        return responses

    def stats(self) -> Dict:
        return self._request({"op": "stats"})

    def ping(self) -> bool:
        try:
            return self._request({"op": "ping"}).get("status") == "ok"
        except ProtocolError:
            return False

    def shutdown(self) -> Dict:
        """Ask the daemon to drain and exit (never retried — a second
        shutdown aimed at a replacement daemon would be surprising)."""
        return self._roundtrip({"op": "shutdown"})

    def close(self):
        self._poison()

    def __enter__(self) -> "ScheduleClient":
        return self

    def __exit__(self, *exc):
        self.close()
