"""Synchronous client for the schedule-serving daemon.

A thin blocking wrapper over one socket speaking the NDJSON protocol.
:meth:`ScheduleClient.schedule` round-trips one request;
:meth:`ScheduleClient.schedule_batch` *pipelines* — it writes every
request before reading any response, which is how the QPS benchmark
pushes thousands of hits through one connection without paying a
round-trip each.

Accepts :class:`repro.api.ScheduleRequest` objects or raw record
dicts interchangeably; responses are the daemon's JSON objects
(``status``/``provenance``/``answer``).
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional, Sequence, Union

from repro.api import ScheduleRequest
from repro.serve import protocol

Requestish = Union[ScheduleRequest, Dict]


def _record(request: Requestish) -> Dict:
    if isinstance(request, ScheduleRequest):
        return request.to_record()
    return request


class ProtocolError(RuntimeError):
    """The daemon answered outside the protocol (or not at all)."""


class ScheduleClient:
    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
    ):
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        self._file = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------

    def _send(self, message: Dict):
        self._file.write(protocol.encode(message))

    def _recv(self) -> Dict:
        line = self._file.readline()
        if not line:
            raise ProtocolError("daemon closed the connection")
        try:
            response = protocol.decode(line)
        except Exception as err:
            raise ProtocolError(f"undecodable response: {err}") from err
        if response.get("protocol") not in (None, protocol.PROTOCOL_VERSION):
            raise ProtocolError(
                f"protocol version mismatch: {response.get('protocol')}"
            )
        return response

    def _roundtrip(self, message: Dict) -> Dict:
        self._send(message)
        self._file.flush()
        return self._recv()

    # -- operations ----------------------------------------------------

    def schedule(self, request: Requestish, wait: bool = True) -> Dict:
        return self._roundtrip({
            "op": "schedule", "request": _record(request), "wait": wait,
        })

    def schedule_batch(
        self, requests: Sequence[Requestish], wait: bool = True
    ) -> List[Dict]:
        """Pipelined: requests stream from a writer thread while this
        thread drains responses (the daemon answers in order per
        connection). Writing everything before reading anything would
        deadlock once both socket buffers fill — the daemon blocks in
        ``drain()`` with nobody reading, the client blocks in
        ``write()`` with nobody accepting."""
        messages = [
            {"op": "schedule", "request": _record(r), "wait": wait}
            for r in requests
        ]

        def pump():
            # BufferedRWPair keeps separate read/write buffers, so one
            # writer thread and one reader thread never collide.
            for message in messages:
                self._send(message)
            self._file.flush()

        writer = threading.Thread(target=pump, daemon=True)
        writer.start()
        try:
            return [self._recv() for _ in requests]
        finally:
            writer.join()

    def stats(self) -> Dict:
        return self._roundtrip({"op": "stats"})

    def ping(self) -> bool:
        return self._roundtrip({"op": "ping"}).get("status") == "ok"

    def shutdown(self) -> Dict:
        return self._roundtrip({"op": "shutdown"})

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ScheduleClient":
        return self

    def __exit__(self, *exc):
        self.close()
