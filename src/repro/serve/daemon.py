"""The schedule-serving daemon: microsecond hits, supervised misses.

:class:`ScheduleServer` is a single-threaded asyncio server (unix
socket preferred, localhost TCP as fallback) speaking the
newline-delimited JSON protocol of :mod:`repro.serve.protocol`. The
two paths are deliberately asymmetric:

* **Hits** never leave the event loop: the answer index is a plain
  dict from request fingerprint to the persisted canonical answer, so
  an exact hit is one hash lookup plus one ``writer.write`` —
  microseconds, and unaffected by whatever tuning is in flight.
* **Misses** are admission-controlled (a bounded in-flight set; beyond
  it the daemon *sheds* with ``status: "overloaded"`` and a
  retry-after hint rather than queueing unboundedly), *deduplicated in
  flight* (concurrent identical requests share one future and
  therefore one tune), and dispatched through the supervised forked
  runner (:mod:`repro.serve.supervise`) — the GIL-heavy search runs in
  child processes, never in the loop's, and a SIGKILL'd child is a
  detected crash that retries with backoff instead of a hung pool.

**Resilience semantics** (see ``docs/serving.md``):

* A per-request ``deadline_s`` caps both the oracle's tune timeout and
  the client's wait — on expiry the waiter gets a structured
  ``code: "deadline"`` error while the tune finishes in the
  background, pollable later.
* SIGTERM or the ``shutdown`` op triggers a **graceful drain**: no new
  misses are admitted (structured ``code: "draining"`` errors), hits
  keep serving, in-flight tunes finish and answer their waiters, and
  only then does the daemon exit. Waiters still unanswered at the
  drain deadline get the same structured error — never a cancelled
  future and a torn socket.
* A request whose worker crashes ``quarantine_after`` consecutive
  times is **quarantined**: a durable infeasible-with-reason answer is
  persisted under its fingerprint (provenance ``"quarantined"``), so
  restarts serve it as a hit instead of re-tuning a crasher forever.

**Transfer warm-starting:** before dispatch, each miss looks for its
nearest tuned neighbor — same einsum structure, dtype, objective and
node anatomy (:meth:`repro.api.ScheduleRequest.structure_key`),
nearest along the (nodes, problem volume) axes in log space. The
neighbor's decision is projected onto the miss's processor count
(:func:`repro.tuner.space.warm_variants` via ``strategy="warm"``), so
a warm miss simulates only that small neighborhood instead of the
full space.

Completed answers are persisted to the sharded ledger *by the worker
child* using the lock/salvage pattern, then installed into the
in-memory index here; a daemon restart rebuilds the index from the
shards and serves every previously tuned answer as a hit.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api import HIT, QUARANTINED, ScheduleRequest
from repro.obs.metrics import METRICS
from repro.serve import protocol
from repro.serve.shard import ShardedLedger
from repro.serve.supervise import (
    QuarantineStore,
    quarantined_answer,
    run_supervised,
)

# Import for the side effect: registers the serve_tune_batch sweep in
# this process, so forked workers inherit it resolved.
from repro.serve import worker as _worker  # noqa: F401

#: Sentinel frame for a line that exceeded the stream limit (the frame
#: was discarded but the stream is realigned on the next newline).
_OVERSIZED = object()


def _volume(record: Dict) -> float:
    """Total element count across a request record's tensors — the
    shape axis neighbor distance is measured along."""
    total = 1.0
    for shape in record.get("shapes", {}).values():
        for extent in shape:
            total *= max(1, extent)
    return total


def _draining_row(fingerprint: str) -> Dict:
    return {
        "status": "error",
        "code": "draining",
        "fingerprint": fingerprint,
        "error": "daemon is draining; this tune did not complete "
                 "before shutdown — retry against its replacement",
    }


class ScheduleServer:
    """One serving daemon over one sharded ledger root."""

    def __init__(
        self,
        ledger_root,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        tune_jobs: int = 2,
        warm_start: bool = True,
        timeout_s: Optional[float] = None,
        shards: Optional[int] = None,
        max_pending: int = 64,
        quarantine_after: int = 3,
        worker_retries: int = 2,
        retry_backoff_s: float = 0.05,
        drain_timeout_s: float = 30.0,
        line_limit: int = 1 << 20,
        chaos=None,
    ):
        self.ledger = ShardedLedger(Path(ledger_root), shards=shards)
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.tune_jobs = max(1, tune_jobs)
        self.warm_start = warm_start
        self.timeout_s = timeout_s
        #: Admission bound: distinct misses allowed in flight before
        #: the daemon sheds with ``status: "overloaded"``.
        self.max_pending = max(1, max_pending)
        self.quarantine_after = max(1, quarantine_after)
        self.worker_retries = max(0, worker_retries)
        self.retry_backoff_s = retry_backoff_s
        self.drain_timeout_s = drain_timeout_s
        #: Per-line byte bound on the NDJSON stream — configurable for
        #: genuinely large einsum requests; beyond it the daemon
        #: answers a structured ``code: "oversized"`` error and stays
        #: aligned on the connection.
        self.line_limit = max(4096, line_limit)
        #: Optional :class:`repro.faults.chaos.ChaosController` whose
        #: worker-kill schedule the dispatcher consults per attempt.
        self.chaos = chaos
        self.quarantine = QuarantineStore(
            Path(ledger_root), threshold=self.quarantine_after
        )
        #: fingerprint -> {"request": record, "answer": record}
        self.index: Dict[str, Dict] = {}
        #: structure key -> fingerprints with a usable tuned answer.
        self.neighborhoods: Dict[str, List[str]] = {}
        #: fingerprint -> future shared by identical in-flight misses.
        self.inflight: Dict[str, asyncio.Future] = {}
        self.started = time.monotonic()
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Future] = None
        self._connections: set = set()
        self._tunes: set = set()
        #: Connections currently processing a message (response not
        #: yet written) — drain completion waits for zero.
        self._busy = 0
        # One executor thread per concurrent supervised fork; the
        # blocking pipe waits live here, never on the event loop.
        self._executor = ThreadPoolExecutor(
            max_workers=self.tune_jobs, thread_name_prefix="serve-tune"
        )
        for fingerprint, record in self.ledger.answers():
            self._index_answer(fingerprint, record)

    # -- the in-memory answer index ------------------------------------

    def _index_answer(self, fingerprint: str, record: Dict):
        self.index[fingerprint] = record
        try:
            request = ScheduleRequest.from_record(record["request"])
            key = request.structure_key()
        except Exception:
            return  # unindexable for warm transfer; still a hit source
        if record.get("answer", {}).get("provenance") == QUARANTINED:
            return  # never a warm-start donor
        bucket = self.neighborhoods.setdefault(key, [])
        if fingerprint not in bucket:
            bucket.append(fingerprint)

    def _neighbor_decision(
        self, request: ScheduleRequest, fingerprint: str
    ) -> Optional[str]:
        """The encoded decision of the nearest tuned neighbor, or
        ``None`` when the structure has no usable precedent."""
        best: Optional[Tuple[float, str, str]] = None
        for other_fp in self.neighborhoods.get(request.structure_key(), ()):
            if other_fp == fingerprint:
                continue
            record = self.index.get(other_fp)
            if record is None:
                continue
            answer = record.get("answer", {})
            if answer.get("cost") == "infeasible":
                continue
            other = record.get("request", {})
            nodes = other.get("machine", {}).get("nodes", 1)
            distance = abs(
                math.log(max(1, request.machine.nodes) / max(1, nodes))
            ) + abs(math.log(
                _volume(request.to_record()) / _volume(other)
            ))
            key = (distance, other_fp, answer.get("decision", ""))
            if best is None or key < best:
                best = key
        return best[2] if best is not None and best[2] else None

    # -- request handling ----------------------------------------------

    def _hit_response(self, fingerprint: str, cached: Dict) -> Dict:
        METRICS.inc("serve.hits")
        answer = dict(cached["answer"])
        # Quarantined answers keep their provenance: the caller must
        # see *why* the request is infeasible, not a plain hit.
        provenance = (
            QUARANTINED
            if answer.get("provenance") == QUARANTINED
            else HIT
        )
        answer["provenance"] = provenance
        return protocol.ok_response(
            fingerprint=fingerprint, provenance=provenance, answer=answer
        )

    async def _handle_schedule(self, message: Dict) -> Dict:
        record = message.get("request")
        if not isinstance(record, dict):
            return protocol.error_response(
                "schedule op needs a 'request' object"
            )
        try:
            request = ScheduleRequest.from_record(record)
            fingerprint = request.fingerprint()
        except Exception as err:
            METRICS.inc("serve.errors")
            return protocol.error_response(
                f"bad schedule request: {type(err).__name__}: {err}"
            )

        cached = self.index.get(fingerprint)
        if cached is not None:
            return self._hit_response(fingerprint, cached)

        deadline_s = message.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = max(0.001, float(deadline_s))
            except (TypeError, ValueError):
                return protocol.error_response(
                    "deadline_s must be a number of seconds"
                )

        future = self.inflight.get(fingerprint)
        if future is None:
            if self.draining:
                return protocol.error_response(
                    "daemon is draining; not admitting new tunes",
                    code="draining",
                    fingerprint=fingerprint,
                )
            if self.quarantine.poisoned(fingerprint):
                # Quarantined on a previous run but the answer never
                # persisted (crashed between): synthesize it now.
                return self._quarantine(
                    fingerprint, record, self.quarantine.reason(fingerprint)
                )
            if len(self.inflight) >= self.max_pending:
                METRICS.inc("serve.shed")
                return {
                    "status": "overloaded",
                    "fingerprint": fingerprint,
                    "error": (
                        f"miss queue full ({self.max_pending} tunes "
                        "in flight); retry later"
                    ),
                    "retry_after_s": self._retry_after_hint(),
                    "protocol": protocol.PROTOCOL_VERSION,
                }
            METRICS.inc("serve.misses")
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            self.inflight[fingerprint] = future
            task = loop.create_task(
                self._tune_one(fingerprint, record, deadline_s)
            )
            self._tunes.add(task)
            task.add_done_callback(self._tunes.discard)
        else:
            METRICS.inc("serve.deduped")

        if not message.get("wait", True):
            return {
                "status": "pending",
                "fingerprint": fingerprint,
                "protocol": protocol.PROTOCOL_VERSION,
            }
        try:
            row = await asyncio.wait_for(
                asyncio.shield(future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            return protocol.error_response(
                f"deadline of {deadline_s}s expired before the tune "
                "finished; the answer stays pollable by fingerprint",
                code="deadline",
                fingerprint=fingerprint,
            )
        return self._row_response(fingerprint, row)

    def _row_response(self, fingerprint: str, row: Dict) -> Dict:
        if row.get("status") != "ok":
            response = protocol.error_response(
                row.get("error", "tune failed")
            )
            for key in ("code", "fingerprint"):
                if key in row:
                    response[key] = row[key]
            return response
        answer = row["answer"]
        return protocol.ok_response(
            fingerprint=fingerprint,
            provenance=answer.get("provenance", "tuned"),
            answer=answer,
        )

    def _retry_after_hint(self) -> float:
        """A crude shed hint: assume the current in-flight tunes clear
        at a few seconds each across the worker slots."""
        backlog = max(1, len(self.inflight))
        return round(
            min(30.0, 1.0 + 2.0 * backlog / max(1, self.tune_jobs)), 3
        )

    def _handle_poll(self, message: Dict) -> Dict:
        fingerprint = message.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            return protocol.error_response(
                "poll op needs a 'fingerprint' string"
            )
        cached = self.index.get(fingerprint)
        if cached is not None:
            return self._hit_response(fingerprint, cached)
        if fingerprint in self.inflight:
            return {
                "status": "pending",
                "fingerprint": fingerprint,
                "protocol": protocol.PROTOCOL_VERSION,
            }
        return protocol.error_response(
            "no answer and no tune in flight for this fingerprint "
            "(was it requested on this ledger root?)",
            code="unknown-fingerprint",
            fingerprint=fingerprint,
        )

    # -- the supervised tune path --------------------------------------

    def _quarantine(
        self, fingerprint: str, record: Dict, reason: str
    ) -> Dict:
        """Persist and index the durable infeasible answer for a
        poison request; returns its ok-row response."""
        METRICS.inc("serve.quarantined")
        answer = quarantined_answer(fingerprint, reason)
        entry = {"request": record, "answer": answer}
        try:
            self.ledger.put_answer(fingerprint, entry)
            self.ledger.save()
        except Exception:
            pass  # the QUARANTINE.json count still blocks re-tunes
        self._index_answer(fingerprint, entry)
        return protocol.ok_response(
            fingerprint=fingerprint,
            provenance=QUARANTINED,
            answer=answer,
        )

    def _dispatch_kwargs(
        self, fingerprint: str, record: Dict,
        deadline_s: Optional[float],
    ) -> Dict:
        warm: Dict[str, str] = {}
        if self.warm_start:
            try:
                request = ScheduleRequest.from_record(record)
                encoded = self._neighbor_decision(request, fingerprint)
            except Exception:
                encoded = None
            if encoded:
                warm[fingerprint] = encoded
        timeout_s = self.timeout_s
        if deadline_s is not None:
            timeout_s = (
                deadline_s
                if timeout_s is None
                else min(timeout_s, deadline_s)
            )
        return {
            "records": [record],
            "ledger_path": str(self.ledger.path),
            "warm": warm,
            "timeout_s": timeout_s,
            "parent_pid": os.getpid(),
        }

    async def _tune_one(
        self,
        fingerprint: str,
        record: Dict,
        deadline_s: Optional[float] = None,
    ):
        """Run one miss through the supervised fork and resolve its
        future — *always*, whatever the outcome shape."""
        loop = asyncio.get_running_loop()
        kwargs = self._dispatch_kwargs(fingerprint, record, deadline_s)

        def dispatch():
            def on_attempt(_attempt: int):
                if self.chaos is not None:
                    kwargs["chaos_kill"] = self.chaos.kill_worker(
                        fingerprint
                    )
            return run_supervised(
                "serve_tune_batch",
                kwargs,
                retries=self.worker_retries,
                backoff_s=self.retry_backoff_s,
                on_attempt=on_attempt,
            )

        row: Dict = {
            "status": "error",
            "fingerprint": fingerprint,
            "error": "tune dispatch failed",
        }
        try:
            status, result, crashes = await loop.run_in_executor(
                self._executor, dispatch
            )
            if crashes:
                total = self.quarantine.record_crashes(
                    fingerprint, crashes, str(result)[:500]
                )
            if status == "ok":
                self.quarantine.record_success(fingerprint)
                rows = [
                    r for r in result
                    if r.get("fingerprint") == fingerprint
                ]
                if rows:
                    row = rows[0]
                else:
                    # The worker returned a short batch (the bug class
                    # the old zip silently truncated on): surface it as
                    # a structured error instead of hanging the client.
                    METRICS.inc("serve.errors")
                    row = {
                        "status": "error",
                        "fingerprint": fingerprint,
                        "error": "worker returned no row for this "
                                 "request",
                    }
            elif status == "err":
                row = {
                    "status": "error",
                    "fingerprint": fingerprint,
                    "error": f"tune dispatch failed: {result}",
                }
            else:  # every attempt crashed
                if total >= self.quarantine_after:
                    response = self._quarantine(
                        fingerprint, record, str(result)[:500]
                    )
                    row = {
                        "status": "ok",
                        "fingerprint": fingerprint,
                        "answer": response["answer"],
                    }
                else:
                    row = {
                        "status": "error",
                        "code": "crashed",
                        "fingerprint": fingerprint,
                        "error": (
                            f"tune worker crashed {crashes}x "
                            f"(consecutive total {total}): {result}"
                        ),
                    }
        except Exception as err:
            row = {
                "status": "error",
                "fingerprint": fingerprint,
                "error": f"dispatch failed: {type(err).__name__}: {err}",
            }
        finally:
            if (
                row.get("status") == "ok"
                and fingerprint not in self.index
            ):
                self._index_answer(
                    fingerprint,
                    {"request": record, "answer": row["answer"]},
                )
            future = self.inflight.pop(fingerprint, None)
            if future is not None and not future.done():
                future.set_result(row)

    # -- connection handling -------------------------------------------

    def _stats(self) -> Dict:
        snapshot = METRICS.snapshot(sources=False)
        counters = {
            name: value
            for name, value in snapshot.items()
            if name.startswith("serve.")
        }
        from repro.obs.metrics import SERVE_COUNTERS

        for name in SERVE_COUNTERS:
            counters.setdefault(name, 0)
        return protocol.ok_response(
            counters=counters,
            answers=len(self.index),
            inflight=len(self.inflight),
            draining=self.draining,
            max_pending=self.max_pending,
            shards=self.ledger.shards,
            ledger=str(self.ledger.path),
            uptime_s=round(time.monotonic() - self.started, 3),
        )

    async def _dispatch(self, message: Dict) -> Optional[Dict]:
        op = message.get("op")
        if op == "schedule":
            return await self._handle_schedule(message)
        if op == "poll":
            return self._handle_poll(message)
        if op == "stats":
            return self._stats()
        if op == "ping":
            return protocol.ok_response(pong=True)
        if op == "shutdown":
            self.begin_drain()
            return protocol.ok_response(stopping=True, draining=True)
        return protocol.error_response(f"unknown op {op!r}")

    async def _read_frame(self, reader):
        """One NDJSON line, staying aligned past oversized input.

        ``readuntil`` (not ``readline``) because its
        :class:`~asyncio.LimitOverrunError` path leaves the buffer
        intact: the oversized line is discarded byte-exactly up to its
        newline and :data:`_OVERSIZED` returned, so the connection
        keeps working at the very next frame. Returns ``b""`` at EOF
        (including after a torn final line — nobody is left to answer).
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError:
            return b""
        except asyncio.LimitOverrunError as err:
            consumed = err.consumed
            while True:
                if consumed:
                    await reader.readexactly(consumed)
                try:
                    await reader.readuntil(b"\n")  # the line's tail
                    return _OVERSIZED
                except asyncio.LimitOverrunError as again:
                    consumed = again.consumed
                except asyncio.IncompleteReadError:
                    return b""

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is _OVERSIZED:
                    METRICS.inc("serve.errors")
                    writer.write(protocol.encode(protocol.error_response(
                        f"line exceeds the {self.line_limit}-byte "
                        "stream limit (raise --line-limit for large "
                        "requests)",
                        code="oversized",
                    )))
                    await writer.drain()
                    continue
                if not frame:
                    break
                self._busy += 1
                try:
                    try:
                        message = protocol.decode(frame)
                    except Exception as err:
                        response = protocol.error_response(
                            f"undecodable message: {err}"
                        )
                    else:
                        response = await self._dispatch(message)
                    writer.write(protocol.encode(response))
                    await writer.drain()
                finally:
                    self._busy -= 1
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- lifecycle -----------------------------------------------------

    def begin_drain(self):
        """Stop admitting misses; exit once in-flight work settles."""
        if self.draining:
            return
        self.draining = True
        asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self):
        deadline = time.monotonic() + self.drain_timeout_s
        while time.monotonic() < deadline:
            if not self.inflight and self._busy == 0:
                break
            await asyncio.sleep(0.02)
        # Whoever is still waiting gets the structured drain error —
        # a resolved future and a clean line, never a torn socket.
        for fingerprint, future in list(self.inflight.items()):
            if not future.done():
                METRICS.inc("serve.drained")
                future.set_result(_draining_row(fingerprint))
        self.inflight.clear()
        # One last grace window for those responses to flush.
        grace = time.monotonic() + 2.0
        while self._busy and time.monotonic() < grace:
            await asyncio.sleep(0.02)
        self.request_stop()

    def request_stop(self):
        if self._stopped is not None and not self._stopped.done():
            self._stopped.set_result(None)

    async def start(self):
        loop = asyncio.get_running_loop()
        self._stopped = loop.create_future()
        try:
            loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
        except (ValueError, NotImplementedError, RuntimeError):
            pass  # not the main thread (ServerHandle) or no signals
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(self.socket_path),
                limit=self.line_limit,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=self.line_limit,
            )
            # Rebind to the kernel-assigned port when port=0 was asked.
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self):
        pending = list(self._tunes) + list(self._connections)
        for task in pending:
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # The cancellations must actually run: a connection task's
        # ``finally`` closes its transport, and skipping that leaves
        # the client's socket open-but-dead — it would hang in read
        # instead of seeing EOF and reconnecting to the restarted
        # daemon.
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await asyncio.sleep(0)  # let transport-close callbacks fire
        # An abrupt stop (no drain) still resolves every waiter with
        # the structured error rather than a cancelled future.
        for fingerprint, future in self.inflight.items():
            if not future.done():
                METRICS.inc("serve.drained")
                future.set_result(_draining_row(fingerprint))
        self.inflight.clear()
        self._executor.shutdown(wait=False)
        if self.socket_path:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass

    async def serve_until_stopped(self):
        await self.start()
        try:
            await self._stopped
        finally:
            await self.stop()


class ServerHandle:
    """A daemon running on a background thread (tests, ``--smoke``)."""

    def __init__(self, server: ScheduleServer):
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self.thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serving daemon failed to start")

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        # Waiting on the stop future (rather than run_forever) means a
        # drain completed by the daemon itself — shutdown op, SIGTERM —
        # ends the thread without any cross-thread loop.stop() dance.
        self.loop.run_until_complete(self._await_stop())
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()

    async def _await_stop(self):
        await self.server._stopped

    def stop(self):
        if self.thread.is_alive() and not self.loop.is_closed():
            try:
                self.loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # the loop closed between the checks
        self.thread.join(timeout=30)


def start_background(server: ScheduleServer) -> ServerHandle:
    return ServerHandle(server)
