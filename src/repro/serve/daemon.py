"""The schedule-serving daemon: microsecond hits, forked-off misses.

:class:`ScheduleServer` is a single-threaded asyncio server (unix
socket preferred, localhost TCP as fallback) speaking the
newline-delimited JSON protocol of :mod:`repro.serve.protocol`. The
two paths are deliberately asymmetric:

* **Hits** never leave the event loop: the answer index is a plain
  dict from request fingerprint to the persisted canonical answer, so
  an exact hit is one hash lookup plus one ``writer.write`` —
  microseconds, and unaffected by whatever tuning is in flight.
* **Misses** are queued, *deduplicated in flight* (concurrent
  identical requests share one future and therefore one tune),
  batched by a single consumer task, and dispatched through the
  fork-pool sweep driver (:mod:`repro.serve.worker`) from an executor
  thread with ``always_fork=True`` — the GIL-heavy search runs in
  child processes, never in the loop's.

**Transfer warm-starting:** before dispatch, each miss looks for its
nearest tuned neighbor — same einsum structure, dtype, objective and
node anatomy (:meth:`repro.api.ScheduleRequest.structure_key`),
nearest along the (nodes, problem volume) axes in log space. The
neighbor's decision is projected onto the miss's processor count
(:func:`repro.tuner.space.warm_variants` via ``strategy="warm"``), so
a warm miss simulates only that small neighborhood instead of the
full space.

Completed answers are persisted to the sharded ledger *by the worker
child* using the lock/salvage pattern, then installed into the
in-memory index here; a daemon restart rebuilds the index from the
shards and serves every previously tuned answer as a hit.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api import HIT, ScheduleRequest
from repro.bench.parallel import run_points
from repro.obs.metrics import METRICS
from repro.serve import protocol
from repro.serve.shard import ShardedLedger

# Import for the side effect: registers the serve_tune_batch sweep in
# this process, so forked pool workers inherit it resolved.
from repro.serve import worker as _worker  # noqa: F401


def _volume(record: Dict) -> float:
    """Total element count across a request record's tensors — the
    shape axis neighbor distance is measured along."""
    total = 1.0
    for shape in record.get("shapes", {}).values():
        for extent in shape:
            total *= max(1, extent)
    return total


class ScheduleServer:
    """One serving daemon over one sharded ledger root."""

    def __init__(
        self,
        ledger_root,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        tune_jobs: int = 2,
        warm_start: bool = True,
        timeout_s: Optional[float] = None,
        shards: Optional[int] = None,
    ):
        self.ledger = ShardedLedger(Path(ledger_root), shards=shards)
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.tune_jobs = max(1, tune_jobs)
        self.warm_start = warm_start
        self.timeout_s = timeout_s
        #: fingerprint -> {"request": record, "answer": record}
        self.index: Dict[str, Dict] = {}
        #: structure key -> fingerprints with a usable tuned answer.
        self.neighborhoods: Dict[str, List[str]] = {}
        #: fingerprint -> future shared by identical in-flight misses.
        self.inflight: Dict[str, asyncio.Future] = {}
        self.started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Future] = None
        self._connections: set = set()
        # One dispatch thread: batches serialize behind each other by
        # design (each dispatch fans out across the fork pool).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-tune"
        )
        for fingerprint, record in self.ledger.answers():
            self._index_answer(fingerprint, record)

    # -- the in-memory answer index ------------------------------------

    def _index_answer(self, fingerprint: str, record: Dict):
        self.index[fingerprint] = record
        try:
            request = ScheduleRequest.from_record(record["request"])
            key = request.structure_key()
        except Exception:
            return  # unindexable for warm transfer; still a hit source
        bucket = self.neighborhoods.setdefault(key, [])
        if fingerprint not in bucket:
            bucket.append(fingerprint)

    def _neighbor_decision(
        self, request: ScheduleRequest, fingerprint: str
    ) -> Optional[str]:
        """The encoded decision of the nearest tuned neighbor, or
        ``None`` when the structure has no usable precedent."""
        best: Optional[Tuple[float, str, str]] = None
        for other_fp in self.neighborhoods.get(request.structure_key(), ()):
            if other_fp == fingerprint:
                continue
            record = self.index.get(other_fp)
            if record is None:
                continue
            answer = record.get("answer", {})
            if answer.get("cost") == "infeasible":
                continue
            other = record.get("request", {})
            nodes = other.get("machine", {}).get("nodes", 1)
            distance = abs(
                math.log(max(1, request.machine.nodes) / max(1, nodes))
            ) + abs(math.log(
                _volume(request.to_record()) / _volume(other)
            ))
            key = (distance, other_fp, answer.get("decision", ""))
            if best is None or key < best:
                best = key
        return best[2] if best is not None and best[2] else None

    # -- request handling ----------------------------------------------

    async def _handle_schedule(self, message: Dict) -> Dict:
        record = message.get("request")
        if not isinstance(record, dict):
            return protocol.error_response(
                "schedule op needs a 'request' object"
            )
        try:
            request = ScheduleRequest.from_record(record)
            fingerprint = request.fingerprint()
        except Exception as err:
            METRICS.inc("serve.errors")
            return protocol.error_response(
                f"bad schedule request: {type(err).__name__}: {err}"
            )

        cached = self.index.get(fingerprint)
        if cached is not None:
            METRICS.inc("serve.hits")
            answer = dict(cached["answer"])
            answer["provenance"] = HIT
            return protocol.ok_response(
                fingerprint=fingerprint, provenance=HIT, answer=answer
            )

        future = self.inflight.get(fingerprint)
        if future is None:
            METRICS.inc("serve.misses")
            future = asyncio.get_running_loop().create_future()
            self.inflight[fingerprint] = future
            await self._queue.put((fingerprint, record))
        else:
            METRICS.inc("serve.deduped")

        if not message.get("wait", True):
            return {
                "status": "pending",
                "fingerprint": fingerprint,
                "protocol": protocol.PROTOCOL_VERSION,
            }
        row = await asyncio.shield(future)
        if row.get("status") != "ok":
            return protocol.error_response(
                row.get("error", "tune failed")
            )
        answer = row["answer"]
        return protocol.ok_response(
            fingerprint=fingerprint,
            provenance=answer.get("provenance", "tuned"),
            answer=answer,
        )

    def _stats(self) -> Dict:
        counters = {
            name: value
            for name, value in METRICS.snapshot(sources=False).items()
            if name.startswith("serve.")
        }
        return protocol.ok_response(
            counters=counters,
            answers=len(self.index),
            inflight=len(self.inflight),
            shards=self.ledger.shards,
            ledger=str(self.ledger.path),
            uptime_s=round(time.monotonic() - self.started, 3),
        )

    async def _dispatch(self, message: Dict) -> Optional[Dict]:
        op = message.get("op")
        if op == "schedule":
            return await self._handle_schedule(message)
        if op == "stats":
            return self._stats()
        if op == "ping":
            return protocol.ok_response(pong=True)
        if op == "shutdown":
            if self._stopped is not None and not self._stopped.done():
                self._stopped.set_result(None)
            return protocol.ok_response(stopping=True)
        return protocol.error_response(f"unknown op {op!r}")

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except Exception as err:
                    response = protocol.error_response(
                        f"undecodable message: {err}"
                    )
                else:
                    response = await self._dispatch(message)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- the miss consumer ---------------------------------------------

    async def _consume(self):
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while not self._queue.empty():
                batch.append(self._queue.get_nowait())
            per_point = []
            for fingerprint, record in batch:
                warm: Dict[str, str] = {}
                if self.warm_start:
                    try:
                        request = ScheduleRequest.from_record(record)
                        encoded = self._neighbor_decision(
                            request, fingerprint
                        )
                    except Exception:
                        encoded = None
                    if encoded:
                        warm[fingerprint] = encoded
                per_point.append({
                    "records": [record],
                    "ledger_path": str(self.ledger.path),
                    "warm": warm,
                    "timeout_s": self.timeout_s,
                })
            try:
                rows = await loop.run_in_executor(
                    self._executor,
                    partial(
                        run_points,
                        "serve_tune_batch",
                        per_point,
                        self.tune_jobs,
                        None,
                        True,  # always_fork: keep tuning off this loop
                    ),
                )
            except Exception as err:
                rows = [
                    {
                        "status": "error",
                        "fingerprint": fp,
                        "error": f"dispatch failed: {err}",
                    }
                    for fp, _record in batch
                ]
            for (fingerprint, record), row in zip(batch, rows):
                if row.get("status") == "ok":
                    self._index_answer(
                        fingerprint,
                        {"request": record, "answer": row["answer"]},
                    )
                future = self.inflight.pop(fingerprint, None)
                if future is not None and not future.done():
                    future.set_result(row)

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopped = loop.create_future()
        self._consumer = loop.create_task(self._consume())
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.socket_path)
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            # Rebind to the kernel-assigned port when port=0 was asked.
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self):
        if self._consumer is not None:
            self._consumer.cancel()
        for task in list(self._connections):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for future in self.inflight.values():
            if not future.done():
                future.cancel()
        self.inflight.clear()
        self._executor.shutdown(wait=False)
        if self.socket_path:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass

    async def serve_until_stopped(self):
        await self.start()
        try:
            await self._stopped
        finally:
            await self.stop()


class ServerHandle:
    """A daemon running on a background thread (tests, ``--smoke``)."""

    def __init__(self, server: ScheduleServer):
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self.thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serving daemon failed to start")

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)


def start_background(server: ScheduleServer) -> ServerHandle:
    return ServerHandle(server)
