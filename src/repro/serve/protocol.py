"""The daemon's wire protocol: newline-delimited JSON messages.

One request per line, one response per line, UTF-8, no framing beyond
``\\n`` — trivially scriptable (``nc -U`` works) and fast enough that
the protocol never shows up next to a microsecond index lookup.

Requests are objects with an ``op``:

``{"op": "schedule", "request": {...}, "wait": true}``
    ``request`` is a :meth:`repro.api.ScheduleRequest.to_record` dict.
    A cached answer returns immediately with ``provenance: "hit"``.
    On a miss with ``wait`` true (the default) the response arrives
    once the tune finishes; with ``wait`` false the daemon responds
    ``{"status": "pending"}`` right away and tunes in the background.

``{"op": "stats"}``
    Daemon counters (the ``serve.*`` metrics), ledger sizes, uptime.

``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness probe / graceful stop.

Responses always carry ``status``: ``"ok"`` (with ``answer`` and
``provenance`` for schedule ops), ``"pending"``, or ``"error"`` (with
``error`` text). ``protocol`` carries :data:`PROTOCOL_VERSION` so
clients can refuse a mismatched daemon.
"""

from __future__ import annotations

import json
from typing import Dict

PROTOCOL_VERSION = 1

#: Default localhost TCP port (unix sockets are preferred; TCP exists
#: for platforms and tools without AF_UNIX).
DEFAULT_PORT = 7463


def encode(message: Dict) -> bytes:
    """One wire line: compact, key-sorted JSON plus the delimiter."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict:
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def error_response(text: str) -> Dict:
    return {
        "status": "error",
        "error": text,
        "protocol": PROTOCOL_VERSION,
    }


def ok_response(**fields) -> Dict:
    response = {"status": "ok", "protocol": PROTOCOL_VERSION}
    response.update(fields)
    return response
