"""The daemon's wire protocol: newline-delimited JSON messages.

One request per line, one response per line, UTF-8, no framing beyond
``\\n`` — trivially scriptable (``nc -U`` works) and fast enough that
the protocol never shows up next to a microsecond index lookup.

Requests are objects with an ``op``:

``{"op": "schedule", "request": {...}, "wait": true, "deadline_s": 30}``
    ``request`` is a :meth:`repro.api.ScheduleRequest.to_record` dict.
    A cached answer returns immediately with ``provenance: "hit"``.
    On a miss with ``wait`` true (the default) the response arrives
    once the tune finishes; with ``wait`` false the daemon responds
    ``{"status": "pending"}`` right away and tunes in the background
    (retrieve later with ``poll``). ``deadline_s`` (optional, seconds,
    relative) bounds how long the *daemon* lets this request wait: it
    caps the oracle's tune timeout and, on expiry, answers
    ``status: "error"`` with ``code: "deadline"`` — the tune keeps
    running and the answer stays pollable.

``{"op": "poll", "fingerprint": "..."}``
    Retrieve a previously requested answer by fingerprint: ``"ok"``
    with the answer if tuned (on this daemon *or a restarted one* —
    the rebuilt shard index serves it), ``"pending"`` while in flight,
    or ``"error"`` with ``code: "unknown-fingerprint"``.

``{"op": "stats"}``
    Daemon counters (the ``serve.*`` metrics), ledger sizes, uptime.

``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness probe / graceful drain (stop admitting misses, finish
    in-flight tunes, then exit).

Responses always carry ``status``: ``"ok"`` (with ``answer`` and
``provenance`` for schedule ops), ``"pending"``, ``"overloaded"``
(the bounded miss queue is full — shed with a ``retry_after_s``
hint), or ``"error"`` (with ``error`` text and, for structured
failures, a machine-readable ``code``: ``"draining"``,
``"deadline"``, ``"oversized"``, ``"crashed"``,
``"unknown-fingerprint"``). ``protocol`` carries
:data:`PROTOCOL_VERSION` so clients can refuse a mismatched daemon.
"""

from __future__ import annotations

import json
from typing import Dict

PROTOCOL_VERSION = 1

#: Default localhost TCP port (unix sockets are preferred; TCP exists
#: for platforms and tools without AF_UNIX).
DEFAULT_PORT = 7463


def encode(message: Dict) -> bytes:
    """One wire line: compact, key-sorted JSON plus the delimiter."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict:
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def error_response(text: str, **fields) -> Dict:
    """An error line; ``fields`` attach structured context (``code``,
    ``fingerprint``, ``retry_after_s``)."""
    response = {
        "status": "error",
        "error": text,
        "protocol": PROTOCOL_VERSION,
    }
    response.update(fields)
    return response


def ok_response(**fields) -> Dict:
    response = {"status": "ok", "protocol": PROTOCOL_VERSION}
    response.update(fields)
    return response
