"""The sharded tuning ledger: one directory, many atomic JSON shards.

A single-file :class:`~repro.tuner.oracle.TuningLedger` rewrites the
whole file on every save — fine for one tuning run, pathological for a
long-running daemon absorbing answers from many workloads. The sharded
ledger splits the same schema across ``shards`` files::

    <root>/
      MANIFEST.json      {"version": 1, "shards": 8}
      shard-00.json      a TuningLedger file (entries + answers)
      shard-01.json
      ...

Routing is by hash prefix: entry keys (``<wsig>/<decision>``) shard on
the workload signature, answer records shard on the request
fingerprint — both already uniform hex digests, so shards stay
balanced without any placement table. Each shard is a full
:class:`TuningLedger` and inherits its crash story wholesale: atomic
temp-file-plus-fsync replace, advisory-locked read-merge-write saves,
salvage-and-quarantine loads. A ``kill -9`` mid-save can lose at most
the in-flight shard's *unwritten delta*, never corrupt one.

The class duck-types the ``TuningLedger`` surface the tuning oracle
uses (``get``/``put``/``save``/``hits``/``misses``/``save_failures``),
so ``tune(..., ledger=ShardedLedger(root))`` works unchanged.

:func:`migrate_single_file` reshards an existing single-file ledger;
:func:`open_ledger` picks the right class from a path (directory or
``.json`` file), which is what every CLI's ``--ledger`` flag calls.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.bench.perf_log import locked, write_atomic
from repro.tuner.oracle import EvalOutcome, TuningLedger
from repro.tuner.space import Decision

MANIFEST = "MANIFEST.json"
DEFAULT_SHARDS = 8


def shard_index(hex_key: str, shards: int) -> int:
    """Route a hex digest (wsig or request fingerprint) to a shard."""
    return int(hex_key[:8], 16) % shards


class ShardedLedger:
    """A directory of :class:`TuningLedger` shards behind one surface.

    Shards load lazily (a daemon answering one workload never parses
    the other seven files) and save only when dirty. The manifest pins
    the shard count, so every process that opens the same root routes
    identically; it is written under the shared advisory lock the
    first time the root is materialized.
    """

    def __init__(
        self, root: os.PathLike, shards: Optional[int] = None
    ):
        self.path = Path(root)
        self.hits = 0
        self.misses = 0
        #: Manifest writes that failed (shard save failures are
        #: tracked on the shards themselves; see :attr:`save_failures`).
        self._manifest_failures = 0
        self.shards = self._resolve_shard_count(shards)
        self._loaded: Dict[int, TuningLedger] = {}
        self._dirty: set = set()

    # -- layout --------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.path / MANIFEST

    def _shard_path(self, index: int) -> Path:
        return self.path / f"shard-{index:02d}.json"

    def _resolve_shard_count(self, requested: Optional[int]) -> int:
        """The manifest's count wins over the constructor argument —
        re-opening an existing root with a different ``shards`` value
        would silently mis-route every key."""
        manifest = self._manifest_path()
        if manifest.exists():
            try:
                data = json.loads(manifest.read_text())
                count = int(data["shards"])
                if count > 0:
                    return count
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                pass
        count = requested or DEFAULT_SHARDS
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            with locked(manifest):
                if not manifest.exists():
                    payload = {"version": 1, "shards": count}
                    write_atomic(
                        manifest,
                        json.dumps(payload, sort_keys=True) + "\n",
                    )
                else:
                    # Another process won the race; adopt its count.
                    data = json.loads(manifest.read_text())
                    count = int(data["shards"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self._manifest_failures += 1
        return count

    def _shard(self, index: int) -> TuningLedger:
        shard = self._loaded.get(index)
        if shard is None:
            shard = TuningLedger(self._shard_path(index))
            self._loaded[index] = shard
        return shard

    def _shard_for(self, hex_key: str) -> Tuple[int, TuningLedger]:
        index = shard_index(hex_key, self.shards)
        return index, self._shard(index)

    # -- the TuningLedger surface the oracle uses ----------------------

    def get(self, wsig: str, decision: Decision) -> Optional[EvalOutcome]:
        _, shard = self._shard_for(wsig)
        return shard.get(wsig, decision)

    def put(self, wsig: str, outcome: EvalOutcome):
        index, shard = self._shard_for(wsig)
        shard.put(wsig, outcome)
        self._dirty.add(index)

    def save(self, stats: Optional[Dict] = None) -> bool:
        """Persist every dirty shard; True only if all writes landed."""
        ok = True
        for index in sorted(self._dirty):
            ok = self._loaded[index].save(stats) and ok
        if ok:
            self._dirty.clear()
        return ok

    @property
    def save_failures(self) -> int:
        return self._manifest_failures + sum(
            s.save_failures for s in self._loaded.values()
        )

    @property
    def salvaged(self) -> int:
        return sum(s.salvaged for s in self._loaded.values())

    def __len__(self) -> int:
        self.load_all()
        return sum(len(s) for s in self._loaded.values())

    # -- answers (the serving index) -----------------------------------

    def get_answer(self, fingerprint: str) -> Optional[Dict]:
        _, shard = self._shard_for(fingerprint)
        return shard.get_answer(fingerprint)

    def put_answer(self, fingerprint: str, record: Dict):
        index, shard = self._shard_for(fingerprint)
        shard.put_answer(fingerprint, record)
        self._dirty.add(index)

    def answers(self) -> Iterator[Tuple[str, Dict]]:
        """Every persisted answer (loads all shards — daemon startup)."""
        self.load_all()
        for index in range(self.shards):
            yield from self._loaded[index].answers.items()

    def load_all(self):
        for index in range(self.shards):
            self._shard(index)

    def reload(self):
        """Drop the in-memory state and re-read from disk (readers
        polling a root other processes write into)."""
        self._loaded.clear()
        self._dirty.clear()


def migrate_single_file(
    source: os.PathLike,
    root: os.PathLike,
    shards: int = DEFAULT_SHARDS,
) -> ShardedLedger:
    """Reshard an existing single-file ledger into ``root``.

    Every entry routes by its key's workload-signature prefix, every
    answer by its fingerprint; the source file is left untouched, so
    the migration is repeatable and abortable. Returns the populated
    (and saved) :class:`ShardedLedger`.
    """
    single = TuningLedger(source)
    sharded = ShardedLedger(root, shards=shards)
    for key, record in single.entries.items():
        wsig = key.split("/", 1)[0]
        index, shard = sharded._shard_for(wsig)
        shard.entries[key] = record
        sharded._dirty.add(index)
    for fingerprint, record in single.answers.items():
        sharded.put_answer(fingerprint, record)
    sharded.save()
    return sharded


def open_ledger(path: Optional[os.PathLike]):
    """The ``--ledger`` rule shared by every CLI: ``None`` stays
    ``None``; an existing directory (or a new path without a ``.json``
    suffix) is a :class:`ShardedLedger`; anything else is a classic
    single-file :class:`TuningLedger`."""
    if path is None:
        return None
    p = Path(path)
    if p.is_dir():
        return ShardedLedger(p)
    if p.exists():
        return TuningLedger(p)
    return TuningLedger(p) if p.suffix == ".json" else ShardedLedger(p)
