"""Supervised tune dispatch: crash-proof forks, retries, quarantine.

The daemon originally shipped miss batches through
:func:`repro.bench.parallel.run_points`, whose ``multiprocessing.Pool``
has exactly the wrong failure mode for a server: a SIGKILL'd worker
(OOM killer, chaos injection, a tune that segfaults the interpreter)
hangs ``pool.map`` forever, wedging the dispatcher thread and every
client waiting on that batch. This module replaces the pool with a
per-point supervised fork:

* :func:`fork_point` runs one sweep point in a dedicated ``fork``-start
  :class:`multiprocessing.Process` connected by a
  :class:`~multiprocessing.Pipe`. A child that dies without delivering
  its envelope surfaces as pipe EOF — a detected ``("crash", detail)``
  outcome, never a hang. The envelope itself (rows + cache, metrics,
  span deltas) is :func:`repro.bench.parallel._run_point`'s, so cache
  warmth and observability merge back exactly as pool dispatch did.
* :func:`run_supervised` wraps the fork in retry-with-backoff: crashes
  retry up to ``retries`` times (counted in ``serve.crashes`` /
  ``serve.retried``), structured ``("err", ...)`` rows do not (the
  worker already caught the exception; re-running a deterministic
  failure buys nothing).
* :class:`QuarantineStore` persists consecutive-crash counts per
  request fingerprint, so a poison request — one that kills its worker
  every time — is cut off after ``threshold`` crashes with a durable
  infeasible-with-reason answer (:func:`quarantined_answer`) instead of
  being re-tuned forever across daemon restarts.

Platforms without ``fork`` degrade to in-process execution, where a
crash cannot be distinguished from daemon death anyway — supervision
is only meaningful when the tune runs in a child.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.bench.cache import SIM_CACHE, install_baselines
from repro.bench.parallel import (
    _DISPATCH_LOCK,
    _fork_available,
    _run_point,
    _run_point_strict,
)
from repro.obs.metrics import METRICS
from repro.obs.spans import install_spans

QUARANTINE_FILE = "QUARANTINE.json"

#: Backoff cap: a serving daemon must not sleep seconds between retries
#: while clients burn their deadlines.
_MAX_BACKOFF_S = 1.0


def _child_main(conn, payload):
    """Run one sweep point in the child and ship the outcome back."""
    # The fork may land while *another* dispatcher thread in the
    # parent holds the shared dispatch lock — the child inherits it
    # permanently locked (the owning thread does not exist here) and
    # its own sequential run_points would deadlock on it. Locks don't
    # survive forks; give the child a fresh one.
    import threading

    from repro.bench import parallel as _parallel

    _parallel._DISPATCH_LOCK = threading.Lock()
    try:
        outcome = _run_point(payload)
    except BaseException:  # _run_point never raises, but stay crashable
        conn.close()
        raise
    try:
        conn.send(outcome)
    finally:
        conn.close()


def fork_point(
    name: str, kwargs: dict, timeout_s: Optional[float] = None
) -> Tuple[str, object]:
    """Run one sweep point in a supervised forked child.

    Returns ``("ok", envelope)`` (see
    :func:`repro.bench.parallel._run_point`), ``("err", traceback)``
    for an exception the worker caught itself, or ``("crash", detail)``
    when the child died without delivering — killed, segfaulted, or
    past ``timeout_s`` (a hard wall-clock bound on the whole fork, on
    top of the oracle's own per-candidate timeout; the child is killed
    on expiry).
    """
    if not _fork_available():
        try:
            status, result = _run_point_strict((name, kwargs))
        except Exception as err:
            return ("err", f"{type(err).__name__}: {err}")
        return (status, result)
    ctx = multiprocessing.get_context("fork")
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_main, args=(send, (name, kwargs)), daemon=True
    )
    proc.start()
    send.close()  # the parent's copy; EOF now tracks the child alone
    try:
        if timeout_s is not None and not recv.poll(timeout_s):
            proc.kill()
            proc.join()
            return (
                "crash",
                f"worker pid={proc.pid} exceeded {timeout_s}s wall "
                "clock and was killed",
            )
        outcome = recv.recv()
    except EOFError:
        proc.join()
        return (
            "crash",
            f"worker pid={proc.pid} died without delivering "
            f"(exitcode={proc.exitcode})",
        )
    finally:
        recv.close()
    proc.join()
    return outcome


def install_envelope(envelope) -> list:
    """Merge a worker envelope into the parent's process-global state
    and return its rows. Serialized on the shared dispatch lock — the
    daemon may run several supervised forks concurrently."""
    rows, sim_delta, base_delta, metrics_delta, spans = envelope
    with _DISPATCH_LOCK:
        SIM_CACHE.install(sim_delta)
        install_baselines(base_delta)
        METRICS.install(metrics_delta)
        install_spans(spans)
    return rows


def run_supervised(
    name: str,
    kwargs: dict,
    retries: int = 2,
    backoff_s: float = 0.05,
    timeout_s: Optional[float] = None,
    on_attempt: Optional[Callable[[int], None]] = None,
) -> Tuple[str, object, int]:
    """Fork a point, retrying crashes with exponential backoff.

    Returns ``(status, result, crashes)`` where ``status`` is ``"ok"``
    (``result`` is the installed row list), ``"err"`` (a traceback
    string from the worker), or ``"crash"`` (every attempt died;
    ``result`` is the last crash detail). ``crashes`` counts dead
    children across all attempts — the quarantine's currency.
    ``on_attempt`` is called with the attempt index before each fork
    (the chaos harness uses it to aim kills).
    """
    crashes = 0
    delay = backoff_s
    detail: object = "no attempts made"
    for attempt in range(retries + 1):
        if on_attempt is not None:
            on_attempt(attempt)
        status, result = fork_point(name, kwargs, timeout_s=timeout_s)
        if status == "ok":
            return ("ok", install_envelope(result), crashes)
        if status == "err":
            return ("err", result, crashes)
        crashes += 1
        METRICS.inc("serve.crashes")
        detail = result
        if attempt < retries:
            METRICS.inc("serve.retried")
            time.sleep(min(delay, _MAX_BACKOFF_S))
            delay *= 2
    return ("crash", detail, crashes)


class QuarantineStore:
    """Durable consecutive-crash bookkeeping per request fingerprint.

    Lives beside the sharded ledger (``<root>/QUARANTINE.json``) and
    uses the same advisory-lock + atomic-replace discipline, so a
    daemon restart — or a concurrent daemon on the same root — sees
    every recorded crash. Counts are *consecutive*: a successful tune
    clears its fingerprint, so a request that crashed from transient
    pressure is never quarantined for old sins.
    """

    def __init__(self, root, threshold: int = 3):
        self.path = Path(root) / QUARANTINE_FILE
        self.threshold = max(1, int(threshold))

    def _load(self) -> Dict[str, Dict]:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def _write(self, data: Dict[str, Dict]):
        from repro.bench.perf_log import write_atomic

        write_atomic(
            self.path, json.dumps(data, sort_keys=True, indent=1)
        )

    def record_crashes(
        self, fingerprint: str, crashes: int, error: str
    ) -> int:
        """Add ``crashes`` consecutive crashes; returns the new total."""
        from repro.bench.perf_log import locked

        with locked(self.path):
            data = self._load()
            entry = data.get(fingerprint) or {"crashes": 0}
            entry["crashes"] = int(entry.get("crashes", 0)) + crashes
            entry["error"] = error
            data[fingerprint] = entry
            self._write(data)
            return entry["crashes"]

    def record_success(self, fingerprint: str):
        """A clean tune resets the consecutive-crash count."""
        from repro.bench.perf_log import locked

        with locked(self.path):
            data = self._load()
            if fingerprint in data:
                del data[fingerprint]
                self._write(data)

    def crashes(self, fingerprint: str) -> int:
        entry = self._load().get(fingerprint) or {}
        return int(entry.get("crashes", 0))

    def poisoned(self, fingerprint: str) -> bool:
        return self.crashes(fingerprint) >= self.threshold

    def reason(self, fingerprint: str) -> str:
        entry = self._load().get(fingerprint) or {}
        return str(entry.get("error", "unknown"))


def quarantined_answer(fingerprint: str, reason: str) -> Dict:
    """The durable answer record for a quarantined request.

    Shaped like an infeasible :class:`repro.api.ScheduleAnswer` record
    (``cost: "infeasible"`` round-trips to ``feasible=False``) with
    ``provenance: "quarantined"`` and the crash reason attached, so
    hits on a restarted daemon serve it from the index like any other
    answer instead of re-tuning the crasher.
    """
    from repro.api import QUARANTINED

    return {
        "decision": "",
        "formats": {},
        "cost": "infeasible",
        "comm_time": 0.0,
        "compute_time": 0.0,
        "inter_node_bytes": 0.0,
        "max_memory_bytes": 0.0,
        "num_steps": 0,
        "provenance": QUARANTINED,
        "evaluations": 0,
        "request_fingerprint": fingerprint,
        "quarantine_reason": reason,
    }
