"""The daemon's tune worker: one fork-pool sweep per miss batch.

``serve_tune_batch`` is an ordinary :mod:`repro.bench.parallel` sweep
(registered under that name), so the daemon dispatches misses through
the exact machinery the figure generators use: one forked child per
request (``always_fork=True`` keeps even a lone miss out of the
daemon's event-loop process), simulation-cache and metrics deltas
shipped back in the envelope, in-process retry on worker failure.

Each worker tunes with ``jobs=1`` — pool workers are daemonic and may
not fork grandchildren; parallelism across concurrent misses comes
from the pool itself.
"""

from __future__ import annotations

import os
import signal
from typing import Dict, List, Optional

from repro.api import ScheduleRequest, tune_request
from repro.bench.parallel import register_sweep
from repro.obs.metrics import METRICS
from repro.serve.shard import open_ledger
from repro.tuner.space import Decision


def serve_tune_batch(
    records: List[Dict],
    ledger_path: Optional[str] = None,
    warm: Optional[Dict[str, str]] = None,
    timeout_s: Optional[float] = None,
    chaos_kill: bool = False,
    parent_pid: Optional[int] = None,
) -> List[Dict]:
    """Tune every request record; returns one row per request.

    ``warm`` maps request fingerprints to the *encoded decision* of
    their nearest tuned neighbor; those requests search only the warm
    neighborhood (``strategy="warm"`` — strictly fewer simulations
    than a cold tune). Completed answers are persisted to the ledger
    (lock-merge-save, so concurrent workers never drop each other's
    work) before the row is returned.

    Rows are ``{"status": "ok", "fingerprint", "answer"}`` or
    ``{"status": "error", "fingerprint", "error"}`` — a bad request
    never poisons the batch.

    ``chaos_kill`` is the seeded chaos harness's injection point
    (:mod:`repro.faults.chaos`): the worker SIGKILLs *itself* right
    where a real crash would lose the unpersisted answer. Guarded by
    ``parent_pid`` so a no-fork platform (where the "worker" is the
    daemon process) can never shoot the daemon.
    """
    if (
        chaos_kill
        and parent_pid is not None
        and os.getpid() != parent_pid
    ):
        os.kill(os.getpid(), signal.SIGKILL)
    warm = warm or {}
    ledger = open_ledger(ledger_path)
    rows: List[Dict] = []
    for record in records:
        fingerprint = ""
        try:
            request = ScheduleRequest.from_record(record)
            fingerprint = request.fingerprint()
            warm_encoded = warm.get(fingerprint)
            if warm_encoded:
                METRICS.inc("serve.warm_started")
                result = tune_request(
                    request,
                    warm_start=Decision.decode(warm_encoded),
                    strategy="warm",
                    ledger=ledger,
                    timeout_s=timeout_s,
                )
            else:
                result = tune_request(
                    request, ledger=ledger, timeout_s=timeout_s
                )
            answer = result.answer
            METRICS.inc("serve.tunes")
            if ledger is not None:
                ledger.put_answer(
                    fingerprint,
                    {"request": record, "answer": answer.to_record()},
                )
                ledger.save()
            rows.append({
                "status": "ok",
                "fingerprint": fingerprint,
                "answer": answer.to_record(),
            })
        except Exception as err:  # ship the failure, keep the batch
            METRICS.inc("serve.errors")
            rows.append({
                "status": "error",
                "fingerprint": fingerprint,
                "error": f"{type(err).__name__}: {err}",
            })
    return rows


register_sweep("serve_tune_batch", serve_tune_batch)
