"""Discrete-event performance model of the paper's testbed.

The executor produces a lockstep trace (copy batches + per-processor leaf
work); this package turns it into time. The model is calibrated to the
Lassen supercomputer (Section 7 experimental setup): dual-socket Power9
nodes, four NVLink-connected 16 GiB V100s per node, an EDR InfiniBand
NIC per node, with Legion's measured GPU-direct bandwidth limitation and
its 4-of-40-cores runtime tax.
"""

from repro.sim.params import LASSEN, MachineParams
from repro.sim.costmodel import CostModel
from repro.sim.report import SimReport

__all__ = ["CostModel", "LASSEN", "MachineParams", "SimReport"]
