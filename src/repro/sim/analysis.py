"""Trace analysis: classify and summarize communication patterns.

The paper's evaluation discussion reasons about *why* algorithms behave
as they do — systolic vs broadcast traffic, collective fan-outs, 2-D vs
3-D volume, replication memory. This module extracts those
characterizations from execution traces so benchmarks, tests and users
can make the same arguments quantitatively.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.machine.machine import Machine
from repro.runtime.trace import Trace


@dataclass
class StepSummary:
    """Communication character of one lockstep phase."""

    label: str
    copies: int
    nbytes: int
    inter_node_bytes: int
    max_fanout: int
    max_shift: int
    reductions: int


@dataclass
class TraceSummary:
    """Whole-trace communication characterization."""

    steps: List[StepSummary] = field(default_factory=list)
    total_bytes: int = 0
    inter_node_bytes: int = 0
    reduction_bytes: int = 0

    @property
    def pattern(self) -> str:
        """Dominant pattern: systolic / broadcast / mixed / none.

        Classified over steady-state phases (the first communication
        phase is excluded: systolic algorithms begin with an alignment
        shift of unbounded distance, Figure 11).
        """
        steady = [s for s in self.steps if s.copies][1:]
        if not steady:
            return "none"
        shifts = [s for s in steady if s.max_shift <= 1 and s.max_fanout <= 1]
        casts = [s for s in steady if s.max_fanout > 1]
        if len(shifts) == len(steady):
            return "systolic"
        if len(casts) == len(steady):
            return "broadcast"
        return "mixed"

    @property
    def comm_phases(self) -> int:
        return sum(1 for s in self.steps if s.copies)


def summarize(trace: Trace, machine: Machine) -> TraceSummary:
    """Characterize a trace's communication structure.

    Works on full traces and on orbit-compressed ones: a compressed
    step's fan-outs come from its pinned per-member collective columns
    (a class representative's coordinates alone cannot attribute
    fan-out), while the shift distance — translation-invariant across a
    class — comes from the representatives.
    """
    summary = TraceSummary()
    for step in trace.steps:
        compressed = any(c.count > 1 for c in step.copies)
        fanout = Counter()
        max_shift = 0
        reductions = 0
        nbytes = 0
        inter = 0
        for copy in step.copies:
            nbytes += copy.nbytes * copy.count
            if copy.inter_node:
                inter += copy.nbytes * copy.count
            if copy.reduce:
                reductions += copy.count
                summary.reduction_bytes += copy.nbytes * copy.count
                continue
            if not compressed:
                fanout[(copy.tensor, copy.src_coords)] += 1
            if copy.src_coords and copy.dst_coords:
                max_shift = max(
                    max_shift,
                    machine.torus_distance(copy.src_coords, copy.dst_coords),
                )
        if compressed:
            cols = step.columns()
            if cols.n:
                fan = Counter()
                for group, count, reduce in zip(
                    cols.group, cols.count, cols.reduce
                ):
                    if not reduce:
                        fan[int(group)] += int(count)
                fanout = fan
        summary.steps.append(
            StepSummary(
                label=step.label,
                copies=sum(c.count for c in step.copies),
                nbytes=nbytes,
                inter_node_bytes=inter,
                max_fanout=max(fanout.values()) if fanout else 0,
                max_shift=max_shift,
                reductions=reductions,
            )
        )
        summary.total_bytes += nbytes
        summary.inter_node_bytes += inter
    return summary


def per_tensor_bytes(trace: Trace) -> Dict[str, int]:
    """Bytes moved per tensor (which operand dominates traffic?)."""
    out: Dict[str, int] = defaultdict(int)
    for copy in trace.copies:
        out[copy.tensor] += copy.nbytes * copy.count
    return dict(out)


def node_traffic_matrix(trace: Trace) -> Dict[Tuple[int, int], int]:
    """Bytes between node pairs — the paper's Figure 9 icon data.

    Orbit-compressed steps are read through their pinned per-member
    columns: the members of a class span many node pairs, which a
    single representative record cannot attribute.
    """
    out: Dict[Tuple[int, int], int] = defaultdict(int)
    for step in trace.steps:
        if any(c.count > 1 for c in step.copies):
            cols = step.columns()
            sel = cols.inter
            for src, dst, nbytes, count in zip(
                cols.src_node[sel],
                cols.dst_node[sel],
                cols.nbytes[sel],
                cols.count[sel],
            ):
                out[(int(src), int(dst))] += int(nbytes) * int(count)
            continue
        for copy in step.copies:
            src, dst = copy.src_proc.node_id, copy.dst_proc.node_id
            if src != dst:
                out[(src, dst)] += copy.nbytes * copy.count
    return dict(out)


def communication_report(trace: Trace, machine: Machine) -> str:
    """A human-readable communication report for a kernel execution."""
    summary = summarize(trace, machine)
    tensors = per_tensor_bytes(trace)
    lines = [
        f"pattern       : {summary.pattern}",
        f"comm phases   : {summary.comm_phases}",
        f"total bytes   : {summary.total_bytes:,}",
        f"inter-node    : {summary.inter_node_bytes:,}",
        f"reduced bytes : {summary.reduction_bytes:,}",
    ]
    for name, nbytes in sorted(tensors.items()):
        lines.append(f"  {name:<12s}: {nbytes:,} bytes")
    return "\n".join(lines)
