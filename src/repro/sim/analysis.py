"""Trace analysis: classify and summarize communication patterns.

The paper's evaluation discussion reasons about *why* algorithms behave
as they do — systolic vs broadcast traffic, collective fan-outs, 2-D vs
3-D volume, replication memory. This module extracts those
characterizations from execution traces so benchmarks, tests and users
can make the same arguments quantitatively.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.machine.machine import Machine
from repro.runtime.trace import Trace


@dataclass
class StepSummary:
    """Communication character of one lockstep phase."""

    label: str
    copies: int
    nbytes: int
    inter_node_bytes: int
    max_fanout: int
    max_shift: int
    reductions: int


@dataclass
class TraceSummary:
    """Whole-trace communication characterization."""

    steps: List[StepSummary] = field(default_factory=list)
    total_bytes: int = 0
    inter_node_bytes: int = 0
    reduction_bytes: int = 0

    @property
    def pattern(self) -> str:
        """Dominant pattern: systolic / broadcast / mixed / none.

        Classified over steady-state phases (the first communication
        phase is excluded: systolic algorithms begin with an alignment
        shift of unbounded distance, Figure 11).
        """
        steady = [s for s in self.steps if s.copies][1:]
        if not steady:
            return "none"
        shifts = [s for s in steady if s.max_shift <= 1 and s.max_fanout <= 1]
        casts = [s for s in steady if s.max_fanout > 1]
        if len(shifts) == len(steady):
            return "systolic"
        if len(casts) == len(steady):
            return "broadcast"
        return "mixed"

    @property
    def comm_phases(self) -> int:
        return sum(1 for s in self.steps if s.copies)


def summarize(trace: Trace, machine: Machine) -> TraceSummary:
    """Characterize a trace's communication structure."""
    summary = TraceSummary()
    for step in trace.steps:
        fanout = Counter()
        max_shift = 0
        reductions = 0
        nbytes = 0
        inter = 0
        for copy in step.copies:
            nbytes += copy.nbytes
            if copy.inter_node:
                inter += copy.nbytes
            if copy.reduce:
                reductions += 1
                summary.reduction_bytes += copy.nbytes
                continue
            fanout[(copy.tensor, copy.src_coords)] += 1
            if copy.src_coords and copy.dst_coords:
                max_shift = max(
                    max_shift,
                    machine.torus_distance(copy.src_coords, copy.dst_coords),
                )
        summary.steps.append(
            StepSummary(
                label=step.label,
                copies=len(step.copies),
                nbytes=nbytes,
                inter_node_bytes=inter,
                max_fanout=max(fanout.values()) if fanout else 0,
                max_shift=max_shift,
                reductions=reductions,
            )
        )
        summary.total_bytes += nbytes
        summary.inter_node_bytes += inter
    return summary


def per_tensor_bytes(trace: Trace) -> Dict[str, int]:
    """Bytes moved per tensor (which operand dominates traffic?)."""
    out: Dict[str, int] = defaultdict(int)
    for copy in trace.copies:
        out[copy.tensor] += copy.nbytes
    return dict(out)


def node_traffic_matrix(trace: Trace) -> Dict[Tuple[int, int], int]:
    """Bytes between node pairs — the paper's Figure 9 icon data."""
    out: Dict[Tuple[int, int], int] = defaultdict(int)
    for copy in trace.copies:
        src, dst = copy.src_proc.node_id, copy.dst_proc.node_id
        if src != dst:
            out[(src, dst)] += copy.nbytes
    return dict(out)


def communication_report(trace: Trace, machine: Machine) -> str:
    """A human-readable communication report for a kernel execution."""
    summary = summarize(trace, machine)
    tensors = per_tensor_bytes(trace)
    lines = [
        f"pattern       : {summary.pattern}",
        f"comm phases   : {summary.comm_phases}",
        f"total bytes   : {summary.total_bytes:,}",
        f"inter-node    : {summary.inter_node_bytes:,}",
        f"reduced bytes : {summary.reduction_bytes:,}",
    ]
    for name, nbytes in sorted(tensors.items()):
        lines.append(f"  {name:<12s}: {nbytes:,} bytes")
    return "\n".join(lines)
