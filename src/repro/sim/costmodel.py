"""Turning execution traces into time.

Per step (bulk-synchronous phase):

* **Communication.** Copies are grouped into collectives: same source
  instance to many destinations is a multicast (tree: the source link
  carries at most ``bcast_relay_factor`` payloads, receivers relay);
  reductions are inverted trees keyed by destination. Inter-node traffic
  contends for each node's NIC (in and out separately); intra-node GPU
  traffic contends for NVLink per processor. GPU-resident data crosses
  nodes at the measured GPU-direct rate, host-resident at the full NIC
  rate — the distinction behind the paper's COSMA-vs-DISTAL GPU gap.

  Broadcast trees charge their *interior* nodes for retransmission: of a
  fan-out of ``k`` inter-node receivers (``k > 2``), ``ceil(k / 2)``
  receivers forward the full payload once. (The seed spread half a
  payload over every receiver instead, underestimating interior-node
  congestion under the max-link model.)

  The whole analysis is vectorized: it consumes the step's columnar copy
  view (:class:`~repro.runtime.trace.CopyColumns`) and aggregates link
  traffic with numpy scatter-adds rather than per-copy Python loops.
* **Compute.** Per processor, a roofline: FLOPs at the leaf kernel's
  efficiency or bytes at memory bandwidth, whichever dominates. Flops
  are priced per kernel (``Work.kernel_flops``): a processor running a
  GEMM leaf and a naive leaf in one step pays each at its own
  efficiency. A step takes as long as its slowest processor (lockstep).
* **Overhead.** Each step pays the runtime's task-launch overhead once
  per leaf invocation on its busiest processor
  (``task_overhead * max(Work.invocations)``); over-decomposed grids
  launch more tasks per processor and pay proportionally.
* **Overlap.** With a runtime that overlaps communication and
  computation (Legion, COSMA) a step costs ``max(comm, compute)``;
  blocking systems pay ``comm + compute``. The paper attributes
  ScaLAPACK's and CTF's CPU shortfall exactly to this (Section 7.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.cluster import Cluster, ProcessorKind
from repro.obs.metrics import METRICS
from repro.obs.spans import span
from repro.runtime.trace import CopyColumns, Step, Trace
from repro.sim.params import MachineParams
from repro.sim.report import PhaseBreakdown, PhaseCost, SimReport

GEMM_KERNELS = {"blas_gemm", "cublas_gemm", "gemm"}

#: One processor-class's leaf work inside a skeleton step:
#: ``(proc_id, ((kernel, flops), ...), bytes_touched, staged_bytes,
#: invocations, count)``.
WorkEntry = Tuple[int, Tuple[Tuple[Optional[str], float], ...], float,
                  float, int, int]


@dataclass
class TraceSkeleton:
    """A priced sub-trace: everything needed to re-derive a
    :class:`SimReport` without the trace.

    Communication is pre-priced per step (``t_comm`` — leaf-kernel
    independent, since copies never depend on the leaf substitution);
    compute is kept as per-processor work entries so the tuner's
    incremental oracle can re-price a shared phase structure under a
    different leaf kernel (:mod:`repro.tuner.oracle`). Skeletons are
    small — per-class work rows and one float per step — independent of
    the machine size.
    """

    steps: List[Tuple[float, Tuple[WorkEntry, ...]]]
    inter_node_bytes: float
    total_copy_bytes: float
    num_nodes: int
    memory_high_water: Dict[str, int] = field(default_factory=dict)
    #: Per-step attribution columns the observability layer consumes
    #: (``price_skeleton(..., breakdown=True)``): phase labels, byte
    #: totals, and whether the step's communication price was replayed
    #: from an earlier identical copy batch. Optional — a skeleton
    #: without them prices identically but yields label-less
    #: breakdowns.
    labels: Optional[Tuple[str, ...]] = None
    step_copy_bytes: Optional[Tuple[int, ...]] = None
    step_inter_bytes: Optional[Tuple[int, ...]] = None
    price_replayed: Optional[Tuple[bool, ...]] = None


def _work_entries(step: Step) -> Tuple[WorkEntry, ...]:
    """A step's work table as skeleton entries (one layout, one place)."""
    return tuple(
        (
            proc_id,
            tuple(w.kernel_flops.items()),
            w.bytes_touched,
            w.staged_bytes,
            w.invocations,
            w.count,
        )
        for proc_id, w in step.work.items()
    )


def _step_digest(cols: CopyColumns) -> Tuple:
    """Content digest of a step's copy batch (collision-checked only by
    probability; used to reuse a *price* across identical steps, where a
    collision would mis-time both executors identically)."""
    return (
        cols.n,
        cols.num_groups,
        hash(cols.nbytes.tobytes()),
        hash(cols.src_proc.tobytes()),
        hash(cols.dst_proc.tobytes()),
        hash(cols.group.tobytes()),
        hash(cols.reduce.tobytes()),
        hash(cols.gpu_resident.tobytes()),
        hash(cols.src_gpu.tobytes()),
        hash(cols.dst_gpu.tobytes()),
        hash(cols.count.tobytes()),
    )


class CostModel:
    """Times traces produced by the executor."""

    def __init__(self, cluster: Cluster, params: MachineParams):
        self.cluster = cluster
        self.params = params
        self._procs = {p.proc_id: p for p in cluster.processors}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def time_trace(self, trace: Trace, breakdown: bool = False) -> SimReport:
        """Total time and derived rates for a full kernel execution.

        ``breakdown=True`` attaches a per-phase
        :class:`~repro.sim.report.PhaseBreakdown` to the report; every
        scalar number is unchanged (the breakdown is derived from the
        same priced columns, in the same order).
        """
        return self.price_skeleton(
            self.skeleton_of(trace), breakdown=breakdown
        )

    def skeleton_of(self, trace: Trace) -> TraceSkeleton:
        """Price a trace's communication and capture its work entries.

        Steps with byte-identical copy batches (a systolic algorithm's
        steady state repeats one batch every iteration) are priced once
        via a content digest, so communication pricing scales with the
        number of *distinct* steps. The digest hit pattern is kept per
        step (``price_replayed``) — the replay provenance the
        observability layer surfaces — and counted in the metrics
        registry.
        """
        with span("costmodel.skeleton"):
            steps: List[Tuple[float, Tuple[WorkEntry, ...]]] = []
            priced: Dict[Tuple, float] = {}
            labels: List[str] = []
            copy_bytes: List[int] = []
            inter_bytes: List[int] = []
            replayed: List[bool] = []
            price_hits = 0
            for step in trace.steps:
                cols = step.columns()
                hit = False
                if cols.n == 0:
                    t_comm = 0.0
                else:
                    digest = _step_digest(cols)
                    t_comm = priced.get(digest)
                    hit = t_comm is not None
                    if not hit:
                        t_comm = self.comm_time(cols)
                        priced[digest] = t_comm
                steps.append((t_comm, _work_entries(step)))
                labels.append(step.label)
                copy_bytes.append(step.total_copy_bytes)
                inter_bytes.append(step.inter_node_bytes)
                replayed.append(hit)
                price_hits += hit
            METRICS.inc("costmodel.step_price_hits", price_hits)
            METRICS.inc(
                "costmodel.step_price_misses", len(steps) - price_hits
            )
            # The per-step byte columns sum (exact integers, same
            # order) to the trace aggregates the seed read directly.
            return TraceSkeleton(
                steps=steps,
                inter_node_bytes=sum(inter_bytes),
                total_copy_bytes=sum(copy_bytes),
                num_nodes=self.cluster.num_nodes,
                memory_high_water=dict(trace.memory_high_water),
                labels=tuple(labels),
                step_copy_bytes=tuple(copy_bytes),
                step_inter_bytes=tuple(inter_bytes),
                price_replayed=tuple(replayed),
            )

    def price_skeleton(
        self,
        skeleton: TraceSkeleton,
        kernel_map: Optional[Dict[Optional[str], Optional[str]]] = None,
        breakdown: bool = False,
    ) -> SimReport:
        """A :class:`SimReport` from a priced sub-trace.

        ``kernel_map`` relabels leaf kernels before compute pricing —
        the incremental oracle's re-pricing of a cached phase structure
        whose candidate differs only in the substituted leaf.

        ``breakdown=True`` additionally attaches a
        :class:`~repro.sim.report.PhaseBreakdown` built from the same
        per-step quantities (identical floats, identical summation
        order), so parity-pinned reports stay byte-identical.
        """
        total = 0.0
        comm_total = 0.0
        compute_total = 0.0
        flops = 0.0
        bytes_touched = 0.0
        phases: List[PhaseCost] = []
        for index, (t_comm, work) in enumerate(skeleton.steps):
            if breakdown:
                entry_times = self._compute_entries(
                    work, kernel_map, per_entry=True
                )
                t_compute = (
                    float(entry_times.max()) if entry_times.size else 0.0
                )
            else:
                t_compute = self._compute_entries(work, kernel_map)
            if self.params.overlap:
                t_step = max(t_comm, t_compute)
            else:
                t_step = t_comm + t_compute
            overhead = self.params.task_overhead * max(
                (entry[4] for entry in work), default=1
            )
            t_step += overhead
            total += t_step
            comm_total += t_comm
            compute_total += t_compute
            step_flops = 0.0
            for entry in work:
                step_flops += sum(fl for _k, fl in entry[1]) * entry[5]
                bytes_touched += entry[2] * entry[5]
            flops += step_flops
            if breakdown:
                phases.append(PhaseCost(
                    index=index,
                    label=(
                        skeleton.labels[index]
                        if skeleton.labels is not None
                        else f"step {index}"
                    ),
                    comm_s=t_comm,
                    compute_s=t_compute,
                    overhead_s=overhead,
                    total_s=t_step,
                    copy_bytes=(
                        skeleton.step_copy_bytes[index]
                        if skeleton.step_copy_bytes is not None
                        else 0
                    ),
                    inter_node_bytes=(
                        skeleton.step_inter_bytes[index]
                        if skeleton.step_inter_bytes is not None
                        else 0
                    ),
                    flops=step_flops,
                    class_times=tuple(
                        (entry[0], entry[5], float(entry_times[i]))
                        for i, entry in enumerate(work)
                    ),
                    price_replayed=(
                        skeleton.price_replayed[index]
                        if skeleton.price_replayed is not None
                        else False
                    ),
                ))
        return SimReport(
            total_time=total,
            comm_time=comm_total,
            compute_time=compute_total,
            total_flops=flops,
            bytes_touched=bytes_touched,
            inter_node_bytes=skeleton.inter_node_bytes,
            total_copy_bytes=skeleton.total_copy_bytes,
            num_nodes=skeleton.num_nodes,
            memory_high_water=dict(skeleton.memory_high_water),
            num_steps=len(skeleton.steps),
            breakdown=(
                PhaseBreakdown(phases=tuple(phases)) if breakdown else None
            ),
        )

    # ------------------------------------------------------------------
    # Compute.
    # ------------------------------------------------------------------

    def compute_time(self, step: Step) -> float:
        return self._compute_entries(_work_entries(step), None)

    def _compute_entries(
        self,
        entries: Tuple[WorkEntry, ...],
        kernel_map: Optional[Dict[Optional[str], Optional[str]]],
        per_entry: bool = False,
    ):
        """Compute time of a step's work entries.

        Returns the bulk-synchronous step time ``float(worst.max())``,
        or — with ``per_entry=True`` — the per-entry ``worst`` array
        itself, whose max is that same float (the breakdown's per-class
        attribution reuses the identical roofline evaluation).
        """
        if not entries:
            return np.empty(0) if per_entry else 0.0
        params = self.params
        n = len(entries)
        gemm_flops = np.empty(n)
        other_flops = np.empty(n)
        bytes_touched = np.empty(n)
        staged = np.empty(n)
        is_gpu = np.empty(n, dtype=bool)
        for i, entry in enumerate(entries):
            is_gpu[i] = self._procs[entry[0]].kind is ProcessorKind.GPU
            g = o = 0.0
            for kern, fl in entry[1]:
                if kernel_map is not None:
                    kern = kernel_map.get(kern, kern)
                if kern in GEMM_KERNELS:
                    g += fl
                else:
                    o += fl
            gemm_flops[i] = g
            other_flops[i] = o
            bytes_touched[i] = entry[2]
            staged[i] = entry[3]
        rate = np.where(
            is_gpu,
            params.gpu_gflops,
            params.cpu_socket_gflops * params.runtime_core_fraction,
        )
        mem_bw = np.where(is_gpu, params.gpu_mem_bw, params.cpu_mem_bw)
        ooc = np.where(
            (staged > 0) & is_gpu, params.out_of_core_efficiency, 1.0
        )
        # Each kernel's flops at its own efficiency; a processor running
        # mixed leaves in one step executes them back to back.
        t_flops = gemm_flops / (rate * params.gemm_efficiency * ooc)
        t_flops += other_flops / (rate * params.naive_leaf_efficiency * ooc)
        t_bytes = bytes_touched / mem_bw
        t_staged = staged / params.pcie_bw
        worst = np.maximum(np.maximum(t_flops, t_bytes), t_staged)
        if per_entry:
            return worst
        return float(worst.max())

    # ------------------------------------------------------------------
    # Communication.
    # ------------------------------------------------------------------

    def comm_time(
        self,
        copies,
        columns: Optional[CopyColumns] = None,
    ) -> float:
        """Communication time of one step's copy batch.

        Consumes the columnar view (:class:`CopyColumns`) — pass it
        directly, or pass a ``Copy`` list to have it columnarized (the
        convenience path tests and analyses use).
        """
        if isinstance(copies, CopyColumns):
            cols = copies
        elif columns is not None:
            cols = columns
        else:
            cols = CopyColumns.from_copies(copies)
        if cols.n == 0:
            return 0.0
        # Orbit-compressed rows stand for `count` translated copies each;
        # link accounting needs the physical copies, so expand first
        # (no-op for ordinary unit-multiplicity traces).
        cols = cols.expanded()
        params = self.params
        scale = params.collective_efficiency
        inter_bw = np.where(
            cols.gpu_resident, params.nic_bw_gpu_direct, params.nic_bw
        )
        intra_bw = np.where(
            cols.src_gpu & cols.dst_gpu,
            params.nvlink_bw,
            np.where(
                cols.src_gpu | cols.dst_gpu,
                params.pcie_bw,
                params.cpu_mem_bw,
            ),
        )
        node_out = np.zeros(self.cluster.num_nodes)
        node_in = np.zeros(self.cluster.num_nodes)
        proc_out = np.zeros(self.cluster.num_processors)
        proc_in = np.zeros(self.cluster.num_processors)

        group = cols.group
        n_groups = cols.num_groups
        idx = np.arange(cols.n)
        inter = cols.inter
        reduce = cols.reduce
        multicast = ~reduce

        # Per-group shape: fan counts and first members (emission order).
        fan = np.bincount(group, minlength=n_groups)
        n_inter = np.bincount(group[inter], minlength=n_groups)
        n_intra = fan - n_inter
        first_inter = np.full(n_groups, cols.n)
        np.minimum.at(first_inter, group[inter], idx[inter])
        first_intra = np.full(n_groups, cols.n)
        np.minimum.at(first_intra, group[~inter], idx[~inter])
        first_any = np.minimum(first_inter, first_intra)
        grp_reduce = reduce[first_any]
        max_stages = int(np.ceil(np.log2(fan + 1)).max())
        max_stages = max(1, max_stages)

        # Every receiver pulls one payload in (multicast) / every sender
        # pushes one out (reduction) — per-copy scatter-adds.
        sel = multicast & inter
        np.add.at(
            node_in,
            cols.dst_node[sel],
            scale * cols.nbytes[sel] / inter_bw[sel],
        )
        sel = reduce & inter
        np.add.at(
            node_out,
            cols.src_node[sel],
            scale * cols.nbytes[sel] / inter_bw[sel],
        )
        sel = multicast & ~inter
        np.add.at(
            proc_in, cols.dst_proc[sel], cols.nbytes[sel] / intra_bw[sel]
        )
        sel = reduce & ~inter
        np.add.at(
            proc_out, cols.src_proc[sel], cols.nbytes[sel] / intra_bw[sel]
        )

        # Collective roots: the source (multicast) / destination
        # (reduction) link carries at most ``bcast_relay_factor``
        # payloads, rated at the first inter-node member's bandwidth.
        groups_mi = np.flatnonzero((n_inter > 0) & ~grp_reduce)
        if groups_mi.size:
            fi = first_inter[groups_mi]
            relay = np.minimum(n_inter[groups_mi], params.bcast_relay_factor)
            np.add.at(
                node_out,
                cols.src_node[fi],
                scale * relay * cols.nbytes[fi] / inter_bw[fi],
            )
        groups_ri = np.flatnonzero((n_inter > 0) & grp_reduce)
        if groups_ri.size:
            fi = first_inter[groups_ri]
            relay = np.minimum(n_inter[groups_ri], params.bcast_relay_factor)
            np.add.at(
                node_in,
                cols.dst_node[fi],
                scale * relay * cols.nbytes[fi] / inter_bw[fi],
            )

        # Interior nodes of broadcast trees retransmit: ceil(fan_out/2)
        # of the inter-node receivers forward the full payload once.
        fwd_groups = (n_inter > 2) & ~grp_reduce
        if np.any(fwd_groups):
            sel = multicast & inter
            sel_idx = idx[sel]
            sel_grp = group[sel]
            order = np.argsort(sel_grp, kind="stable")
            sorted_grp = sel_grp[order]
            sorted_idx = sel_idx[order]
            starts = np.flatnonzero(
                np.r_[True, sorted_grp[1:] != sorted_grp[:-1]]
            )
            seg_len = np.diff(np.r_[starts, sorted_grp.size])
            rank = np.arange(sorted_grp.size) - np.repeat(starts, seg_len)
            quota = -(-n_inter // 2)  # ceil(fan_out / 2)
            take = fwd_groups[sorted_grp] & (rank < quota[sorted_grp])
            takers = sorted_idx[take]
            fi = first_inter[sorted_grp[take]]
            np.add.at(
                node_out,
                cols.dst_node[takers],
                scale * cols.nbytes[fi] / inter_bw[fi],
            )

        # Intra-node collective roots.
        groups_mI = np.flatnonzero((n_intra > 0) & ~grp_reduce)
        if groups_mI.size:
            fi = first_intra[groups_mI]
            relay = np.minimum(n_intra[groups_mI], 2)
            np.add.at(
                proc_out,
                cols.src_proc[fi],
                relay * cols.nbytes[fi] / intra_bw[fi],
            )
        groups_rI = np.flatnonzero((n_intra > 0) & grp_reduce)
        if groups_rI.size:
            fi = first_intra[groups_rI]
            relay = np.minimum(n_intra[groups_rI], 2)
            np.add.at(
                proc_in,
                cols.dst_proc[fi],
                relay * cols.nbytes[fi] / intra_bw[fi],
            )

        worst_link = max(
            node_out.max(),
            node_in.max(),
            proc_out.max(),
            proc_in.max(),
        )
        return float(worst_link) + params.latency * max_stages
