"""Turning execution traces into time.

Per step (bulk-synchronous phase):

* **Communication.** Copies are grouped into collectives: same source
  instance to many destinations is a multicast (tree: the source link
  carries at most ``bcast_relay_factor`` payloads, receivers relay);
  reductions are inverted trees keyed by destination. Inter-node traffic
  contends for each node's NIC (in and out separately); intra-node GPU
  traffic contends for NVLink per processor. GPU-resident data crosses
  nodes at the measured GPU-direct rate, host-resident at the full NIC
  rate — the distinction behind the paper's COSMA-vs-DISTAL GPU gap.
* **Compute.** Per processor, a roofline: FLOPs at the leaf kernel's
  efficiency or bytes at memory bandwidth, whichever dominates. A step
  takes as long as its slowest processor (lockstep).
* **Overlap.** With a runtime that overlaps communication and
  computation (Legion, COSMA) a step costs ``max(comm, compute)``;
  blocking systems pay ``comm + compute``. The paper attributes
  ScaLAPACK's and CTF's CPU shortfall exactly to this (Section 7.1.1).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List

from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.runtime.trace import Copy, Step, Trace
from repro.sim.params import MachineParams
from repro.sim.report import SimReport

GEMM_KERNELS = {"blas_gemm", "cublas_gemm", "gemm"}


class CostModel:
    """Times traces produced by the executor."""

    def __init__(self, cluster: Cluster, params: MachineParams):
        self.cluster = cluster
        self.params = params
        self._procs = {p.proc_id: p for p in cluster.processors}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def time_trace(self, trace: Trace) -> SimReport:
        """Total time and derived rates for a full kernel execution."""
        total = 0.0
        comm_total = 0.0
        compute_total = 0.0
        for step in trace.steps:
            t_comm = self.comm_time(step.copies)
            t_compute = self.compute_time(step)
            if self.params.overlap:
                t_step = max(t_comm, t_compute)
            else:
                t_step = t_comm + t_compute
            t_step += self.params.task_overhead
            total += t_step
            comm_total += t_comm
            compute_total += t_compute
        flops = trace.total_flops
        bytes_touched = sum(
            w.bytes_touched for s in trace.steps for w in s.work.values()
        )
        return SimReport(
            total_time=total,
            comm_time=comm_total,
            compute_time=compute_total,
            total_flops=flops,
            bytes_touched=bytes_touched,
            inter_node_bytes=trace.inter_node_bytes,
            total_copy_bytes=trace.total_copy_bytes,
            num_nodes=self.cluster.num_nodes,
            memory_high_water=dict(trace.memory_high_water),
        )

    # ------------------------------------------------------------------
    # Compute.
    # ------------------------------------------------------------------

    def compute_time(self, step: Step) -> float:
        worst = 0.0
        for proc_id, work in step.work.items():
            proc = self._procs[proc_id]
            if proc.kind is ProcessorKind.GPU:
                rate = self.params.gpu_gflops
                mem_bw = self.params.gpu_mem_bw
            else:
                rate = (
                    self.params.cpu_socket_gflops
                    * self.params.runtime_core_fraction
                )
                mem_bw = self.params.cpu_mem_bw
            if work.kernel in GEMM_KERNELS:
                eff = self.params.gemm_efficiency
            else:
                eff = self.params.naive_leaf_efficiency
            if work.staged_bytes > 0 and proc.kind is ProcessorKind.GPU:
                eff *= self.params.out_of_core_efficiency
            t_flops = work.flops / (rate * eff) if work.flops else 0.0
            t_bytes = work.bytes_touched / mem_bw if work.bytes_touched else 0.0
            t_staged = (
                work.staged_bytes / self.params.pcie_bw
                if work.staged_bytes
                else 0.0
            )
            worst = max(worst, t_flops, t_bytes, t_staged)
        return worst

    # ------------------------------------------------------------------
    # Communication.
    # ------------------------------------------------------------------

    def comm_time(self, copies: List[Copy]) -> float:
        if not copies:
            return 0.0
        params = self.params
        node_out: Dict[int, float] = defaultdict(float)
        node_in: Dict[int, float] = defaultdict(float)
        proc_intra_out: Dict[int, float] = defaultdict(float)
        proc_intra_in: Dict[int, float] = defaultdict(float)
        max_stages = 1

        multicasts = defaultdict(list)
        reductions = defaultdict(list)
        for copy in copies:
            if copy.reduce:
                reductions[(copy.tensor, copy.rect, copy.dst_proc.proc_id)].append(copy)
            else:
                multicasts[(copy.tensor, copy.rect, copy.src_proc.proc_id)].append(copy)

        def intra_bw(copy: Copy) -> float:
            src_gpu = copy.src_mem.kind is MemoryKind.GPU_FB
            dst_gpu = copy.dst_mem.kind is MemoryKind.GPU_FB
            if src_gpu and dst_gpu:
                return params.nvlink_bw
            if src_gpu or dst_gpu:
                return params.pcie_bw
            return params.cpu_mem_bw

        def inter_bw(copy: Copy) -> float:
            gpu_resident = (
                copy.src_mem.kind is MemoryKind.GPU_FB
                or copy.dst_mem.kind is MemoryKind.GPU_FB
            )
            return params.nic_bw_gpu_direct if gpu_resident else params.nic_bw

        for group in multicasts.values():
            inter = [c for c in group if c.inter_node]
            intra = [c for c in group if not c.inter_node]
            fan_out = len(group)
            max_stages = max(max_stages, math.ceil(math.log2(fan_out + 1)))
            scale = params.collective_efficiency
            if inter:
                copy = inter[0]
                src_node = copy.src_proc.node_id
                relay = min(len(inter), params.bcast_relay_factor)
                node_out[src_node] += (
                    scale * relay * copy.nbytes / inter_bw(copy)
                )
                # Interior nodes of the broadcast tree retransmit: about
                # half the receivers forward the payload once.
                forward = scale * 0.5 * copy.nbytes / inter_bw(copy)
                for c in inter:
                    node_in[c.dst_proc.node_id] += (
                        scale * c.nbytes / inter_bw(c)
                    )
                    if len(inter) > 2:
                        node_out[c.dst_proc.node_id] += forward
            if intra:
                copy = intra[0]
                src = copy.src_proc.proc_id
                relay = min(len(intra), 2)
                proc_intra_out[src] += relay * copy.nbytes / intra_bw(copy)
                for c in intra:
                    proc_intra_in[c.dst_proc.proc_id] += c.nbytes / intra_bw(c)

        for group in reductions.values():
            inter = [c for c in group if c.inter_node]
            intra = [c for c in group if not c.inter_node]
            fan_in = len(group)
            max_stages = max(max_stages, math.ceil(math.log2(fan_in + 1)))
            scale = params.collective_efficiency
            if inter:
                copy = inter[0]
                dst_node = copy.dst_proc.node_id
                relay = min(len(inter), params.bcast_relay_factor)
                node_in[dst_node] += scale * relay * copy.nbytes / inter_bw(copy)
                for c in inter:
                    node_out[c.src_proc.node_id] += (
                        scale * c.nbytes / inter_bw(c)
                    )
            if intra:
                copy = intra[0]
                dst = copy.dst_proc.proc_id
                relay = min(len(intra), 2)
                proc_intra_in[dst] += relay * copy.nbytes / intra_bw(copy)
                for c in intra:
                    proc_intra_out[c.src_proc.proc_id] += (
                        c.nbytes / intra_bw(c)
                    )

        link_times = (
            list(node_out.values())
            + list(node_in.values())
            + list(proc_intra_out.values())
            + list(proc_intra_in.values())
        )
        worst_link = max(link_times) if link_times else 0.0
        return worst_link + params.latency * max_stages
