"""Machine performance parameters, calibrated to Lassen (Section 7).

Numbers are drawn from the paper and public V100/Power9 specifications:

* Lassen CPU nodes sustain ~700-760 GFLOP/s of dense DGEMM across both
  sockets (Figure 15a's peak-utilization line).
* One V100 sustains ~7 TFLOP/s FP64 GEMM; four per node give Figure 15b's
  ~28 TFLOP/s peak line.
* The node NIC (EDR InfiniBand) moves 25 GB/s from system memory but only
  18 GB/s when data resides in GPU framebuffers — the Legion DMA
  limitation the paper calls out explicitly in Section 7.1.2.
* NVLink 2.0 provides tens of GB/s between GPU pairs inside a node.
* DISTAL dedicates 4 of 40 cores per node to the Legion runtime, a 10%
  CPU tax (the "COSMA (Restricted CPUs)" comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineParams:
    """Cost-model knobs. All bandwidths in bytes/s, rates in FLOP/s."""

    # Compute throughput.
    cpu_socket_gflops: float = 380e9
    gpu_gflops: float = 7000e9
    gemm_efficiency: float = 0.93
    naive_leaf_efficiency: float = 0.40
    cpu_mem_bw: float = 135e9
    gpu_mem_bw: float = 780e9

    # Interconnect.
    nic_bw: float = 25e9
    nic_bw_gpu_direct: float = 18e9
    nvlink_bw: float = 60e9
    pcie_bw: float = 14e9
    latency: float = 4e-6
    task_overhead: float = 12e-6

    # Collective modelling: a tree broadcast relays through receivers, so
    # the source's link carries at most this multiple of the payload.
    bcast_relay_factor: float = 2.0
    # Collectives tuned specifically for GEMM (COSMA's advantage) reduce
    # effective broadcast traffic; 1.0 = generic runtime collectives.
    collective_efficiency: float = 1.0

    # Out-of-core GEMM (host-resident data computed on a GPU, e.g.
    # COSMA's implementation) sustains about half of the resident rate —
    # the paper measures exactly a 2x single-node gap (Section 7.1.2).
    out_of_core_efficiency: float = 0.5

    # Runtime behaviour.
    overlap: bool = True
    runtime_core_fraction: float = 0.9  # 36 of 40 cores compute (DISTAL)

    def with_(self, **kwargs) -> "MachineParams":
        """A copy with some knobs replaced."""
        return replace(self, **kwargs)


LASSEN = MachineParams()

# Baseline-system parameter variants (Section 7 comparison targets).

# COSMA: no task runtime tax, tuned GEMM collectives, full overlap.
COSMA_PARAMS = LASSEN.with_(
    runtime_core_fraction=1.0,
    collective_efficiency=0.72,
    task_overhead=2e-6,
)

# COSMA restricted to DISTAL's 36 worker cores (Figure 15a).
COSMA_RESTRICTED_PARAMS = COSMA_PARAMS.with_(runtime_core_fraction=0.9)

# ScaLAPACK: MPI ranks with blocking collectives — no overlap — and the
# library's characteristic fraction of DGEMM peak (4 ranks per node split
# the node problem into small per-rank tiles; PDGEMM sustains ~70% of the
# node's GEMM rate in practice).
SCALAPACK_PARAMS = LASSEN.with_(
    runtime_core_fraction=1.0,
    overlap=False,
    gemm_efficiency=0.70,
    task_overhead=2e-6,
)

# CTF: rank-per-socket/4-rank execution, blocking collectives, generic
# element-wise leaves far below a fused kernel's throughput.
CTF_PARAMS = LASSEN.with_(
    runtime_core_fraction=1.0,
    overlap=False,
    gemm_efficiency=0.68,
    naive_leaf_efficiency=0.22,
    # Generic cyclic-layout element-wise kernels stream at a fraction of
    # a fused kernel's bandwidth (extra index arithmetic and packing).
    cpu_mem_bw=100e9,
    gpu_mem_bw=580e9,
    task_overhead=2e-6,
)
