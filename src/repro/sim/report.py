"""Simulation reports: the units the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimReport:
    """Timing and traffic summary of one simulated kernel execution.

    The evaluation's figures plot per-node rates: GFLOP/s per node for
    compute-bound kernels (Figures 15, 16c, 16d) and GB/s per node for
    bandwidth-bound ones (Figures 16a, 16b).
    """

    total_time: float
    comm_time: float
    compute_time: float
    total_flops: float
    bytes_touched: float
    inter_node_bytes: float
    total_copy_bytes: float
    num_nodes: int
    memory_high_water: Dict[str, int] = field(default_factory=dict)
    # Number of bulk-synchronous phases executed. Drives the expected-
    # cost tuning objective: failure exposure and checkpoint overhead
    # both scale with the phase count.
    num_steps: int = 0

    @property
    def gflops_per_node(self) -> float:
        """GFLOP/s per node (Figures 15a/15b, 16c, 16d)."""
        if self.total_time <= 0:
            return 0.0
        return self.total_flops / self.total_time / self.num_nodes / 1e9

    @property
    def gbytes_per_node(self) -> float:
        """GB/s of tensor data processed per node (Figures 16a, 16b)."""
        if self.total_time <= 0:
            return 0.0
        return self.bytes_touched / self.total_time / self.num_nodes / 1e9

    @property
    def max_memory_bytes(self) -> int:
        """Largest high-water mark across memories."""
        if not self.memory_high_water:
            return 0
        return max(self.memory_high_water.values())

    def __repr__(self) -> str:
        return (
            f"SimReport(t={self.total_time:.4f}s, "
            f"{self.gflops_per_node:.1f} GF/s/node, "
            f"{self.gbytes_per_node:.1f} GB/s/node, "
            f"comm={self.comm_time:.4f}s)"
        )
