"""Simulation reports: the units the paper's figures plot.

Besides the scalar :class:`SimReport`, this module defines the
structured per-phase attribution the observability layer exports:
:class:`PhaseCost` (one bulk-synchronous phase's priced breakdown) and
:class:`PhaseBreakdown` (the whole timeline). Both are derived from the
already-priced skeleton columns — requesting a breakdown never changes
a single ``SimReport`` number, and the ``breakdown`` field is excluded
from equality so the orbit parity suite's byte-identical pin is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PhaseCost:
    """One priced bulk-synchronous phase of a simulated execution.

    ``class_times`` attributes compute to node classes: one ``(proc_id,
    count, seconds)`` triple per work entry, where ``proc_id`` is the
    class representative's processor and ``count`` the orbit
    multiplicity (1 everywhere in uncompressed traces). ``price_replayed``
    marks phases whose communication price was reused from an earlier
    byte-identical copy batch (the cost model's step digest) — the
    steady-state provenance a trace viewer shades differently.
    """

    index: int
    label: str
    comm_s: float
    compute_s: float
    overhead_s: float
    total_s: float
    copy_bytes: int
    inter_node_bytes: int
    flops: float
    class_times: Tuple[Tuple[int, int, float], ...] = ()
    price_replayed: bool = False

    @property
    def dominant(self) -> str:
        """Which resource bounds the phase: comm/compute/overhead."""
        parts = (
            (self.comm_s, "comm"),
            (self.compute_s, "compute"),
            (self.overhead_s, "overhead"),
        )
        return max(parts, key=lambda p: p[0])[1]


@dataclass(frozen=True)
class PhaseBreakdown:
    """The per-phase cost timeline behind one :class:`SimReport`.

    Phase totals reproduce the report's aggregates exactly (same
    floats, same summation order); exporters
    (:mod:`repro.obs.export`) turn this into Chrome trace-event JSON.
    """

    phases: Tuple[PhaseCost, ...]

    @property
    def total_s(self) -> float:
        return sum(p.total_s for p in self.phases)

    def dominated_by(self, resource: str) -> Tuple[PhaseCost, ...]:
        return tuple(p for p in self.phases if p.dominant == resource)

    def top(self, n: int = 5) -> Tuple[PhaseCost, ...]:
        """The ``n`` most expensive phases, by total time."""
        return tuple(
            sorted(self.phases, key=lambda p: -p.total_s)[:n]
        )


@dataclass
class SimReport:
    """Timing and traffic summary of one simulated kernel execution.

    The evaluation's figures plot per-node rates: GFLOP/s per node for
    compute-bound kernels (Figures 15, 16c, 16d) and GB/s per node for
    bandwidth-bound ones (Figures 16a, 16b).
    """

    total_time: float
    comm_time: float
    compute_time: float
    total_flops: float
    bytes_touched: float
    inter_node_bytes: float
    total_copy_bytes: float
    num_nodes: int
    memory_high_water: Dict[str, int] = field(default_factory=dict)
    # Number of bulk-synchronous phases executed. Drives the expected-
    # cost tuning objective: failure exposure and checkpoint overhead
    # both scale with the phase count.
    num_steps: int = 0
    # Optional per-phase attribution (requested via
    # ``CostModel.price_skeleton(..., breakdown=True)``). Excluded from
    # equality and repr: two reports priced from the same skeleton are
    # equal whether or not either carries the breakdown.
    breakdown: Optional[PhaseBreakdown] = field(
        default=None, compare=False, repr=False
    )

    @property
    def gflops_per_node(self) -> float:
        """GFLOP/s per node (Figures 15a/15b, 16c, 16d)."""
        if self.total_time <= 0:
            return 0.0
        return self.total_flops / self.total_time / self.num_nodes / 1e9

    @property
    def gbytes_per_node(self) -> float:
        """GB/s of tensor data processed per node (Figures 16a, 16b)."""
        if self.total_time <= 0:
            return 0.0
        return self.bytes_touched / self.total_time / self.num_nodes / 1e9

    @property
    def max_memory_bytes(self) -> int:
        """Largest high-water mark across memories."""
        if not self.memory_high_water:
            return 0
        return max(self.memory_high_water.values())

    def __repr__(self) -> str:
        return (
            f"SimReport(t={self.total_time:.4f}s, "
            f"{self.gflops_per_node:.1f} GF/s/node, "
            f"{self.gbytes_per_node:.1f} GB/s/node, "
            f"comm={self.comm_time:.4f}s)"
        )
