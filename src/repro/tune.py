"""Command-line schedule autotuning: ``python -m repro.tune``.

Usage::

    python -m repro.tune --workload matmul --nodes 64 [--gpu]
        [--jobs 8] [--strategy auto|exhaustive|beam] [--seed 0]
        [--beam 8] [--size N] [--ledger PATH] [--max-dims 3]
    python -m repro.tune --demo

Searches the schedule space of the named workload on a Lassen-like
cluster, using the orbit-compressed simulator as the cost oracle, and
prints the heuristic-vs-tuned comparison plus the winning decision
vector. ``--demo`` runs a seconds-scale exhaustive tune (the CI smoke
test). Wall-clock and headline results are appended to the
``BENCH_simulator.json`` perf trajectory.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.machine.cluster import Cluster
from repro.sim.params import LASSEN
from repro.tuner.search import tune
from repro.tuner.workloads import WORKLOADS, sized, weak_scaled


def _fmt_cost(outcome) -> str:
    if outcome is None or not outcome.feasible:
        return "OOM"
    return f"{outcome.cost:.4f}s"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Search-based schedule and format selection.",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="matmul"
    )
    parser.add_argument(
        "--nodes", type=int, default=16, help="cluster node count"
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="problem side (default: the paper's weak-scaled size)",
    )
    parser.add_argument(
        "--gpu", action="store_true", help="Lassen GPU nodes (4 V100s)"
    )
    parser.add_argument(
        "--system-mem-gib",
        type=int,
        default=None,
        help="override CPU node memory (smaller values force the "
        "tuner off replication-heavy schedules)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel oracle workers"
    )
    parser.add_argument(
        "--strategy", choices=["auto", "exhaustive", "beam"], default="auto"
    )
    parser.add_argument("--beam", type=int, default=8)
    parser.add_argument(
        "--seed", type=int, default=0, help="deterministic search seed"
    )
    parser.add_argument(
        "--max-dims", type=int, default=3, help="max machine-grid rank"
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="tuning-ledger path (re-tunes are incremental)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="seconds-scale smoke tune (4 nodes, small matmul)",
    )
    args = parser.parse_args(argv)

    if args.demo:
        args.workload, args.nodes, args.size = "matmul", 4, 4096
        args.strategy = "exhaustive"

    if args.gpu:
        cluster = Cluster.gpu_cluster(args.nodes)
    elif args.system_mem_gib is not None:
        cluster = Cluster.cpu_cluster(
            args.nodes, system_mem_gib=args.system_mem_gib
        )
    else:
        cluster = Cluster.cpu_cluster(args.nodes)

    if args.size is not None:
        assignment = sized(args.workload, args.size)
    else:
        assignment = weak_scaled(args.workload, args.nodes)

    sizes = {t.name: t.shape for t in assignment.tensors()}
    print(
        f"tuning {args.workload} {sizes} on {cluster!r} "
        f"({cluster.num_processors} processors)"
    )
    start = time.monotonic()
    result = tune(
        assignment,
        cluster,
        LASSEN,
        strategy=args.strategy,
        beam_width=args.beam,
        seed=args.seed,
        jobs=args.jobs,
        max_dims=args.max_dims,
        ledger_path=args.ledger,
    )
    wall = time.monotonic() - start
    search = result.search

    print(search.describe())
    heuristic = search.seed_outcome
    best = search.best
    print(f"heuristic cost: {_fmt_cost(heuristic)}")
    print(f"tuned cost:     {_fmt_cost(best)}")
    if heuristic.feasible and best.feasible and best.cost > 0:
        print(f"speedup over heuristic: {heuristic.cost / best.cost:.2f}x")
    print(f"wall-clock: {wall:.2f}s "
          f"({search.evaluations} simulations, strategy {search.strategy})")

    try:
        from repro.bench.perf_log import append_record

        metrics = {
            "workload": args.workload,
            "nodes": args.nodes,
            "space": search.space_size,
            "evaluations": search.evaluations,
            "tuned_cost_s": None if not best.feasible else best.cost,
            "heuristic_cost_s": (
                None if not heuristic.feasible else heuristic.cost
            ),
        }
        append_record(f"tune:{args.workload}", wall, metrics=metrics)
    except Exception:
        pass  # the perf log must never fail a tuning run
    return 0


if __name__ == "__main__":
    sys.exit(main())
