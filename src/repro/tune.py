"""Command-line schedule autotuning: ``python -m repro.tune``.

Usage::

    python -m repro.tune --workload matmul --nodes 64 [--gpu]
        [--jobs 8] [--strategy auto|exhaustive|beam] [--seed 0]
        [--beam 8] [--size N] [--ledger PATH] [--max-dims 3]
        [--timeout SECONDS] [--json]
    python -m repro.tune --pipeline chain-matmul --nodes 64 [--top-k 6]
    python -m repro.tune --demo

Searches the schedule space of the named workload on a Lassen-like
cluster, using the orbit-compressed simulator as the cost oracle, and
prints the heuristic-vs-tuned comparison plus the winning decision
vector. ``--pipeline`` tunes a multi-kernel pipeline *jointly* —
per-stage decision vectors plus the handoff format of every
intermediate tensor — and prints the independent-vs-joint comparison
with the per-stage and redistribution breakdown. ``--demo`` runs a
seconds-scale exhaustive tune (the CI smoke test). Wall-clock and
headline results are appended to the ``BENCH_simulator.json`` perf
trajectory.

The ``--ledger/--jobs/--seed/--json`` group is the shared one from
:mod:`repro.cli`: ``--ledger`` accepts a directory (the serving
daemon's sharded layout) or a ``.json`` file, and ``--json`` replaces
the human report with one machine-readable summary object.

Exit status is non-zero when the tuning run raises, when any oracle
simulation fails (candidate compile/simulation errors — simulated OOMs
are a legitimate outcome and do not count), or when a requested ledger
cannot be written.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro import cli
from repro.analysis import comm_lower_bound, memory_bounds, verify_legality
from repro.machine.cluster import MemoryKind, ProcessorKind
from repro.sim.params import LASSEN
from repro.tuner.search import tune
from repro.tuner.workloads import (
    PIPELINES,
    WORKLOADS,
    pipeline_stages,
    sized,
    weak_scaled,
    weak_scaled_pipeline,
)


def _fmt_cost(outcome) -> str:
    if outcome is None or not outcome.feasible:
        return "OOM"
    return f"{outcome.cost:.4f}s"


def _cost_or_none(outcome):
    if outcome is None or not outcome.feasible:
        return None
    return outcome.cost


def _append_perf(name: str, wall: float, metrics: dict):
    try:
        from repro.bench.perf_log import append_record
        from repro.obs.metrics import METRICS

        append_record(
            name, wall, metrics=metrics, counters=METRICS.snapshot()
        )
    except Exception:
        pass  # the perf log must never fail a tuning run


def _tune_unified(args, assignment, cluster, ledger):
    """Tune through the unified API when the workload is expressible
    as a canonical request (attaches ``result.answer``); fall back to
    the direct tuner for anything the einsum printer can't round-trip."""
    from repro import api

    common = dict(
        strategy=args.strategy,
        beam_width=args.beam,
        jobs=args.jobs,
        max_dims=args.max_dims,
        ledger=ledger,
        timeout_s=args.timeout,
    )
    try:
        request = api.ScheduleRequest.from_assignment(
            assignment, cluster, seed=args.seed
        )
    except Exception:
        return tune(
            assignment, cluster, LASSEN, seed=args.seed, **common
        )
    return api.tune_request(
        request, assignment=assignment, cluster=cluster, **common
    )


def _run_single(args, cluster, ledger) -> int:
    say = (lambda *a, **k: None) if args.json else print
    if args.size is not None:
        assignment = sized(args.workload, args.size)
    else:
        assignment = weak_scaled(args.workload, args.nodes)

    sizes = cli.workload_sizes(assignment)
    say(
        f"tuning {args.workload} {sizes} on {cluster!r} "
        f"({cluster.num_processors} processors)"
    )
    start = time.monotonic()
    result = _tune_unified(args, assignment, cluster, ledger)
    wall = time.monotonic() - start
    search = result.search

    say(search.describe())
    heuristic = search.seed_outcome
    best = search.best
    say(f"heuristic cost: {_fmt_cost(heuristic)}")
    say(f"tuned cost:     {_fmt_cost(best)}")
    if heuristic.feasible and best.feasible and best.cost > 0:
        say(f"speedup over heuristic: {heuristic.cost / best.cost:.2f}x")
    say(f"wall-clock: {wall:.2f}s "
        f"({search.evaluations} simulations, "
        f"{search.pruned_static} statically pruned, "
        f"strategy {search.strategy})")

    illegal = verify_legality(
        assignment, best.decision, num_procs=cluster.num_processors
    )
    for diag in illegal:
        print(f"ILLEGAL winning decision: {diag}", file=sys.stderr)

    if args.analyze and not args.json:
        memory = (
            MemoryKind.GPU_FB
            if cluster.processor_kind is ProcessorKind.GPU
            else MemoryKind.SYSTEM_MEM
        )
        bound = memory_bounds(assignment, best.decision, cluster, memory)
        comm = comm_lower_bound(assignment, cluster, LASSEN)
        say(f"winner memory: {bound.describe()}")
        say(f"winner {comm.describe()}")
        cert = comm.certificate(best.inter_node_bytes)
        if cert is not None:
            say(
                f"winner certified within {cert:.2f}x of the "
                "communication lower bound"
            )

    _append_perf(f"tune:{args.workload}", wall, {
        "workload": args.workload,
        "nodes": args.nodes,
        "space": search.space_size,
        "evaluations": search.evaluations,
        "tuned_cost_s": None if not best.feasible else best.cost,
        "heuristic_cost_s": (
            None if not heuristic.feasible else heuristic.cost
        ),
    })
    if not cli.emit(args, {
        "workload": args.workload,
        "nodes": args.nodes,
        "sizes": {name: list(shape) for name, shape in sizes.items()},
        "strategy": search.strategy,
        "space": search.space_size,
        "evaluations": search.evaluations,
        "wall_s": round(wall, 4),
        "decision": best.decision.encode(),
        "tuned_cost_s": _cost_or_none(best),
        "heuristic_cost_s": _cost_or_none(heuristic),
        "errors": search.errors,
        "illegal": len(illegal),
        "answer": (
            None if result.answer is None else result.answer.to_record()
        ),
    }):
        cli.print_metrics()
    if illegal:
        print(
            "the winning candidate fails the legality verifier",
            file=sys.stderr,
        )
        return search.errors + len(illegal)
    return search.errors


def _run_pipeline(args, cluster, ledger) -> int:
    from repro.pipeline import Pipeline
    from repro.tuner.joint import tune_pipeline

    say = (lambda *a, **k: None) if args.json else print
    if args.size is not None:
        stages = pipeline_stages(args.pipeline, args.size)
    else:
        stages = weak_scaled_pipeline(args.pipeline, args.nodes)
    pipeline = Pipeline(stages, cluster)
    shapes = {
        t.name: t.shape
        for stage in pipeline.stages
        for t in stage.assignment.tensors()
    }
    say(
        f"jointly tuning pipeline {args.pipeline} {shapes} on {cluster!r} "
        f"({cluster.num_processors} processors)"
    )
    start = time.monotonic()
    result = tune_pipeline(
        pipeline,
        LASSEN,
        top_k=args.top_k,
        strategy=args.strategy,
        beam_width=args.beam,
        seed=args.seed,
        jobs=args.jobs,
        max_dims=args.max_dims,
        ledger=ledger,
        timeout_s=args.timeout,
    )
    wall = time.monotonic() - start

    say(result.describe())
    if result.report is not None:
        say(result.report.describe())
    joint = result.report
    independent = result.independent_report
    if joint is not None and independent is not None:
        saved = (
            independent.combined.total_time - joint.combined.total_time
        )
        say(
            f"joint vs independent: "
            f"{joint.combined.total_time:.4f}s vs "
            f"{independent.combined.total_time:.4f}s "
            f"({saved:+.4f}s from joint scheduling)"
        )
    say(
        f"wall-clock: {wall:.2f}s "
        f"({result.combinations} combinations, "
        f"{result.evaluations} pipeline simulations)"
    )

    joint_cost = None if joint is None else joint.combined.total_time
    independent_cost = (
        None if independent is None else independent.combined.total_time
    )
    _append_perf(f"tune-pipeline:{args.pipeline}", wall, {
        "pipeline": args.pipeline,
        "nodes": args.nodes,
        "combinations": result.combinations,
        "evaluations": result.evaluations,
        "joint_cost_s": joint_cost,
        "independent_cost_s": independent_cost,
    })
    if not cli.emit(args, {
        "pipeline": args.pipeline,
        "nodes": args.nodes,
        "sizes": {name: list(shape) for name, shape in shapes.items()},
        "combinations": result.combinations,
        "evaluations": result.evaluations,
        "wall_s": round(wall, 4),
        "joint_cost_s": joint_cost,
        "independent_cost_s": independent_cost,
        "errors": result.errors,
    }):
        cli.print_metrics()
    return result.errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Search-based schedule and format selection.",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="matmul"
    )
    parser.add_argument(
        "--pipeline",
        choices=sorted(PIPELINES),
        default=None,
        help="jointly tune a multi-kernel pipeline instead of a single "
        "kernel (per-stage schedules plus handoff formats)",
    )
    cli.add_cluster_args(parser, nodes_default=16, system_mem=True)
    parser.add_argument(
        "--strategy", choices=["auto", "exhaustive", "beam"], default="auto"
    )
    parser.add_argument("--beam", type=int, default=8)
    parser.add_argument(
        "--top-k",
        type=int,
        default=6,
        help="per-stage candidates the joint pipeline product ranges over",
    )
    parser.add_argument(
        "--max-dims", type=int, default=3, help="max machine-grid rank"
    )
    cli.add_common_args(parser, timeout=True)
    parser.add_argument(
        "--demo",
        action="store_true",
        help="seconds-scale smoke tune (4 nodes, small matmul)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print the winner's static memory/communication bounds",
    )
    args = parser.parse_args(argv)

    if args.demo:
        args.nodes, args.size = 4, 4096
        args.strategy = "exhaustive"
        if args.pipeline is None:
            args.workload = "matmul"

    cluster = cli.build_cluster(args)
    ledger = cli.make_ledger(args)
    try:
        if args.pipeline is not None:
            errors = _run_pipeline(args, cluster, ledger)
        else:
            errors = _run_single(args, cluster, ledger)
    except Exception:
        traceback.print_exc()
        print("tuning run failed", file=sys.stderr)
        return 1
    status = 0
    if errors:
        print(
            f"{errors} oracle simulation(s) failed (see ledger/errors)",
            file=sys.stderr,
        )
        status = 1
    if cli.ledger_failed(ledger):
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
