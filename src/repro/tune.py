"""Command-line schedule autotuning: ``python -m repro.tune``.

Usage::

    python -m repro.tune --workload matmul --nodes 64 [--gpu]
        [--jobs 8] [--strategy auto|exhaustive|beam] [--seed 0]
        [--beam 8] [--size N] [--ledger PATH] [--max-dims 3]
        [--timeout SECONDS]
    python -m repro.tune --pipeline chain-matmul --nodes 64 [--top-k 6]
    python -m repro.tune --demo

Searches the schedule space of the named workload on a Lassen-like
cluster, using the orbit-compressed simulator as the cost oracle, and
prints the heuristic-vs-tuned comparison plus the winning decision
vector. ``--pipeline`` tunes a multi-kernel pipeline *jointly* —
per-stage decision vectors plus the handoff format of every
intermediate tensor — and prints the independent-vs-joint comparison
with the per-stage and redistribution breakdown. ``--demo`` runs a
seconds-scale exhaustive tune (the CI smoke test). Wall-clock and
headline results are appended to the ``BENCH_simulator.json`` perf
trajectory.

Exit status is non-zero when the tuning run raises, when any oracle
simulation fails (candidate compile/simulation errors — simulated OOMs
are a legitimate outcome and do not count), or when a requested ledger
cannot be written.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.analysis import comm_lower_bound, memory_bounds, verify_legality
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.sim.params import LASSEN
from repro.tuner.oracle import TuningLedger
from repro.tuner.search import tune
from repro.tuner.workloads import (
    PIPELINES,
    WORKLOADS,
    pipeline_stages,
    sized,
    weak_scaled,
    weak_scaled_pipeline,
)


def _fmt_cost(outcome) -> str:
    if outcome is None or not outcome.feasible:
        return "OOM"
    return f"{outcome.cost:.4f}s"


def _append_perf(name: str, wall: float, metrics: dict):
    try:
        from repro.bench.perf_log import append_record
        from repro.obs.metrics import METRICS

        append_record(
            name, wall, metrics=metrics, counters=METRICS.snapshot()
        )
    except Exception:
        pass  # the perf log must never fail a tuning run


def _print_metrics():
    """The registry snapshot, printed after a run's own summary."""
    from repro.obs.metrics import METRICS

    print("== Metrics ==")
    for name, value in METRICS.snapshot().items():
        print(f"  {name} = {value}")


def _run_single(args, cluster, ledger) -> int:
    if args.size is not None:
        assignment = sized(args.workload, args.size)
    else:
        assignment = weak_scaled(args.workload, args.nodes)

    sizes = {t.name: t.shape for t in assignment.tensors()}
    print(
        f"tuning {args.workload} {sizes} on {cluster!r} "
        f"({cluster.num_processors} processors)"
    )
    start = time.monotonic()
    result = tune(
        assignment,
        cluster,
        LASSEN,
        strategy=args.strategy,
        beam_width=args.beam,
        seed=args.seed,
        jobs=args.jobs,
        max_dims=args.max_dims,
        ledger=ledger,
        timeout_s=args.timeout,
    )
    wall = time.monotonic() - start
    search = result.search

    print(search.describe())
    heuristic = search.seed_outcome
    best = search.best
    print(f"heuristic cost: {_fmt_cost(heuristic)}")
    print(f"tuned cost:     {_fmt_cost(best)}")
    if heuristic.feasible and best.feasible and best.cost > 0:
        print(f"speedup over heuristic: {heuristic.cost / best.cost:.2f}x")
    print(f"wall-clock: {wall:.2f}s "
          f"({search.evaluations} simulations, "
          f"{search.pruned_static} statically pruned, "
          f"strategy {search.strategy})")

    illegal = verify_legality(
        assignment, best.decision, num_procs=cluster.num_processors
    )
    for diag in illegal:
        print(f"ILLEGAL winning decision: {diag}", file=sys.stderr)

    if args.analyze:
        memory = (
            MemoryKind.GPU_FB
            if cluster.processor_kind is ProcessorKind.GPU
            else MemoryKind.SYSTEM_MEM
        )
        bound = memory_bounds(assignment, best.decision, cluster, memory)
        comm = comm_lower_bound(assignment, cluster, LASSEN)
        print(f"winner memory: {bound.describe()}")
        print(f"winner {comm.describe()}")
        cert = comm.certificate(best.inter_node_bytes)
        if cert is not None:
            print(
                f"winner certified within {cert:.2f}x of the "
                "communication lower bound"
            )

    _append_perf(f"tune:{args.workload}", wall, {
        "workload": args.workload,
        "nodes": args.nodes,
        "space": search.space_size,
        "evaluations": search.evaluations,
        "tuned_cost_s": None if not best.feasible else best.cost,
        "heuristic_cost_s": (
            None if not heuristic.feasible else heuristic.cost
        ),
    })
    _print_metrics()
    if illegal:
        print(
            "the winning candidate fails the legality verifier",
            file=sys.stderr,
        )
        return search.errors + len(illegal)
    return search.errors


def _run_pipeline(args, cluster, ledger) -> int:
    from repro.pipeline import Pipeline
    from repro.tuner.joint import tune_pipeline

    if args.size is not None:
        stages = pipeline_stages(args.pipeline, args.size)
    else:
        stages = weak_scaled_pipeline(args.pipeline, args.nodes)
    pipeline = Pipeline(stages, cluster)
    shapes = {
        t.name: t.shape
        for stage in pipeline.stages
        for t in stage.assignment.tensors()
    }
    print(
        f"jointly tuning pipeline {args.pipeline} {shapes} on {cluster!r} "
        f"({cluster.num_processors} processors)"
    )
    start = time.monotonic()
    result = tune_pipeline(
        pipeline,
        LASSEN,
        top_k=args.top_k,
        strategy=args.strategy,
        beam_width=args.beam,
        seed=args.seed,
        jobs=args.jobs,
        max_dims=args.max_dims,
        ledger=ledger,
        timeout_s=args.timeout,
    )
    wall = time.monotonic() - start

    print(result.describe())
    if result.report is not None:
        print(result.report.describe())
    joint = result.report
    independent = result.independent_report
    if joint is not None and independent is not None:
        saved = (
            independent.combined.total_time - joint.combined.total_time
        )
        print(
            f"joint vs independent: "
            f"{joint.combined.total_time:.4f}s vs "
            f"{independent.combined.total_time:.4f}s "
            f"({saved:+.4f}s from joint scheduling)"
        )
    print(
        f"wall-clock: {wall:.2f}s "
        f"({result.combinations} combinations, "
        f"{result.evaluations} pipeline simulations)"
    )

    _append_perf(f"tune-pipeline:{args.pipeline}", wall, {
        "pipeline": args.pipeline,
        "nodes": args.nodes,
        "combinations": result.combinations,
        "evaluations": result.evaluations,
        "joint_cost_s": (
            None if joint is None else joint.combined.total_time
        ),
        "independent_cost_s": (
            None if independent is None
            else independent.combined.total_time
        ),
    })
    _print_metrics()
    return result.errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Search-based schedule and format selection.",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="matmul"
    )
    parser.add_argument(
        "--pipeline",
        choices=sorted(PIPELINES),
        default=None,
        help="jointly tune a multi-kernel pipeline instead of a single "
        "kernel (per-stage schedules plus handoff formats)",
    )
    parser.add_argument(
        "--nodes", type=int, default=16, help="cluster node count"
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="problem side (default: the paper's weak-scaled size)",
    )
    parser.add_argument(
        "--gpu", action="store_true", help="Lassen GPU nodes (4 V100s)"
    )
    parser.add_argument(
        "--system-mem-gib",
        type=int,
        default=None,
        help="override CPU node memory (smaller values force the "
        "tuner off replication-heavy schedules)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel oracle workers"
    )
    parser.add_argument(
        "--strategy", choices=["auto", "exhaustive", "beam"], default="auto"
    )
    parser.add_argument("--beam", type=int, default=8)
    parser.add_argument(
        "--top-k",
        type=int,
        default=6,
        help="per-stage candidates the joint pipeline product ranges over",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="deterministic search seed"
    )
    parser.add_argument(
        "--max-dims", type=int, default=3, help="max machine-grid rank"
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="tuning-ledger path (re-tunes are incremental)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-candidate wall-clock budget in seconds; a candidate "
        "that exceeds it becomes an oracle error instead of hanging "
        "the tune",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="seconds-scale smoke tune (4 nodes, small matmul)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print the winner's static memory/communication bounds",
    )
    args = parser.parse_args(argv)

    if args.demo:
        args.nodes, args.size = 4, 4096
        args.strategy = "exhaustive"
        if args.pipeline is None:
            args.workload = "matmul"

    if args.gpu:
        cluster = Cluster.gpu_cluster(args.nodes)
    elif args.system_mem_gib is not None:
        cluster = Cluster.cpu_cluster(
            args.nodes, system_mem_gib=args.system_mem_gib
        )
    else:
        cluster = Cluster.cpu_cluster(args.nodes)

    ledger = TuningLedger(args.ledger) if args.ledger else None
    try:
        if args.pipeline is not None:
            errors = _run_pipeline(args, cluster, ledger)
        else:
            errors = _run_single(args, cluster, ledger)
    except Exception:
        traceback.print_exc()
        print("tuning run failed", file=sys.stderr)
        return 1
    status = 0
    if errors:
        print(
            f"{errors} oracle simulation(s) failed (see ledger/errors)",
            file=sys.stderr,
        )
        status = 1
    if ledger is not None and ledger.save_failures:
        print(
            f"tuning ledger could not be written to {ledger.path}",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
