"""Search-based schedule autotuning (the paper's Section 9 extension).

The subsystem has three layers:

* :mod:`repro.tuner.space` — the schedule space as declarative,
  replayable decision vectors with symmetry canonicalization;
* :mod:`repro.tuner.oracle` — candidate scoring through the
  orbit-compressed simulator, fanned out over the shared fork-pool,
  with a persistent tuning ledger;
* :mod:`repro.tuner.search` — exhaustive search for small spaces and
  beam search with successive halving for large ones, seeded with the
  one-shot heuristic so tuning never regresses.

Entry points: :meth:`repro.core.kernel.Kernel.tune`,
:meth:`repro.core.kernel.Kernel.autoschedule`, and the
``python -m repro.tune`` command line.
"""

from repro.tuner.oracle import (
    EvalOutcome,
    Oracle,
    TuningLedger,
    workload_signature,
)
from repro.tuner.search import (
    SearchOutcome,
    TuneResult,
    balanced_grid,
    beam_search,
    default_seed_grid,
    exhaustive_search,
    tune,
)
from repro.tuner.space import (
    Decision,
    canonicalize,
    coarsen,
    enumerate_space,
    formats_for,
    from_heuristic,
    normalize,
    realize,
    scale_assignment,
)

__all__ = [
    "Decision",
    "EvalOutcome",
    "Oracle",
    "SearchOutcome",
    "TuneResult",
    "TuningLedger",
    "balanced_grid",
    "beam_search",
    "canonicalize",
    "coarsen",
    "default_seed_grid",
    "enumerate_space",
    "exhaustive_search",
    "formats_for",
    "from_heuristic",
    "normalize",
    "realize",
    "scale_assignment",
    "tune",
    "workload_signature",
]
