"""Joint pipeline tuning: per-stage schedules plus handoff formats.

Tuning each stage of a pipeline in isolation optimizes the wrong
objective: the best stand-alone schedule for a consumer may expect its
input in a layout the producer does not write, and the redistribution
between them can dwarf the time either stage saves. The joint mode
searches the *pipeline* space:

* each stage ranges over the top candidates of its own single-kernel
  search (:func:`repro.tuner.search.tune` keeps the ranked tail of the
  final rung precisely for this);
* each intermediate tensor additionally ranges over a **handoff
  choice** — ``redistribute`` (the consumer reads its own derived
  format, paying explicit copy traffic when it differs from the
  producer's) or ``direct`` (the consumer's input format is overridden
  to whatever the producer wrote, making the handoff free and folding
  any extra fetch cost into the consumer stage itself);

and every combination is scored end to end through
``PipelinePlan.simulate()`` — the same orbit-simulator oracle, with
per-stage reports shared through :data:`~repro.bench.cache.SIM_CACHE`
and redistribution reports memoized per layout pair, so a combination
costs little more than its handoff planning.

The independently-tuned combination (every stage's own winner, all
handoffs ``redistribute``) is always part of the enumeration, so the
joint result can never be worse than tuning stages separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.pipeline.pipeline import (
    HANDOFF_DIRECT,
    HANDOFF_REDISTRIBUTE,
    Pipeline,
    PipelinePlan,
)
from repro.pipeline.report import PipelineReport
from repro.sim.params import LASSEN, MachineParams
from repro.tuner.oracle import Oracle, TuningLedger
from repro.tuner.search import TuneResult, tune
from repro.tuner.space import Decision, enumerate_space, formats_for
from repro.util.errors import OutOfMemoryError, ReproError

#: Default number of per-stage candidates the joint product ranges over.
DEFAULT_TOP_K = 6

#: How many format-compatible consumer candidates are injected per
#: producer candidate, and how many get oracle-scored to pick them.
COMPAT_KEEP = 2
COMPAT_EVAL_CAP = 16


@dataclass
class PipelineTuneResult:
    """What joint pipeline tuning decided and measured."""

    decisions: Dict[str, Decision]
    handoffs: Dict[str, str]
    plan: PipelinePlan
    report: Optional[PipelineReport]
    independent_plan: PipelinePlan
    independent_report: Optional[PipelineReport]
    stage_results: Dict[str, TuneResult]
    combinations: int
    evaluations: int
    injection_errors: int = 0

    @property
    def improved(self) -> bool:
        """Did the joint schedule beat independently-tuned stages?"""
        if self.report is None or self.independent_report is None:
            return self.report is not None
        return (
            self.report.combined.total_time
            < self.independent_report.combined.total_time
        )

    @property
    def errors(self) -> int:
        """Candidate compile/simulation errors across all stage searches
        and the handoff-compatibility injection pass."""
        return (
            sum(r.search.errors for r in self.stage_results.values())
            + self.injection_errors
        )

    def describe(self) -> str:
        lines = [
            f"joint pipeline tune: {self.combinations} combinations, "
            f"{self.evaluations} pipeline simulations"
        ]
        for name, result in self.stage_results.items():
            best = result.search.best
            cost = "OOM" if not best.feasible else f"{best.cost:.4f}s"
            lines.append(
                f"  stage {name}: independent best {cost} "
                f"({best.decision.describe()})"
            )
        if self.independent_report is not None:
            lines.append(
                f"  independent pipeline (default handoffs): "
                f"{self.independent_report.combined.total_time:.4f}s "
                f"({self.independent_report.redistribution_time:.4f}s "
                f"redistributing)"
            )
        else:
            lines.append("  independent pipeline: infeasible")
        if self.report is not None:
            lines.append(
                f"  joint pipeline: "
                f"{self.report.combined.total_time:.4f}s "
                f"({self.report.redistribution_time:.4f}s redistributing)"
            )
            for tensor in sorted(self.handoffs):
                lines.append(
                    f"    handoff {tensor}: {self.handoffs[tensor]}"
                )
        else:
            lines.append("  joint pipeline: infeasible")
        return "\n".join(lines)


def _candidate_pool(
    result: TuneResult, top_k: int
) -> List[Decision]:
    """Distinct feasible decisions of one stage's search, best first."""
    pool: List[Decision] = []
    for outcome in result.search.ranked:
        if not outcome.feasible:
            continue
        if outcome.decision not in pool:
            pool.append(outcome.decision)
        if len(pool) >= top_k:
            break
    if result.decision not in pool:
        pool.insert(0, result.decision)
        pool = pool[:max(top_k, 1)]
    return pool


def _inject_compatible(
    pipeline: Pipeline,
    pools: Dict[str, List[Decision]],
    oracle_for: Dict[str, Oracle],
    memory,
    max_dims: int,
) -> None:
    """Extend consumer pools with handoff-compatible candidates.

    A stage's stand-alone top-K rarely contains schedules that read an
    intermediate in the layout its producer happens to write — those
    schedules lose the stand-alone race precisely because they are
    shaped by the handoff, which the stand-alone objective cannot see.
    For every producer candidate, this pass enumerates the consumer's
    space for candidates whose derived format of the intermediate (and
    grid) match the producer's realized output, scores a capped number
    through the oracle at full scale, and appends the best few feasible
    ones to the consumer's pool. This is the *handoff-format choice*:
    the joint product then contains combinations where the handoff is
    free by construction.
    """
    procs = pipeline.cluster.num_processors
    spaces: Dict[str, List[Decision]] = {}
    for edge_tensor in pipeline.intermediates:
        producer_name = pipeline.producers[edge_tensor]
        producer_stage = pipeline.stage(producer_name)
        targets = []
        for decision in pools[producer_name]:
            fmt = formats_for(
                producer_stage.assignment, decision, memory
            )[edge_tensor]
            target = (decision.grid, fmt.notation())
            # Distinct producer decisions often realize the same output
            # layout; scanning it once keeps only the genuinely best
            # matches in the pool.
            if target not in targets:
                targets.append(target)
        for consumer_name in pipeline.consumers_of(edge_tensor):
            consumer_stage = pipeline.stage(consumer_name)
            if consumer_name not in spaces:
                spaces[consumer_name] = enumerate_space(
                    consumer_stage.assignment, procs, max_dims=max_dims
                )
            pool = pools[consumer_name]
            for grid, notation in targets:
                matched = [
                    c
                    for c in spaces[consumer_name]
                    if c.grid == grid
                    and c not in pool
                    and formats_for(
                        consumer_stage.assignment, c, memory
                    )[edge_tensor].notation() == notation
                ][:COMPAT_EVAL_CAP]
                if not matched:
                    continue
                outcomes = oracle_for[consumer_name].evaluate(
                    consumer_stage.assignment, matched
                )
                feasible = sorted(
                    (o for o in outcomes if o.feasible),
                    key=lambda o: (o.cost, o.decision.key()),
                )
                pool.extend(
                    o.decision for o in feasible[:COMPAT_KEEP]
                )


def _combo_key(
    decisions: Dict[str, Decision], handoffs: Dict[str, str]
) -> str:
    """Deterministic tie-break identity of one combination."""
    parts = [f"{n}={decisions[n].encode()}" for n in sorted(decisions)]
    parts += [f"{t}:{handoffs[t]}" for t in sorted(handoffs)]
    return "|".join(parts)


def tune_pipeline(
    pipeline: Pipeline,
    params: MachineParams = LASSEN,
    *,
    top_k: int = DEFAULT_TOP_K,
    memory=None,
    mode: str = "orbit",
    check_capacity: bool = True,
    strategy: str = "auto",
    beam_width: int = 8,
    coarse_procs: int = 64,
    seed: int = 0,
    jobs: int = 1,
    max_dims: int = 3,
    ledger_path=None,
    ledger: Optional[TuningLedger] = None,
    timeout_s: Optional[float] = None,
) -> PipelineTuneResult:
    """Jointly tune every stage of a pipeline plus its handoff formats.

    Runs the single-kernel search per stage (all keyword knobs are
    forwarded), then scores the product of each stage's ``top_k``
    candidates × per-edge handoff choices through
    ``PipelinePlan.simulate()``. Deterministic: candidate pools come
    from the deterministic per-stage searches, combinations are
    enumerated in a fixed order, and cost ties break on the encoded
    combination.
    """
    memory = memory if memory is not None else pipeline.default_memory()
    if ledger is None and ledger_path is not None:
        ledger = TuningLedger(ledger_path)

    stage_results: Dict[str, TuneResult] = {}
    pools: Dict[str, List[Decision]] = {}
    oracle_for: Dict[str, Oracle] = {}
    stage_names = [s.name for s in pipeline.stages]
    for stage in pipeline.stages:
        result = tune(
            stage.assignment,
            pipeline.cluster,
            params,
            memory=memory,
            mode=mode,
            check_capacity=check_capacity,
            strategy=strategy,
            beam_width=beam_width,
            coarse_procs=coarse_procs,
            seed=seed,
            jobs=jobs,
            max_dims=max_dims,
            ledger=ledger,
            timeout_s=timeout_s,
        )
        stage_results[stage.name] = result
        pools[stage.name] = _candidate_pool(result, top_k)
        oracle_for[stage.name] = Oracle(
            pipeline.cluster,
            params=params,
            memory=memory,
            mode=mode,
            check_capacity=check_capacity,
            jobs=jobs,
            ledger=ledger,
            timeout_s=timeout_s,
        )
    _inject_compatible(pipeline, pools, oracle_for, memory, max_dims)
    injection_errors = sum(o.errors for o in oracle_for.values())

    producer_of = dict(pipeline.producers)
    consumers_of = {
        tensor: pipeline.consumers_of(tensor)
        for tensor in pipeline.intermediates
    }

    def evaluate(
        decisions: Dict[str, Decision], handoffs: Dict[str, str]
    ) -> Tuple[Optional[PipelinePlan], Optional[PipelineReport]]:
        try:
            plan = pipeline.schedule_with(
                decisions, memory=memory, handoffs=handoffs
            )
            report = plan.simulate(
                params, check_capacity=check_capacity, mode=mode
            )
        except (OutOfMemoryError, ReproError):
            return None, None
        return plan, report

    best = None
    best_key: Optional[Tuple[float, str]] = None
    combinations = 0
    evaluations = 0
    for combo in product(*(pools[name] for name in stage_names)):
        decisions = dict(zip(stage_names, combo))
        options: List[List[str]] = []
        for tensor in pipeline.intermediates:
            grids_match = all(
                decisions[consumer].grid
                == decisions[producer_of[tensor]].grid
                for consumer in consumers_of[tensor]
            )
            options.append(
                [HANDOFF_REDISTRIBUTE, HANDOFF_DIRECT]
                if grids_match
                else [HANDOFF_REDISTRIBUTE]
            )
        for handoff_combo in product(*options):
            handoffs = dict(zip(pipeline.intermediates, handoff_combo))
            combinations += 1
            plan, report = evaluate(decisions, handoffs)
            if report is None:
                continue
            evaluations += 1
            key = (
                report.combined.total_time,
                _combo_key(decisions, handoffs),
            )
            if best_key is None or key < best_key:
                best = (decisions, handoffs, plan, report)
                best_key = key

    independent_decisions = {
        name: stage_results[name].decision for name in stage_names
    }
    independent_handoffs = {
        tensor: HANDOFF_REDISTRIBUTE for tensor in pipeline.intermediates
    }
    independent_plan, independent_report = evaluate(
        independent_decisions, independent_handoffs
    )
    if independent_plan is None:
        # Still hand back an inspectable plan, even when it cannot be
        # simulated within capacity.
        independent_plan = pipeline.schedule_with(
            independent_decisions,
            memory=memory,
            handoffs=independent_handoffs,
        )
    if best is None:
        decisions, handoffs = independent_decisions, independent_handoffs
        plan, report = independent_plan, independent_report
    else:
        decisions, handoffs, plan, report = best
    return PipelineTuneResult(
        decisions=decisions,
        handoffs=handoffs,
        plan=plan,
        report=report,
        independent_plan=independent_plan,
        independent_report=independent_report,
        stage_results=stage_results,
        combinations=combinations,
        evaluations=evaluations,
        injection_errors=injection_errors,
    )
